//! Criterion bench: per-tuple routing cost of the mixed strategy (Eq. 1)
//! at several routing-table sizes vs pure hashing — the framework's
//! constant-factor overhead claim ("both the memory and computation cost
//! of the scheme are acceptable", §II).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use streambal_core::{AssignmentFn, Key, RoutingTable, TaskId};

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    let n_tasks = 10;
    for table_size in [0usize, 1_000, 10_000, 50_000] {
        let table: RoutingTable = (0..table_size as u64)
            .map(|k| (Key(k), TaskId((k % n_tasks as u64) as u32)))
            .collect();
        let f = AssignmentFn::with_table(n_tasks, table);
        group.bench_with_input(BenchmarkId::new("route", table_size), &f, |b, f| {
            let mut key = 0u64;
            b.iter(|| {
                // Alternate table hits and misses.
                key = key.wrapping_add(1);
                f.route(Key(key % (2 * table_size.max(1)) as u64))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
