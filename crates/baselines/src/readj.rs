//! Readj — Gedik, "Partitioning functions for stateful data parallelism in
//! stream processing", VLDBJ 2014. The paper's closest competitor.
//!
//! Readj uses the same hash + explicit-table distribution function, but
//! rebalances very differently:
//!
//! 1. it first tries to *move keys back* to their hash destinations
//!    (shrinking the table) whenever that does not overload the target;
//! 2. it then repeatedly searches **all (task, key) pairs** for the best
//!    single *move* or *swap* of hot keys between the most-loaded task and
//!    any other, applying actions until balance or no improvement.
//!
//! Only keys whose cost is at least `σ · L̄` participate; a smaller σ
//! tracks more candidates — better plans, much slower search (the paper
//! sweeps σ and reports Readj's best result, and so do our benches).
//! Because the search only considers heavy keys and minimizes imbalance
//! rather than state movement, it degrades when key workloads vary widely
//! (paper §VI) — the behaviour Figs. 12–14 measure.

use streambal_core::{
    loads_of, needs_rebalance, outcome_from_assignment, AssignmentFn, IntervalStats, Key,
    KeyRecord, RebalanceInput, RebalanceOutcome, StatsWindow, TaskId,
};

use crate::{Partitioner, RoutingView};

/// Readj tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadjConfig {
    /// Imbalance tolerance (same θmax semantics as the core algorithms).
    pub theta_max: f64,
    /// Candidate threshold: keys with `c(k) ≥ σ · L̄` join the search.
    pub sigma: f64,
    /// Safety cap on applied actions per rebalance.
    pub max_actions: usize,
}

impl Default for ReadjConfig {
    fn default() -> Self {
        ReadjConfig {
            theta_max: 0.08,
            sigma: 0.05,
            max_actions: 512,
        }
    }
}

/// One search action.
#[derive(Debug, Clone, Copy)]
enum Action {
    /// Move key (record index) to a task.
    Move(u32, TaskId),
    /// Swap two keys between their tasks.
    Swap(u32, u32),
}

/// Runs the Readj rebalance over the records, returning the new
/// assignment (parallel to `records`).
pub fn readj_rebalance(records: &[KeyRecord], n_tasks: usize, cfg: &ReadjConfig) -> Vec<TaskId> {
    assert!(n_tasks > 0, "need at least one task");
    let mut assign: Vec<TaskId> = records.iter().map(|r| r.current).collect();
    let mut loads = vec![0u64; n_tasks];
    for r in records {
        loads[r.current.index()] += r.cost;
    }
    let total: u64 = loads.iter().sum();
    let mean = total as f64 / n_tasks as f64;
    let lmax = (1.0 + cfg.theta_max) * mean;

    // Step 1: move back parked keys while the hash target has room —
    // Readj's signature bias ("always tries to move back the keys").
    let mut back: Vec<u32> = (0..records.len() as u32)
        .filter(|&i| records[i as usize].in_table())
        .collect();
    back.sort_unstable_by_key(|&i| std::cmp::Reverse(records[i as usize].cost));
    for i in back {
        let r = &records[i as usize];
        let (cur, home) = (assign[i as usize], r.hash_dest);
        if cur == home {
            continue;
        }
        if loads[home.index()] as f64 + r.cost as f64 <= lmax {
            loads[cur.index()] -= r.cost;
            loads[home.index()] += r.cost;
            assign[i as usize] = home;
        }
    }

    // Step 2: hot-key candidates.
    let threshold = cfg.sigma * mean;
    let candidates: Vec<u32> = (0..records.len() as u32)
        .filter(|&i| records[i as usize].cost as f64 >= threshold)
        .collect();

    for _ in 0..cfg.max_actions {
        // Most-loaded task.
        let dmax = (0..n_tasks).max_by_key(|&d| (loads[d], d)).unwrap();
        if (loads[dmax] as f64) <= lmax {
            break; // balanced
        }
        let current_max = *loads.iter().max().unwrap();

        // Exhaustive move/swap search among hot keys, as described in the
        // paper ("considers all possible swaps by pairing tasks and keys").
        let mut best: Option<(u64, u64, Action)> = None; // (new_max, bytes, act)
        let on_dmax: Vec<u32> = candidates
            .iter()
            .copied()
            .filter(|&i| assign[i as usize].index() == dmax)
            .collect();
        for &i in &on_dmax {
            let ci = records[i as usize].cost;
            for d2 in 0..n_tasks {
                if d2 == dmax {
                    continue;
                }
                // Move i → d2.
                let new_pair_max = (loads[dmax] - ci).max(loads[d2] + ci);
                let new_max = new_pair_max.max(third_max(&loads, dmax, d2));
                let bytes = records[i as usize].mem;
                if new_max < current_max && best.is_none_or(|(m, b, _)| (new_max, bytes) < (m, b)) {
                    best = Some((new_max, bytes, Action::Move(i, TaskId::from(d2))));
                }
                // Swap i ↔ j for hot j on d2 with smaller cost.
                for &j in &candidates {
                    if assign[j as usize].index() != d2 {
                        continue;
                    }
                    let cj = records[j as usize].cost;
                    if cj >= ci {
                        continue;
                    }
                    let delta = ci - cj;
                    let new_pair_max = (loads[dmax] - delta).max(loads[d2] + delta);
                    let new_max = new_pair_max.max(third_max(&loads, dmax, d2));
                    let bytes = records[i as usize].mem + records[j as usize].mem;
                    if new_max < current_max
                        && best.is_none_or(|(m, b, _)| (new_max, bytes) < (m, b))
                    {
                        best = Some((new_max, bytes, Action::Swap(i, j)));
                    }
                }
            }
        }
        match best {
            Some((_, _, Action::Move(i, d2))) => {
                let ci = records[i as usize].cost;
                loads[dmax] -= ci;
                loads[d2.index()] += ci;
                assign[i as usize] = d2;
            }
            Some((_, _, Action::Swap(i, j))) => {
                let (ci, cj) = (records[i as usize].cost, records[j as usize].cost);
                let d2 = assign[j as usize];
                loads[dmax] = loads[dmax] - ci + cj;
                loads[d2.index()] = loads[d2.index()] - cj + ci;
                assign[i as usize] = d2;
                assign[j as usize] = TaskId::from(dmax);
            }
            None => break, // no improving action among hot keys
        }
    }
    assign
}

/// Max load over tasks other than the two being modified.
fn third_max(loads: &[u64], a: usize, b: usize) -> u64 {
    loads
        .iter()
        .enumerate()
        .filter(|&(d, _)| d != a && d != b)
        .map(|(_, &l)| l)
        .max()
        .unwrap_or(0)
}

/// Stateful Readj partitioner: hash + table routing with the VLDBJ'14
/// rebalance at interval boundaries.
#[derive(Debug)]
pub struct ReadjPartitioner {
    assignment: AssignmentFn,
    window: StatsWindow,
    cfg: ReadjConfig,
    rebalances: usize,
    last_install_was_delta: bool,
}

impl ReadjPartitioner {
    /// Creates a Readj partitioner over `n_tasks` instances keeping `w`
    /// intervals of state.
    pub fn new(n_tasks: usize, window: usize, cfg: ReadjConfig) -> Self {
        ReadjPartitioner {
            assignment: AssignmentFn::hash_only(n_tasks),
            window: StatsWindow::new(window),
            cfg,
            rebalances: 0,
            last_install_was_delta: false,
        }
    }

    /// Rebalances fired so far.
    pub fn rebalances(&self) -> usize {
        self.rebalances
    }

    fn build_input(&self) -> RebalanceInput {
        // Split keys are excluded, mirroring `Rebalancer::build_input`:
        // their routing rotates over replicas, so whole-key move/swap
        // actions are meaningless for them.
        let assignment = &self.assignment;
        let mut records = self.window.records(|k| {
            if assignment.split_replicas(k).is_some() {
                let h = assignment.hash_route(k);
                (h, h)
            } else {
                (assignment.route(k), assignment.hash_route(k))
            }
        });
        if assignment.has_splits() {
            records.retain(|r| assignment.split_replicas(r.key).is_none());
        }
        RebalanceInput {
            n_tasks: assignment.n_tasks(),
            records,
        }
    }
}

impl Partitioner for ReadjPartitioner {
    fn name(&self) -> String {
        "Readj".into()
    }

    fn n_tasks(&self) -> usize {
        self.assignment.n_tasks()
    }

    #[inline]
    fn route(&mut self, key: Key) -> TaskId {
        self.assignment.route(key)
    }

    fn route_batch(&mut self, keys: &[Key], out: &mut Vec<TaskId>) {
        self.assignment.route_batch(keys, out);
    }

    fn end_interval(&mut self, stats: IntervalStats) -> Option<RebalanceOutcome> {
        self.window.push(stats);
        let input = self.build_input();
        if input.records.is_empty() {
            return None;
        }
        let summary = loads_of(&input.records, input.n_tasks);
        // The shared overload predicate is exactly Readj's actionable
        // region: `readj_rebalance`'s move/swap loop only acts while some
        // task exceeds `Lmax` (it breaks at `loads[dmax] ≤ lmax`), so on
        // an under-load-only shape — max θ past θmax but nothing above
        // `Lmax` — it provably returns the identity assignment. Firing on
        // deviation would only add no-op rebalances to the reports (the
        // `underload_only_is_a_noop` test pins this equivalence).
        if !needs_rebalance(&summary, self.cfg.theta_max) {
            return None;
        }
        let assign = readj_rebalance(&input.records, input.n_tasks, &self.cfg);
        let outcome = outcome_from_assignment(&input, &assign);
        // Delta install (O(churn)) with an occasional staleness resync —
        // not the old whole-table clone-and-swap per rebalance.
        self.last_install_was_delta = self
            .assignment
            .install_rebalance(&outcome.table, outcome.plan.moves());
        self.rebalances += 1;
        Some(outcome)
    }

    fn add_task(&mut self) -> TaskId {
        self.assignment.add_task()
    }

    fn scale_out(&mut self, live: &[Key]) -> TaskId {
        self.assignment.add_task_pinned(live)
    }

    fn scale_out_plan(&mut self, live: &[Key]) -> (TaskId, Vec<(Key, TaskId)>) {
        // Plan over the union of the caller's observation and the
        // statistics window (`StatsWindow::union_keys`): every key that
        // recently carried state is a pre-placement candidate, however
        // thin a keyspace slice the last (possibly blurred) round saw.
        let live = self.window.union_keys(live.iter().copied());
        self.assignment.add_task_with_moves(&live)
    }

    fn scale_in(&mut self, victim: TaskId, live: &[Key]) {
        assert_eq!(
            victim.index(),
            self.assignment.n_tasks() - 1,
            "scale-in retires the highest-numbered task"
        );
        self.assignment.remove_task_pinned(live);
    }

    fn routing_view(&self) -> RoutingView {
        RoutingView::of_assignment(&self.assignment)
    }

    fn last_install_was_delta(&self) -> bool {
        self.last_install_was_delta
    }

    fn reroute_dead(
        &mut self,
        dead: TaskId,
        is_dead: &dyn Fn(usize) -> bool,
    ) -> Vec<(Key, TaskId)> {
        self.assignment.repin_dead(dead, is_dead)
    }

    fn apply_moves(&mut self, moves: &[(Key, TaskId)]) -> bool {
        self.assignment.apply_delta(moves.iter().copied());
        true
    }

    fn split_key(&mut self, key: Key, replicas: &[TaskId]) -> bool {
        self.assignment.set_split(key, replicas)
    }

    fn unsplit_key(&mut self, key: Key) -> Option<Vec<TaskId>> {
        self.assignment.clear_split(key)
    }

    fn splits(&self) -> Vec<(Key, Vec<TaskId>)> {
        self.assignment.splits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streambal_core::LoadSummary;

    fn rec(key: u64, cost: u64, mem: u64, cur: u32, hash: u32) -> KeyRecord {
        KeyRecord {
            key: Key(key),
            cost,
            mem,
            current: TaskId(cur),
            hash_dest: TaskId(hash),
        }
    }

    fn loads_after(records: &[KeyRecord], assign: &[TaskId], n: usize) -> Vec<u64> {
        let mut loads = vec![0u64; n];
        for (r, d) in records.iter().zip(assign) {
            loads[d.index()] += r.cost;
        }
        loads
    }

    #[test]
    fn balances_hot_keys() {
        // Task 0 holds two hot keys; Readj should spread them.
        let records = vec![
            rec(1, 50, 10, 0, 0),
            rec(2, 50, 10, 0, 0),
            rec(3, 5, 1, 1, 1),
            rec(4, 5, 1, 2, 2),
        ];
        let cfg = ReadjConfig {
            theta_max: 0.3,
            sigma: 0.1,
            max_actions: 16,
        };
        let assign = readj_rebalance(&records, 3, &cfg);
        let loads = loads_after(&records, &assign, 3);
        // The two indivisible cost-50 keys bound the optimum at max = 50
        // (initially 100). Readj must split them.
        assert_eq!(*loads.iter().max().unwrap(), 50, "loads: {loads:?}");
    }

    #[test]
    fn swap_used_when_move_alone_cannot_improve() {
        // d0 = {7, 5} = 12, d1 = {4, 4} = 8. Moving any key makes it
        // worse; swapping 5↔4 (or 7↔4) improves to 11/9.
        let records = vec![
            rec(1, 7, 1, 0, 0),
            rec(2, 5, 1, 0, 0),
            rec(3, 4, 1, 1, 1),
            rec(4, 4, 1, 1, 1),
        ];
        let cfg = ReadjConfig {
            theta_max: 0.05,
            sigma: 0.01,
            max_actions: 8,
        };
        let assign = readj_rebalance(&records, 2, &cfg);
        let loads = loads_after(&records, &assign, 2);
        assert!(
            *loads.iter().max().unwrap() < 12,
            "swap must have improved: {loads:?}"
        );
    }

    #[test]
    fn moves_parked_keys_back_first() {
        // A stale table entry whose hash home has headroom: step 1 clears
        // it before any move/swap search runs.
        let records = vec![
            rec(1, 5, 1, 1, 0),  // parked on d1, hash home d0
            rec(2, 10, 1, 0, 0), // resident on d0
            rec(3, 10, 1, 1, 1), // resident on d1
        ];
        let cfg = ReadjConfig {
            theta_max: 0.5, // lmax = 18.75 ⇒ room on d0 for the return
            ..ReadjConfig::default()
        };
        let assign = readj_rebalance(&records, 2, &cfg);
        assert_eq!(assign[0], TaskId(0), "moved back home");
        assert_eq!(assign[1], TaskId(0));
        assert_eq!(assign[2], TaskId(1));
    }

    #[test]
    fn smaller_sigma_is_no_worse() {
        // More candidates can only widen the searched space.
        let records: Vec<KeyRecord> = (0..60)
            .map(|i| rec(i, 1 + (i * i) % 23, 1, (i % 3) as u32, (i % 3) as u32))
            .collect();
        let theta_of = |sigma: f64| {
            let cfg = ReadjConfig {
                theta_max: 0.0,
                sigma,
                max_actions: 256,
            };
            let assign = readj_rebalance(&records, 3, &cfg);
            LoadSummary::new(loads_after(&records, &assign, 3)).max_theta()
        };
        assert!(theta_of(0.001) <= theta_of(0.5) + 1e-9);
    }

    #[test]
    fn high_sigma_blocks_all_actions() {
        // σ so large no key qualifies ⇒ assignment unchanged (except
        // move-backs, none here).
        let records = vec![rec(1, 30, 1, 0, 0), rec(2, 1, 1, 1, 1)];
        let cfg = ReadjConfig {
            theta_max: 0.0,
            sigma: 1e9,
            max_actions: 64,
        };
        let assign = readj_rebalance(&records, 2, &cfg);
        assert_eq!(assign, vec![TaskId(0), TaskId(1)]);
    }

    #[test]
    fn partitioner_triggers_and_applies_table() {
        let mut p = ReadjPartitioner::new(
            4,
            1,
            ReadjConfig {
                theta_max: 0.08,
                sigma: 0.001,
                max_actions: 512,
            },
        );
        let mut iv = IntervalStats::new();
        for k in 0..400u64 {
            let cost = if k == 0 { 2000 } else { 3 };
            iv.observe(Key(k), 1, cost, cost);
        }
        let before = {
            let mut probe = ReadjPartitioner::new(4, 1, ReadjConfig::default());
            probe.window.push(iv.clone());
            let input = probe.build_input();
            loads_of(&input.records, 4).max_theta()
        };
        assert!(before > 0.08);
        let outcome = p.end_interval(iv).expect("must trigger");
        assert!(outcome.achieved_theta <= before);
        assert_eq!(p.rebalances(), 1);
        for (k, d) in outcome.table.iter() {
            assert_eq!(p.route(k), d, "table must be live");
        }
    }

    #[test]
    fn terminates_on_unbalanceable_input() {
        // One giant key: nothing Readj can do; must not loop.
        let records = vec![rec(1, 1000, 1, 0, 0), rec(2, 1, 1, 1, 1)];
        let cfg = ReadjConfig {
            theta_max: 0.0,
            sigma: 0.0,
            max_actions: 1000,
        };
        let assign = readj_rebalance(&records, 2, &cfg);
        assert_eq!(assign.len(), 2);
    }

    /// Sharing the overload trigger loses Readj nothing: on an
    /// under-load-only shape (idle hash slot, nothing above `Lmax`) the
    /// move/swap loop cannot act — `readj_rebalance` returns the identity
    /// assignment — so the partitioner correctly declines to fire instead
    /// of reporting a no-op rebalance.
    #[test]
    fn underload_only_is_a_noop() {
        let n_tasks = 4;
        let idle = TaskId(3);
        let probe = AssignmentFn::hash_only(n_tasks);
        let keys: Vec<Key> = (0..40_000u64)
            .map(Key)
            .filter(|&k| probe.hash_route(k) != idle)
            .take(6_000)
            .collect();
        let cfg = ReadjConfig {
            theta_max: 0.5, // Lmax = 1.5·mean > every active task's load
            sigma: 0.001,
            max_actions: 4096,
        };
        // The raw algorithm: identity assignment, nothing it can do.
        let records: Vec<KeyRecord> = keys
            .iter()
            .map(|&k| {
                let d = probe.hash_route(k);
                KeyRecord {
                    key: k,
                    cost: 1,
                    mem: 1,
                    current: d,
                    hash_dest: d,
                }
            })
            .collect();
        let assign = readj_rebalance(&records, n_tasks, &cfg);
        assert!(
            records.iter().zip(&assign).all(|(r, &d)| d == r.current),
            "below Lmax the search must not move anything"
        );
        // The partitioner therefore must not fire at all.
        let mut iv = IntervalStats::new();
        for &k in &keys {
            iv.observe(k, 1, 1, 1);
        }
        let mut p = ReadjPartitioner::new(n_tasks, 1, cfg);
        assert!(p.end_interval(iv).is_none(), "no-op trigger must be damped");
        assert_eq!(p.rebalances(), 0);
    }
}
