//! Regenerates the paper's Fig. 15 (see EXPERIMENTS.md).
fn main() {
    let scale = streambal_bench::Scale::from_env();
    print!("{}", streambal_bench::figs_runtime::fig15(scale));
}
