//! Deterministic fault injection and the engine fault ledger.
//!
//! A [`FaultPlan`] is a seeded, replayable schedule of faults to inject
//! into one engine run: worker kills pinned to interval boundaries or to
//! protocol markers (`MigrateOut`, `StateInstall`), drops of the *n*-th
//! control message of a given kind, and bounded stalls of a worker
//! thread. The plan is carried by `EngineConfig`, shared through an
//! [`FaultInjector`] with every instrumented site (controller loop,
//! source loop, worker threads), and every fired fault plus every
//! recovery action lands in the [`FaultEvent`] ledger returned in
//! `EngineReport::faults`.
//!
//! Determinism contract: with the same plan (same seed), the set of
//! *structural* ledger entries — injections, worker deaths, op retries
//! and aborts — is identical across runs. Entries therefore carry plan
//! coordinates (worker ids, interval numbers from the plan, message
//! ordinals, op epochs) and never wall-clock readings. Quantities that
//! depend on scheduling (how many in-flight tuples died in a killed
//! worker's queue) go to `EngineReport::lost_tuples`, not the ledger.
//!
//! Injected deaths are *controlled* worker exits, not real panics: a
//! panicking thread inside `std::thread::scope` would abort the whole
//! engine at scope exit, which is exactly the behaviour the recovery
//! layer exists to avoid. A killed worker ships a final
//! `WorkerEvent::Killed` carrying its unrecoverable per-key counts and
//! its receiver (standing in for the OS reclaiming a dead process's
//! socket), then returns.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use rand::{rngs::StdRng, Rng, SeedableRng};
use streambal_hashring::FxHashMap;
use streambal_trace::TraceSink;

/// Control-plane message kinds that [`FaultSpec::DropCtl`] can target.
///
/// Deliberately excludes the state-bearing messages (`StateOut`,
/// `StateInstall` payload, `Retired`): dropping those would destroy
/// state without a death the accounting layer can attribute it to. Use
/// the kill/panic faults to lose state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtlKind {
    /// Source pause request (`SourceCtl::Pause` / `PauseDest`).
    Pause,
    /// Source pause acknowledgement (`SourceEvent::PauseAck`).
    PauseAck,
    /// Source resume request (`SourceCtl::Resume`).
    Resume,
    /// Source resume acknowledgement (`SourceEvent::ResumeAck`).
    ResumeAck,
    /// Per-interval stats request to a worker.
    StatsRequest,
    /// Worker stats report (`WorkerEvent::Stats`).
    Stats,
    /// Migration extraction marker (`Message::MigrateOut`).
    MigrateOut,
    /// State installation acknowledgement (`WorkerEvent::InstallAck`).
    InstallAck,
    /// Scale-in retire marker (`Message::Retire`).
    Retire,
}

impl CtlKind {
    /// Stable short name, used in ledger display and seeded generation.
    pub fn name(self) -> &'static str {
        match self {
            CtlKind::Pause => "pause",
            CtlKind::PauseAck => "pause_ack",
            CtlKind::Resume => "resume",
            CtlKind::ResumeAck => "resume_ack",
            CtlKind::StatsRequest => "stats_request",
            CtlKind::Stats => "stats",
            CtlKind::MigrateOut => "migrate_out",
            CtlKind::InstallAck => "install_ack",
            CtlKind::Retire => "retire",
        }
    }

    /// All droppable kinds, in the order seeded generation samples them.
    pub const ALL: [CtlKind; 9] = [
        CtlKind::Pause,
        CtlKind::PauseAck,
        CtlKind::Resume,
        CtlKind::ResumeAck,
        CtlKind::StatsRequest,
        CtlKind::Stats,
        CtlKind::MigrateOut,
        CtlKind::InstallAck,
        CtlKind::Retire,
    ];
}

/// One injectable fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// Worker `worker` performs a controlled death when it sees the
    /// stats request for interval `at_interval` (an interval boundary —
    /// the deterministic clock every worker observes).
    KillWorker { worker: usize, at_interval: u64 },
    /// Worker `worker` dies on the `nth` (1-based) `MigrateOut` marker
    /// it receives, *before* extracting — a crash mid-migration.
    KillOnMigrateOut { worker: usize, nth: usize },
    /// Worker `worker` dies on the `nth` (1-based) `StateInstall` it
    /// receives, before installing — models a panic inside the install
    /// path. The incoming blobs are counted as lost.
    KillOnInstall { worker: usize, nth: usize },
    /// Drop the `nth` (1-based) control message of kind `kind`,
    /// counted across the whole run at the sending site.
    DropCtl { kind: CtlKind, nth: usize },
    /// Worker `worker` sleeps `ms` milliseconds when it sees the stats
    /// request for interval `at_interval` — a slow-but-alive worker.
    /// FIFO order is preserved, so no state is lost; this exercises
    /// deadlines, retries, and timed-out stats rounds.
    StallWorker {
        worker: usize,
        at_interval: u64,
        ms: u64,
    },
}

/// A seeded, deterministic schedule of faults for one engine run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// The faults to inject.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan: no faults, zero overhead on the hot path beyond
    /// one shared-pointer clone at engine start.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan from explicit faults.
    pub fn new(faults: Vec<FaultSpec>) -> Self {
        FaultPlan { seed: 0, faults }
    }

    /// Generates a replayable mixed plan from `seed`: 1–3 faults drawn
    /// over `n_workers` workers and `n_intervals` intervals. Worker 0
    /// is never killed (at least one survivor must exist for re-routing
    /// to have a target even in 2-worker configs).
    pub fn from_seed(seed: u64, n_workers: usize, n_intervals: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_faults = rng.gen_range(1..=3usize);
        let mut faults = Vec::with_capacity(n_faults);
        let mut killed = false;
        for _ in 0..n_faults {
            let kind = rng.gen_range(0..5u32);
            let worker = if n_workers > 1 {
                rng.gen_range(1..n_workers)
            } else {
                0
            };
            let interval = rng.gen_range(1..n_intervals.max(2));
            match kind {
                // At most one kill per seeded plan: multi-kill runs are
                // legal but make tiny test configs mostly-dead.
                0 | 1 if !killed => {
                    killed = true;
                    faults.push(if kind == 0 {
                        FaultSpec::KillWorker {
                            worker,
                            at_interval: interval,
                        }
                    } else {
                        FaultSpec::KillOnMigrateOut { worker, nth: 1 }
                    });
                }
                2 => {
                    let k = CtlKind::ALL[rng.gen_range(0..CtlKind::ALL.len())];
                    faults.push(FaultSpec::DropCtl {
                        kind: k,
                        nth: rng.gen_range(1..=2usize),
                    });
                }
                3 => faults.push(FaultSpec::StallWorker {
                    worker,
                    at_interval: interval,
                    ms: rng.gen_range(5..40u64),
                }),
                _ => {
                    if !killed {
                        killed = true;
                        faults.push(FaultSpec::KillOnInstall { worker, nth: 1 });
                    }
                }
            }
        }
        FaultPlan { seed, faults }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// What a protocol operation was doing when a deadline verdict landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A pause→migrate→resume rebalance (or scale-out pre-placement).
    Migrate,
    /// A drain→migrate→retire scale-in.
    Retire,
    /// A source resume awaiting its acknowledgement.
    Resume,
}

impl OpKind {
    fn name(self) -> &'static str {
        match self {
            OpKind::Migrate => "migrate",
            OpKind::Retire => "retire",
            OpKind::Resume => "resume",
        }
    }
}

/// One entry in the fault ledger (`EngineReport::faults`).
///
/// Entries are structural — plan coordinates and protocol epochs only,
/// no wall-clock readings and no scheduling-dependent quantities — so
/// replaying a plan yields a comparable ledger (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// A planned kill fired (any of the three kill flavours).
    InjectedKill { worker: usize, trigger: KillTrigger },
    /// A planned control-message drop fired.
    InjectedDrop { kind: CtlKind, nth: usize },
    /// A planned stall fired.
    InjectedStall { worker: usize, at_interval: u64 },
    /// The controller observed a worker death (injected kill, channel
    /// disconnect, or a failed send to it) and started recovery.
    WorkerDead { worker: usize },
    /// A failed control-plane send revealed a disconnected peer.
    SendFailed { to: SendPeer },
    /// The worker's windowed state could not be recovered; its per-key
    /// tuple counts were added to `EngineReport::lost_tuples`.
    StateLost { worker: usize },
    /// Keys pinned away from a dead worker onto survivors.
    Rerouted {
        from_worker: usize,
        moved_keys: usize,
    },
    /// An in-flight protocol op missed its deadline and was re-driven
    /// (idempotent resend of the stalled phase).
    OpRetried { op: OpKind, epoch: u64 },
    /// An op missed its deadline after a retry and was aborted: state
    /// re-installed at its origin, source resumed under the pre-op
    /// routing view.
    OpAborted { op: OpKind, epoch: u64 },
    /// A stats round closed by deadline with reporters still missing.
    RoundTimedOut { interval: u64, missing: Vec<usize> },
    /// An elasticity decision was suppressed while recovery was in
    /// progress (dead workers present or within the hold-down window).
    ScaleHeld { interval: u64 },
    /// A dead slot was re-provisioned by a scale-out decision.
    SlotRevived { worker: usize },
    /// A late/duplicate protocol message was absorbed because its epoch
    /// already completed or aborted (echo of a retried op, or state
    /// from a zombie worker re-homed under the current view).
    StaleEpochAbsorbed { epoch: u64, what: &'static str },
}

/// Which instrumented point a kill fired at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillTrigger {
    /// Interval boundary (stats request for the planned interval).
    Interval(u64),
    /// The n-th `MigrateOut` marker.
    MigrateOut(usize),
    /// The n-th `StateInstall` message.
    Install(usize),
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultEvent::InjectedKill { worker, trigger } => match trigger {
                KillTrigger::Interval(iv) => {
                    write!(f, "inject: kill worker {worker} at interval {iv}")
                }
                KillTrigger::MigrateOut(n) => {
                    write!(f, "inject: kill worker {worker} on migrate-out #{n}")
                }
                KillTrigger::Install(n) => {
                    write!(f, "inject: kill worker {worker} on install #{n}")
                }
            },
            FaultEvent::InjectedDrop { kind, nth } => {
                write!(f, "inject: drop {} #{nth}", kind.name())
            }
            FaultEvent::InjectedStall {
                worker,
                at_interval,
            } => {
                write!(f, "inject: stall worker {worker} at interval {at_interval}")
            }
            FaultEvent::WorkerDead { worker } => write!(f, "worker {worker} dead"),
            FaultEvent::SendFailed { to } => write!(f, "send failed: {to}"),
            FaultEvent::StateLost { worker } => {
                write!(f, "worker {worker} state lost (accounted)")
            }
            FaultEvent::Rerouted {
                from_worker,
                moved_keys,
            } => write!(f, "rerouted {moved_keys} keys off worker {from_worker}"),
            FaultEvent::OpRetried { op, epoch } => {
                write!(
                    f,
                    "op {} epoch {epoch}: deadline expired, retried",
                    op.name()
                )
            }
            FaultEvent::OpAborted { op, epoch } => {
                write!(f, "op {} epoch {epoch}: aborted, rolled back", op.name())
            }
            FaultEvent::RoundTimedOut { interval, missing } => {
                write!(
                    f,
                    "stats round {interval} closed by deadline, missing {missing:?}"
                )
            }
            FaultEvent::ScaleHeld { interval } => {
                write!(
                    f,
                    "scale decision held during recovery at interval {interval}"
                )
            }
            FaultEvent::SlotRevived { worker } => write!(f, "slot {worker} revived"),
            FaultEvent::StaleEpochAbsorbed { epoch, what } => {
                write!(f, "stale {what} for closed epoch {epoch} absorbed")
            }
        }
    }
}

/// A peer a control-plane send can fail toward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendPeer {
    /// A worker's data/control channel.
    Worker(usize),
    /// The source control channel.
    Source,
    /// The controller event channel (reported by source/workers).
    Controller,
}

impl std::fmt::Display for SendPeer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendPeer::Worker(w) => write!(f, "worker {w}"),
            SendPeer::Source => write!(f, "source"),
            SendPeer::Controller => write!(f, "controller"),
        }
    }
}

/// Shared injection state: one per engine run, cloned (via `Arc`) into
/// the controller, the source loop, and every worker.
///
/// All decision methods are deterministic given the plan and the
/// sequence of calls at each instrumented site; the per-kind drop
/// counters are global atomics, which is deterministic because each
/// control kind is only ever sent from a single thread (controller or
/// source or one worker identity per kind).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Messages of each kind sent so far (1-based after increment).
    drop_seen: Mutex<FxHashMap<CtlKind, usize>>,
    /// Ledger of fired faults and recovery actions.
    ledger: Mutex<Vec<FaultEvent>>,
    /// Total tuples recorded lost (cheap liveness probe for tests).
    lost: AtomicUsize,
    /// Flight-recorder sink: every ledger entry is mirrored as a trace
    /// event whose `seq` is its ledger index, so ledger order (the
    /// deterministic order) is canonical in the merged trace.
    sink: Arc<TraceSink>,
}

impl FaultInjector {
    /// Builds the injector for one run, with no trace mirroring.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector::with_trace(plan, TraceSink::disabled())
    }

    /// Builds the injector for one run, mirroring ledger entries into
    /// the given flight-recorder sink.
    pub fn with_trace(plan: FaultPlan, sink: Arc<TraceSink>) -> Self {
        FaultInjector {
            plan,
            drop_seen: Mutex::new(FxHashMap::default()),
            ledger: Mutex::new(Vec::new()),
            lost: AtomicUsize::new(0),
            sink,
        }
    }

    /// Whether the plan injects nothing (lets hot paths skip probes).
    pub fn is_passive(&self) -> bool {
        self.plan.is_empty()
    }

    /// The plan this injector replays.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Records a ledger entry (and mirrors it into the trace; the
    /// mirror's `seq` — the ledger index — is computed under the ledger
    /// lock, so the canonical order survives racing sink appends).
    pub fn record(&self, ev: FaultEvent) {
        let mut ledger = self.ledger.lock().unwrap_or_else(|e| e.into_inner());
        let idx = ledger.len() as u64;
        if self.sink.is_enabled() {
            self.sink.fault(idx, ev.to_string());
        }
        ledger.push(ev);
    }

    /// Adds to the lost-tuple tally (accounting lives in the report;
    /// this is a cross-thread total for quick assertions).
    pub fn add_lost(&self, n: u64) {
        self.lost.fetch_add(n as usize, Ordering::Relaxed);
    }

    /// Total tuples recorded lost so far.
    pub fn total_lost(&self) -> u64 {
        self.lost.load(Ordering::Relaxed) as u64
    }

    /// Drains the ledger (called once by the engine at report time).
    pub fn take_ledger(&self) -> Vec<FaultEvent> {
        std::mem::take(&mut *self.ledger.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Worker `worker`, observing the stats request for `interval`:
    /// should it die here? Records the injection when firing.
    pub fn should_kill_at_interval(&self, worker: usize, interval: u64) -> bool {
        for f in &self.plan.faults {
            if let FaultSpec::KillWorker {
                worker: w,
                at_interval,
            } = f
            {
                if *w == worker && *at_interval == interval {
                    self.record(FaultEvent::InjectedKill {
                        worker,
                        trigger: KillTrigger::Interval(interval),
                    });
                    return true;
                }
            }
        }
        false
    }

    /// Worker `worker` received its `seen`-th (1-based) `MigrateOut`
    /// marker: should it die before extracting?
    pub fn should_kill_on_migrate_out(&self, worker: usize, seen: usize) -> bool {
        for f in &self.plan.faults {
            if let FaultSpec::KillOnMigrateOut { worker: w, nth } = f {
                if *w == worker && *nth == seen {
                    self.record(FaultEvent::InjectedKill {
                        worker,
                        trigger: KillTrigger::MigrateOut(seen),
                    });
                    return true;
                }
            }
        }
        false
    }

    /// Worker `worker` received its `seen`-th (1-based) `StateInstall`:
    /// should it die before installing?
    pub fn should_kill_on_install(&self, worker: usize, seen: usize) -> bool {
        for f in &self.plan.faults {
            if let FaultSpec::KillOnInstall { worker: w, nth } = f {
                if *w == worker && *nth == seen {
                    self.record(FaultEvent::InjectedKill {
                        worker,
                        trigger: KillTrigger::Install(seen),
                    });
                    return true;
                }
            }
        }
        false
    }

    /// Stall duration (if any) for worker `worker` at `interval`.
    pub fn stall_at_interval(&self, worker: usize, interval: u64) -> Option<u64> {
        for f in &self.plan.faults {
            if let FaultSpec::StallWorker {
                worker: w,
                at_interval,
                ms,
            } = f
            {
                if *w == worker && *at_interval == interval {
                    self.record(FaultEvent::InjectedStall {
                        worker,
                        at_interval: interval,
                    });
                    return Some(*ms);
                }
            }
        }
        None
    }

    /// Called at every instrumented control-plane send site: counts the
    /// message and returns `true` if this one must be dropped (the
    /// caller skips the send and proceeds as if it were lost in
    /// flight).
    pub fn should_drop(&self, kind: CtlKind) -> bool {
        if self.plan.is_empty() {
            return false;
        }
        let seen = {
            let mut map = self.drop_seen.lock().unwrap_or_else(|e| e.into_inner());
            let e = map.entry(kind).or_insert(0);
            *e += 1;
            *e
        };
        for f in &self.plan.faults {
            if let FaultSpec::DropCtl { kind: k, nth } = f {
                if *k == kind && *nth == seen {
                    self.record(FaultEvent::InjectedDrop { kind, nth: seen });
                    return true;
                }
            }
        }
        false
    }
}

pub use streambal_core::next_live;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_replay() {
        for seed in 0..50 {
            let a = FaultPlan::from_seed(seed, 4, 10);
            let b = FaultPlan::from_seed(seed, 4, 10);
            assert_eq!(a, b, "seed {seed} not replayable");
            assert!(!a.faults.is_empty());
            assert!(a.faults.len() <= 3);
        }
    }

    #[test]
    fn seeded_plans_never_kill_worker_zero() {
        for seed in 0..200 {
            let p = FaultPlan::from_seed(seed, 4, 10);
            for f in &p.faults {
                match f {
                    FaultSpec::KillWorker { worker, .. }
                    | FaultSpec::KillOnMigrateOut { worker, .. }
                    | FaultSpec::KillOnInstall { worker, .. } => {
                        assert_ne!(*worker, 0, "seed {seed} kills worker 0");
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn at_most_one_kill_per_seeded_plan() {
        for seed in 0..200 {
            let p = FaultPlan::from_seed(seed, 4, 10);
            let kills = p
                .faults
                .iter()
                .filter(|f| {
                    matches!(
                        f,
                        FaultSpec::KillWorker { .. }
                            | FaultSpec::KillOnMigrateOut { .. }
                            | FaultSpec::KillOnInstall { .. }
                    )
                })
                .count();
            assert!(kills <= 1, "seed {seed} has {kills} kills");
        }
    }

    #[test]
    fn drop_counter_fires_on_exact_ordinal() {
        let inj = FaultInjector::new(FaultPlan::new(vec![FaultSpec::DropCtl {
            kind: CtlKind::PauseAck,
            nth: 2,
        }]));
        assert!(!inj.should_drop(CtlKind::PauseAck)); // #1
        assert!(!inj.should_drop(CtlKind::Pause)); // other kind, own counter
        assert!(inj.should_drop(CtlKind::PauseAck)); // #2 fires
        assert!(!inj.should_drop(CtlKind::PauseAck)); // #3
        assert_eq!(
            inj.take_ledger(),
            vec![FaultEvent::InjectedDrop {
                kind: CtlKind::PauseAck,
                nth: 2
            }]
        );
    }

    #[test]
    fn kill_probes_fire_once_per_coordinate() {
        let inj = FaultInjector::new(FaultPlan::new(vec![
            FaultSpec::KillWorker {
                worker: 2,
                at_interval: 3,
            },
            FaultSpec::KillOnMigrateOut { worker: 1, nth: 1 },
        ]));
        assert!(!inj.should_kill_at_interval(2, 2));
        assert!(!inj.should_kill_at_interval(1, 3));
        assert!(inj.should_kill_at_interval(2, 3));
        assert!(inj.should_kill_on_migrate_out(1, 1));
        assert!(!inj.should_kill_on_migrate_out(1, 2));
        assert_eq!(inj.take_ledger().len(), 2);
    }

    #[test]
    fn next_live_cycles_past_dead_slots() {
        let dead = [false, true, true, false];
        assert_eq!(next_live(1, 4, |d| dead[d]), 3);
        assert_eq!(next_live(2, 4, |d| dead[d]), 3);
        assert_eq!(next_live(3, 4, |d| dead[d]), 3);
        assert_eq!(next_live(0, 4, |d| dead[d]), 0);
        // All dead: caller gets the original slot back.
        assert_eq!(next_live(2, 4, |_| true), 2);
    }
}
