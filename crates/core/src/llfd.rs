//! Least-Load Fit Decreasing (paper §III-A, Algorithm 1).
//!
//! LLFD is the Phase-III assignment subroutine shared by MinTable, MinMig
//! and Mixed. Candidate keys are processed in non-increasing order of
//! computation cost; each is offered to task instances in ascending order
//! of current load. The `Adjust` function decides acceptance: a task takes
//! the key outright if it stays under `Lmax = (1+θmax)·L̄`, or it may
//! *exchange* — evict an "exchangeable set" `E` of strictly-cheaper keys
//! (selected by the criteria ψ) back into the candidate pool so that the
//! incoming key fits. The strict `c(k′) < c(k)` eviction rule means every
//! displacement chain strictly decreases in cost, which (by well-founded
//! multiset ordering) guarantees termination.
//!
//! The pseudocode leaves one case open: a key that *no* instance accepts.
//! We force-assign it to the least-loaded instance (accepting temporary
//! overload) so the subroutine is total; DESIGN.md records this deviation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::key::TaskId;
use crate::stats::KeyRecord;

/// The key-selection criteria ψ used for Phase-II draining and for
/// exchangeable-set construction inside `Adjust`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Criteria {
    /// "Highest computation cost first" — MinTable's ψ.
    HighestCost,
    /// "Largest migration-priority index `γ = c^β / S` first" — MinMig's
    /// and Mixed's ψ.
    LargestGamma {
        /// The weight-scaling factor β trading computation cost against
        /// migration (memory) cost; the paper defaults to 1.5.
        beta: f64,
    },
}

impl Criteria {
    /// The ψ score of a record (higher = selected earlier).
    #[inline]
    pub fn score(&self, r: &KeyRecord) -> f64 {
        match *self {
            Criteria::HighestCost => r.cost as f64,
            Criteria::LargestGamma { beta } => r.gamma(beta),
        }
    }
}

/// Heap entry ordering candidates by descending cost, tie-broken by key id
/// for determinism.
#[derive(Debug, PartialEq, Eq)]
struct Candidate {
    cost: u64,
    idx: u32,
    key_raw: u64,
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cost
            .cmp(&other.cost)
            .then_with(|| other.key_raw.cmp(&self.key_raw))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Mutable assignment state shared by all the rebalance algorithms.
///
/// Holds the key records, the working assignment (`None` = in candidate
/// set `C`), per-task loads, and per-task key lists kept sorted by ψ score
/// so that Phase-II draining and exchangeable-set search are linear scans
/// from the front.
#[derive(Debug)]
pub struct Arena<'a> {
    records: &'a [KeyRecord],
    /// Working assignment; `None` means the key sits in the candidate set.
    assign: Vec<Option<TaskId>>,
    /// ψ score per key (precomputed).
    score: Vec<f64>,
    /// Current load per task.
    loads: Vec<u64>,
    /// Key indices per task, sorted descending by ψ score.
    task_keys: Vec<Vec<u32>>,
    n_tasks: usize,
    /// Mean load `L̄` — invariant over the run since total cost is fixed.
    mean: f64,
}

impl<'a> Arena<'a> {
    /// Builds the arena with every key assigned to `initial(idx, record)`.
    ///
    /// `initial` lets MinTable start from hash destinations (table cleaned)
    /// while MinMig starts from `current`; Mixed mixes per key (Phase I
    /// moves back only the `n` selected table entries).
    pub fn new(
        records: &'a [KeyRecord],
        n_tasks: usize,
        criteria: Criteria,
        mut initial: impl FnMut(usize, &KeyRecord) -> TaskId,
    ) -> Self {
        assert!(n_tasks > 0, "arena needs at least one task");
        let mut assign = Vec::with_capacity(records.len());
        let mut score = Vec::with_capacity(records.len());
        let mut loads = vec![0u64; n_tasks];
        let mut task_keys: Vec<Vec<u32>> = vec![Vec::new(); n_tasks];
        let total: u64 = records.iter().map(|r| r.cost).sum();
        for (i, r) in records.iter().enumerate() {
            let d = initial(i, r);
            assert!(d.index() < n_tasks, "initial assignment out of range");
            assign.push(Some(d));
            score.push(criteria.score(r));
            loads[d.index()] += r.cost;
            task_keys[d.index()].push(i as u32);
        }
        let score_ref = &score;
        for keys in &mut task_keys {
            keys.sort_unstable_by(|&a, &b| {
                score_ref[b as usize]
                    .partial_cmp(&score_ref[a as usize])
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| a.cmp(&b))
            });
        }
        Arena {
            records,
            assign,
            score,
            loads,
            task_keys,
            n_tasks,
            mean: total as f64 / n_tasks as f64,
        }
    }

    /// The mean load `L̄`.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current per-task loads.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// The working assignment of key index `i` (`None` = candidate).
    #[inline]
    pub fn assignment(&self, i: usize) -> Option<TaskId> {
        self.assign[i]
    }

    /// Extracts the final assignment vector; panics if any key is still a
    /// candidate (callers must run LLFD to completion first).
    pub fn into_assignment(self) -> Vec<TaskId> {
        // lint: allow(panic, reason = "documented contract: callers run LLFD
        // to completion first; an unassigned key here would otherwise
        // surface as keys silently routed to task 0")
        self.assign
            .into_iter()
            .map(|a| a.expect("LLFD left an unassigned key"))
            .collect()
    }

    fn insert_sorted(&mut self, d: TaskId, idx: u32) {
        let s = self.score[idx as usize];
        let keys = &mut self.task_keys[d.index()];
        let score = &self.score;
        let pos = keys.partition_point(|&other| {
            let so = score[other as usize];
            so > s || (so == s && other < idx)
        });
        keys.insert(pos, idx);
    }

    /// Assigns candidate `idx` to task `d`, updating loads and key lists.
    fn place(&mut self, idx: u32, d: TaskId) {
        debug_assert!(self.assign[idx as usize].is_none());
        self.assign[idx as usize] = Some(d);
        self.loads[d.index()] += self.records[idx as usize].cost;
        self.insert_sorted(d, idx);
    }

    /// Disassociates key `idx` from its task into the candidate set,
    /// returning its record. No-op panic guard: key must be assigned.
    pub fn disassociate(&mut self, idx: u32) -> &KeyRecord {
        // lint: allow(panic, reason = "documented no-op panic guard: callers
        // only disassociate assigned keys; proceeding would corrupt the
        // load accounting the whole Phase II drain is built on")
        let d = self.assign[idx as usize]
            .take()
            .expect("key already disassociated");
        self.loads[d.index()] -= self.records[idx as usize].cost;
        let keys = &mut self.task_keys[d.index()];
        // lint: allow(panic, reason = "place() inserts every assigned key
        // into its task's list; absence means the two structures diverged
        // and any rebalance computed from them would be garbage")
        let pos = keys
            .iter()
            .position(|&k| k == idx)
            .expect("task key list out of sync");
        keys.remove(pos);
        &self.records[idx as usize]
    }

    /// Phase II: drains overloaded tasks (`L(d) > Lmax`) by disassociating
    /// keys in ψ-descending order until each drops to `Lmax` or runs out of
    /// keys. Returns the candidate indices.
    pub fn drain_overloaded(&mut self, theta_max: f64) -> Vec<u32> {
        let lmax = (1.0 + theta_max) * self.mean;
        let mut candidates = Vec::new();
        for d in 0..self.n_tasks {
            while self.loads[d] as f64 > lmax {
                // Highest-ψ key of this task.
                let Some(&idx) = self.task_keys[d].first() else {
                    break;
                };
                self.disassociate(idx);
                candidates.push(idx);
            }
        }
        candidates
    }

    /// The `Adjust` function (Algorithm 1, lines 10–20). Returns true if
    /// key `idx` may be placed on `d`, possibly after evicting an
    /// exchangeable set `E` into `evicted`.
    ///
    /// `E` must satisfy: (i) `E ⊆ keys(d)`; (ii) every member strictly
    /// cheaper than the incoming key; (iii) `L(d) + c(k) − Σ_E c ≤ Lmax`.
    fn adjust(
        &mut self,
        idx: u32,
        d: TaskId,
        lmax: f64,
        evicted: &mut Vec<u32>,
        exchange: bool,
    ) -> bool {
        let c_in = self.records[idx as usize].cost;
        let after = self.loads[d.index()] as f64 + c_in as f64;
        if after <= lmax {
            return true;
        }
        if !exchange {
            return false; // ablation: no exchangeable-set mechanism
        }
        // Select E in ψ order among keys with c < c_in until (iii) holds.
        let mut need = after - lmax; // total cost E must shed
        let mut chosen: Vec<u32> = Vec::new();
        let mut shed = 0u64;
        for &cand in &self.task_keys[d.index()] {
            let c = self.records[cand as usize].cost;
            if c >= c_in {
                continue; // condition (ii)
            }
            chosen.push(cand);
            shed += c;
            if (shed as f64) >= need {
                need = 0.0;
                break;
            }
        }
        if need > 0.0 {
            return false; // no valid E exists
        }
        for cand in chosen {
            self.disassociate(cand);
            evicted.push(cand);
        }
        true
    }
}

/// Outcome counters for one LLFD run, for diagnostics and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LlfdReport {
    /// Keys placed without exchange.
    pub direct_placements: usize,
    /// Keys placed after evicting an exchangeable set.
    pub exchanges: usize,
    /// Keys force-assigned because every instance rejected them.
    pub forced: usize,
}

/// LLFD variations, for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlfdOptions {
    /// Enable the `Adjust` exchange mechanism (the paper's fix for the
    /// "re-overloading" problem). Disabling degrades LLFD to plain
    /// least-load-fit-decreasing with force-assignment — the ablation
    /// bench quantifies what the exchange buys.
    pub exchange: bool,
}

impl Default for LlfdOptions {
    fn default() -> Self {
        LlfdOptions { exchange: true }
    }
}

/// Runs LLFD (Algorithm 1) over the arena's current candidate set.
///
/// `candidates` are the indices disassociated in Phase II (plus any Phase-I
/// move-backs that left keys unassigned — in our formulation move-backs
/// stay assigned, so normally just Phase II's output). On return every key
/// is assigned.
pub fn llfd(arena: &mut Arena<'_>, candidates: Vec<u32>, theta_max: f64) -> LlfdReport {
    llfd_with_options(arena, candidates, theta_max, LlfdOptions::default())
}

/// [`llfd`] with explicit [`LlfdOptions`].
pub fn llfd_with_options(
    arena: &mut Arena<'_>,
    candidates: Vec<u32>,
    theta_max: f64,
    options: LlfdOptions,
) -> LlfdReport {
    let lmax = (1.0 + theta_max) * arena.mean();
    let mut heap: BinaryHeap<Candidate> = candidates
        .into_iter()
        .map(|idx| Candidate {
            cost: arena.records[idx as usize].cost,
            idx,
            key_raw: arena.records[idx as usize].key.raw(),
        })
        .collect();
    let mut report = LlfdReport::default();
    // Iteration budget: exchanges strictly decrease displaced cost, so this
    // terminates without it, but a budget turns a subtle regression into a
    // loud one. Beyond it we force-assign without exchange.
    let mut budget = 64 * (arena.records.len() + arena.n_tasks) as u64;

    let mut order: Vec<TaskId> = (0..arena.n_tasks).map(TaskId::from).collect();
    let mut evicted: Vec<u32> = Vec::new();

    while let Some(c) = heap.pop() {
        budget = budget.saturating_sub(1);
        // Tasks in ascending load order (ties by id), recomputed per key as
        // loads shift.
        order.sort_unstable_by_key(|d| (arena.loads[d.index()], d.0));
        let mut placed = false;
        if budget > 0 {
            for &d in &order {
                evicted.clear();
                if arena.adjust(c.idx, d, lmax, &mut evicted, options.exchange) {
                    if evicted.is_empty() {
                        report.direct_placements += 1;
                    } else {
                        report.exchanges += 1;
                        for &e in &evicted {
                            heap.push(Candidate {
                                cost: arena.records[e as usize].cost,
                                idx: e,
                                key_raw: arena.records[e as usize].key.raw(),
                            });
                        }
                    }
                    arena.place(c.idx, d);
                    placed = true;
                    break;
                }
            }
        }
        if !placed {
            // Fallback: least-loaded instance, accepting temporary
            // overload (see module docs).
            report.forced += 1;
            arena.place(c.idx, order[0]);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;

    /// Builds records for the paper's Fig. 4 toy example:
    /// d1 ← {k1:7, k2:4, k5:5} (load 16), d2 ← {k3:2, k4:1, k6:1} (load 4).
    /// Hash destinations per the original routing table at the top of
    /// Fig. 4 (A = {(k3,d2),(k5,d1)} ⇒ h(k3)=d1, h(k5)=d2, others = where
    /// they sit).
    fn fig4_records() -> Vec<KeyRecord> {
        let rec = |key, cost, cur, hash| KeyRecord {
            key: Key(key),
            cost,
            mem: cost, // w=1, state proportional to cost
            current: TaskId(cur),
            hash_dest: TaskId(hash),
        };
        vec![
            rec(1, 7, 0, 0), // k1 on d1
            rec(2, 4, 0, 0), // k2 on d1
            rec(3, 2, 1, 0), // k3 on d2 via table
            rec(4, 1, 1, 1), // k4 on d2
            rec(5, 5, 0, 1), // k5 on d1 via table
            rec(6, 1, 1, 1), // k6 on d2
        ]
    }

    fn run_llfd(
        records: &[KeyRecord],
        theta: f64,
        criteria: Criteria,
    ) -> (Vec<TaskId>, LlfdReport) {
        let mut arena = Arena::new(records, 2, criteria, |_, r| r.current);
        let cands = arena.drain_overloaded(theta);
        let report = llfd(&mut arena, cands, theta);
        (arena.into_assignment(), report)
    }

    #[test]
    fn fig4_left_example_reaches_perfect_balance() {
        // θmax = 0 ⇒ both instances must end at load 10.
        let records = fig4_records();
        let (assign, report) = run_llfd(&records, 0.0, Criteria::HighestCost);
        let mut loads = [0u64; 2];
        for (r, d) in records.iter().zip(&assign) {
            loads[d.index()] += r.cost;
        }
        assert_eq!(loads, [10, 10], "paper: L(d1)=L(d2)=10");
        assert_eq!(report.forced, 0);
        // The paper's walkthrough: k1 displaces k3 (exchange), then k3
        // placing on d2 displaces k4 (second exchange).
        assert!(report.exchanges >= 2, "report: {report:?}");
    }

    #[test]
    fn fig4_final_assignment_matches_paper() {
        // Paper S4 result: d1 = {k2,k4,k5}? No — left side of Fig. 4 ends
        // with d2 = {k1,k3,k6} and d1 = {k2,k4,k5}.
        let records = fig4_records();
        let (assign, _) = run_llfd(&records, 0.0, Criteria::HighestCost);
        let dest = |key: u64| assign[records.iter().position(|r| r.key == Key(key)).unwrap()];
        assert_eq!(dest(1), TaskId(1), "k1 moves to d2");
        assert_eq!(dest(3), TaskId(1), "k3 stays on d2 after failed d1 try");
        assert_eq!(dest(4), TaskId(0), "k4 ends on d1");
        assert_eq!(dest(2), TaskId(0));
        assert_eq!(dest(5), TaskId(0));
        assert_eq!(dest(6), TaskId(1));
    }

    #[test]
    fn already_balanced_is_noop() {
        let rec = |key, cost, cur| KeyRecord {
            key: Key(key),
            cost,
            mem: 1,
            current: TaskId(cur),
            hash_dest: TaskId(cur),
        };
        let records = vec![rec(1, 5, 0), rec(2, 5, 1)];
        let mut arena = Arena::new(&records, 2, Criteria::HighestCost, |_, r| r.current);
        let cands = arena.drain_overloaded(0.0);
        assert!(cands.is_empty(), "no overload ⇒ nothing drained");
        let report = llfd(&mut arena, cands, 0.0);
        assert_eq!(report, LlfdReport::default());
        assert_eq!(arena.into_assignment(), vec![TaskId(0), TaskId(1)]);
    }

    #[test]
    fn drain_stops_at_lmax() {
        let rec = |key, cost| KeyRecord {
            key: Key(key),
            cost,
            mem: 1,
            current: TaskId(0),
            hash_dest: TaskId(0),
        };
        // All load on d0 of 2 tasks: total 12, mean 6, θmax=0.5 ⇒ Lmax=9.
        let records = vec![rec(1, 4), rec(2, 4), rec(3, 4)];
        let mut arena = Arena::new(&records, 2, Criteria::HighestCost, |_, r| r.current);
        let cands = arena.drain_overloaded(0.5);
        assert_eq!(cands.len(), 1, "one key suffices: 12-4=8 ≤ 9");
        assert_eq!(arena.loads()[0], 8);
    }

    #[test]
    fn heavy_key_cannot_balance_but_terminates() {
        // One giant key dominating: perfect balance impossible; LLFD must
        // terminate and force-assign at most the giant.
        let rec = |key, cost| KeyRecord {
            key: Key(key),
            cost,
            mem: 1,
            current: TaskId(0),
            hash_dest: TaskId(0),
        };
        let records = vec![rec(1, 100), rec(2, 1), rec(3, 1)];
        let mut arena = Arena::new(&records, 2, Criteria::HighestCost, |_, r| r.current);
        let cands = arena.drain_overloaded(0.0);
        let report = llfd(&mut arena, cands, 0.0);
        let assign = arena.into_assignment();
        assert_eq!(assign.len(), 3);
        // The giant ends somewhere; everything is assigned.
        assert!(report.forced >= 1);
    }

    #[test]
    fn adjust_strictness_explicit() {
        let rec = |key, cost, cur| KeyRecord {
            key: Key(key),
            cost,
            mem: 1,
            current: TaskId(cur),
            hash_dest: TaskId(cur),
        };
        // d1 holds two cost-5 keys (load 10). Lmax = 10.
        let records = vec![rec(1, 5, 0), rec(2, 5, 1), rec(3, 5, 1)];
        let mut arena = Arena::new(&records, 2, Criteria::HighestCost, |_, r| r.current);
        arena.disassociate(0);
        let mut evicted = Vec::new();
        // Incoming cost 5: no key on d1 is strictly cheaper ⇒ no E ⇒ false.
        assert!(!arena.adjust(0, TaskId(1), 10.0, &mut evicted, true));
        assert!(evicted.is_empty());
        // But a cheaper resident would be evictable: put cost-2 key on d1.
        let records2 = vec![rec(1, 5, 0), rec(2, 5, 1), rec(3, 2, 1)];
        let mut arena2 = Arena::new(&records2, 2, Criteria::HighestCost, |_, r| r.current);
        arena2.disassociate(0);
        let mut ev2 = Vec::new();
        // load(d1)=7, incoming 5 ⇒ 12 > Lmax=10, shed ≥ 2 via k3 (cost 2).
        assert!(arena2.adjust(0, TaskId(1), 10.0, &mut ev2, true));
        assert_eq!(ev2.len(), 1);
        assert_eq!(records2[ev2[0] as usize].key, Key(3));
    }

    #[test]
    fn no_exchange_ablation_degrades_balance() {
        // The Fig. 4 example needs exchanges to reach perfect balance;
        // without them the displaced keys force-assign and overload.
        let records = fig4_records();
        let mut with_x = Arena::new(&records, 2, Criteria::HighestCost, |_, r| r.current);
        let cands = with_x.drain_overloaded(0.0);
        let report = llfd_with_options(&mut with_x, cands, 0.0, LlfdOptions { exchange: true });
        assert_eq!(report.forced, 0);

        let mut without = Arena::new(&records, 2, Criteria::HighestCost, |_, r| r.current);
        let cands = without.drain_overloaded(0.0);
        let report = llfd_with_options(&mut without, cands, 0.0, LlfdOptions { exchange: false });
        assert!(report.exchanges == 0, "exchange disabled");
        assert!(
            report.forced > 0,
            "without exchange, k1 cannot be placed cleanly"
        );
    }

    #[test]
    fn gamma_criteria_prefers_high_cost_per_memory() {
        let rec = |key, cost, mem| KeyRecord {
            key: Key(key),
            cost,
            mem,
            current: TaskId(0),
            hash_dest: TaskId(0),
        };
        // Same cost, different memory: γ favors the low-memory key.
        let records = vec![rec(1, 10, 100), rec(2, 10, 1), rec(3, 1, 1)];
        let mut arena = Arena::new(&records, 2, Criteria::LargestGamma { beta: 1.0 }, |_, r| {
            r.current
        });
        let cands = arena.drain_overloaded(0.0);
        // Drained in γ order: key 2 (γ=10) before key 1 (γ=0.1).
        assert_eq!(records[cands[0] as usize].key, Key(2));
    }

    #[test]
    fn deterministic_across_runs() {
        let records = fig4_records();
        let a = run_llfd(&records, 0.0, Criteria::HighestCost).0;
        let b = run_llfd(&records, 0.0, Criteria::HighestCost).0;
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_tasks_panics() {
        let records = fig4_records();
        Arena::new(&records, 0, Criteria::HighestCost, |_, r| r.current);
    }
}
