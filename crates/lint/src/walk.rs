//! Workspace walking and path-based rule scoping.

use std::fs;
use std::path::{Path, PathBuf};

use crate::rules::{lint_bench_results, scan_source, FileClass};
use crate::Violation;

/// What one full lint run saw.
#[derive(Debug, Default)]
pub struct LintReport {
    pub violations: Vec<Violation>,
    /// `.rs` files scanned by the source rules.
    pub files_scanned: usize,
    /// Numeric metric keys checked by L005.
    pub metrics_checked: usize,
}

/// Maps a workspace-relative path (with `/` separators) to the rules
/// that apply there. `None` means the file is not scanned at all:
/// lint test fixtures (deliberate violations) and anything outside the
/// walked trees. `vendor/` is never walked — the shims there mirror
/// external crates' APIs and carry their conventions, not ours.
pub fn classify(rel: &str) -> Option<FileClass> {
    if rel.split('/').any(|seg| seg == "fixtures") {
        return None;
    }
    let test_ctx = rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.starts_with("examples/")
        || rel.contains("/examples/")
        || rel.contains("/benches/");
    Some(FileClass {
        // The trace crate sits on every engine thread (its recorder is
        // dropped during teardown and panics there would mask the real
        // failure), so it carries the same no-panic contract as the
        // protocol crates.
        panic_scope: rel.starts_with("crates/runtime/src/")
            || rel.starts_with("crates/core/src/")
            || rel.starts_with("crates/trace/src/"),
        data_plane: rel.starts_with("crates/runtime/src/"),
        swap_allowed: rel == "crates/core/src/routing.rs" || test_ctx,
    })
}

/// Lints the workspace rooted at `root`: all `.rs` files under
/// `crates/`, `src/`, `tests/`, and `examples/` (source rules), plus
/// `bench_results/*.json` (L005).
pub fn lint_workspace(root: &Path) -> LintReport {
    let mut report = LintReport::default();
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect_rs(&root.join(top), &mut files);
    }
    files.sort();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(class) = classify(&rel) else {
            continue;
        };
        let Ok(src) = fs::read_to_string(&path) else {
            continue;
        };
        report.files_scanned += 1;
        report.violations.extend(scan_source(&rel, &src, &class));
    }
    let (v, checked) = lint_bench_results(&root.join("bench_results"));
    report.violations.extend(v);
    report.metrics_checked = checked;
    report
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    for entry in rd.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name == "vendor" {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}
