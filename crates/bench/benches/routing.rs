//! Criterion bench: per-tuple routing cost of the mixed strategy (Eq. 1).
//!
//! Three comparisons, all at the paper's production table bound
//! (`Amax = 3000`, §II "both the memory and computation cost of the
//! scheme are acceptable"), on table hits, misses (ring fallback), and a
//! 50/50 mix:
//!
//! 1. **the seed hot path vs. the new one** — `seed_map_per_tuple` is
//!    what the drivers actually paid per tuple before this rework: one
//!    dynamic `Partitioner::route` dispatch plus one `FxHashMap` probe.
//!    `compiled_batched` is the replacement: one dynamic `route_batch`
//!    dispatch per channel batch, flat-table probes inside. This pair is
//!    the acceptance ratio.
//! 2. **map vs. compiled table, dispatch-free** — `map_per_tuple_inlined`
//!    vs. `compiled_per_tuple`, isolating the flat-table win from the
//!    batching win.
//! 3. **table-size sweep** — batched routing from an empty table to 50k
//!    entries (the seed bench's sweep, batched).
//! 4. **large-domain sweep** — hit and miss probing at 3e3 → 3e6 table
//!    entries, prefetched `route_batch` against the unprefetched
//!    `route_batch_scalar` reference, with every batch drawn from a
//!    shuffled pool spanning the whole key domain so big slabs are
//!    actually probed cold — measuring the software-prefetch win once
//!    the slab outgrows L2 (and its neutrality below the threshold,
//!    where both ids run the same scalar loop).
//! 5. **rebuild vs delta** — table-maintenance latency at the same
//!    sizes: a full `CompiledTable::build` (what every mutation cost
//!    before incremental maintenance) against `apply_delta` of a
//!    1%-churn rebalance (what a rebalance costs now).
//!
//! Every *routing* benchmark routes `BATCH × REPS` keys per timed
//! sample, so mean sample times divide directly into ns/key and
//! compare across benchmarks (the mutation group measures whole
//! operations instead; its ns_per_key column is meaningless and its
//! derived metric is the rebuild/delta speedup). Results are printed and
//! written machine-readably to `bench_results/routing.json` (hand-rolled
//! writer, no serde) so future PRs can diff the trajectory. `--test` (as
//! passed by the CI smoke step via `cargo bench --bench routing -- --test`)
//! shrinks the sample count, drops the two largest domain sizes, and
//! writes to `bench_results/routing.smoke.json` instead, so noisy smoke
//! numbers can never clobber the committed full-run file.

use criterion::{black_box, take_measurements, BenchmarkId, Criterion, Measurement};
use streambal_bench::json::{write_json, Json};
use streambal_core::{
    AssignmentFn, CompiledTable, IntervalStats, Key, Partitioner, RebalanceOutcome, RoutingTable,
    RoutingView, TaskId,
};
use streambal_hashring::mix64;

/// Downstream parallelism `N_D`.
const N_TASKS: usize = 10;
/// Routing-table size for the comparison group: the paper's `Amax`.
const TABLE_SIZE: usize = 3_000;
/// Keys routed per `route_batch` call (a channel batch).
const BATCH: usize = 1_024;
/// Batch repetitions per timed sample, so samples are ≳ 100 µs and well
/// above timer resolution.
const REPS: usize = 32;
/// The large-domain sweep's table sizes: the paper's `Amax` up to the
/// ROADMAP's millions-of-keys regime. Smoke mode keeps only the first
/// two (the larger tables take seconds just to construct).
const LARGE_SIZES: [usize; 4] = [3_000, 30_000, 300_000, 3_000_000];
/// Churn fraction for the delta-apply mutation bench: a 1% rebalance,
/// the acceptance shape (`apply_delta` ≥10× faster than a full rebuild
/// at ≥3e5 entries).
const CHURN_DENOM: usize = 100;

fn assignment(table_size: usize) -> AssignmentFn {
    let table: RoutingTable = (0..table_size as u64)
        .map(|k| (Key(k), TaskId((k % N_TASKS as u64) as u32)))
        .collect();
    AssignmentFn::with_table(N_TASKS, table)
}

/// `BATCH` keys present in a `table_size`-entry table, in shuffled order.
fn hit_keys(table_size: usize) -> Vec<Key> {
    (0..BATCH as u64)
        .map(|i| Key(mix64(i) % table_size as u64))
        .collect()
}

/// `BATCH` keys guaranteed absent from the table (raw ≥ table size).
fn miss_keys(table_size: usize) -> Vec<Key> {
    (0..BATCH as u64)
        .map(|i| Key(table_size as u64 + mix64(i) / 2))
        .collect()
}

/// Alternating hit/miss keys.
fn mixed_keys(table_size: usize) -> Vec<Key> {
    hit_keys(table_size)
        .into_iter()
        .zip(miss_keys(table_size))
        .enumerate()
        .map(|(i, (h, m))| if i % 2 == 0 { h } else { m })
        .collect()
}

/// The seed's router shape behind the driver-facing trait: every
/// [`Partitioner::route`] call — one dynamic dispatch — probes the
/// `FxHashMap` (and `route_batch` stays the per-key default, as the seed
/// had no batch API).
struct SeedMapRouter(AssignmentFn);

impl Partitioner for SeedMapRouter {
    fn name(&self) -> String {
        "seed-map".into()
    }

    fn n_tasks(&self) -> usize {
        self.0.n_tasks()
    }

    fn route(&mut self, key: Key) -> TaskId {
        self.0.route_via_map(key)
    }

    fn end_interval(&mut self, _stats: IntervalStats) -> Option<RebalanceOutcome> {
        None
    }

    fn routing_view(&self) -> RoutingView {
        RoutingView::TablePlusHash {
            table: self.0.table().clone(),
            n_tasks: self.0.n_tasks(),
        }
    }
}

/// The reworked router behind the same trait: compiled-table lookups,
/// with `route_batch` overridden to the batched fast path.
struct CompiledRouter(AssignmentFn);

impl Partitioner for CompiledRouter {
    fn name(&self) -> String {
        "compiled".into()
    }

    fn n_tasks(&self) -> usize {
        self.0.n_tasks()
    }

    fn route(&mut self, key: Key) -> TaskId {
        self.0.route(key)
    }

    fn route_batch(&mut self, keys: &[Key], out: &mut Vec<TaskId>) {
        self.0.route_batch(keys, out);
    }

    fn end_interval(&mut self, _stats: IntervalStats) -> Option<RebalanceOutcome> {
        None
    }

    fn routing_view(&self) -> RoutingView {
        RoutingView::TablePlusHash {
            table: self.0.table().clone(),
            n_tasks: self.0.n_tasks(),
        }
    }
}

/// The seed-vs-new and map-vs-compiled comparisons at `Amax`.
fn bench_compare(c: &mut Criterion, samples: usize) {
    let f = assignment(TABLE_SIZE);
    let mut group = c.benchmark_group("routing_compare");
    group.sample_size(samples);
    for (set, keys) in [
        ("hit", hit_keys(TABLE_SIZE)),
        ("miss", miss_keys(TABLE_SIZE)),
        ("mixed", mixed_keys(TABLE_SIZE)),
    ] {
        // 1a. The seed hot path: dyn dispatch + map probe, per tuple
        // (exactly `run_sim`'s and the engine's former inner loop).
        let mut seed = SeedMapRouter(f.clone());
        group.bench_with_input(
            BenchmarkId::new("seed_map_per_tuple", set),
            &keys,
            |b, keys| {
                let p: &mut dyn Partitioner = black_box(&mut seed);
                b.iter(|| {
                    let mut acc = 0u32;
                    for _ in 0..REPS {
                        for &k in keys {
                            acc ^= p.route(black_box(k)).0;
                        }
                    }
                    acc
                })
            },
        );
        // 1b. The new hot path: one dyn dispatch per batch, compiled
        // probes inside.
        let mut compiled = CompiledRouter(f.clone());
        group.bench_with_input(
            BenchmarkId::new("compiled_batched", set),
            &keys,
            |b, keys| {
                let p: &mut dyn Partitioner = black_box(&mut compiled);
                let mut out: Vec<TaskId> = Vec::with_capacity(BATCH);
                b.iter(|| {
                    let mut acc = 0u32;
                    for _ in 0..REPS {
                        p.route_batch(black_box(keys), &mut out);
                        acc ^= out.last().map_or(0, |d| d.0);
                    }
                    acc
                })
            },
        );
        // 2. Dispatch-free pair, isolating the flat table vs the map.
        group.bench_with_input(
            BenchmarkId::new("map_per_tuple_inlined", set),
            &keys,
            |b, keys| {
                b.iter(|| {
                    let mut acc = 0u32;
                    for _ in 0..REPS {
                        for &k in keys {
                            acc ^= f.route_via_map(black_box(k)).0;
                        }
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("compiled_per_tuple", set),
            &keys,
            |b, keys| {
                b.iter(|| {
                    let mut acc = 0u32;
                    for _ in 0..REPS {
                        for &k in keys {
                            acc ^= f.route(black_box(k)).0;
                        }
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

/// Batched routing across table sizes (the seed bench's sweep, batched):
/// alternating hits and misses, as upstream tuple streams do.
fn bench_sweep(c: &mut Criterion, samples: usize) {
    let mut group = c.benchmark_group("routing_sweep");
    group.sample_size(samples);
    for table_size in [0usize, 1_000, 10_000, 50_000] {
        let f = assignment(table_size);
        let keys = if table_size == 0 {
            miss_keys(1) // empty table: everything is a ring lookup
        } else {
            mixed_keys(table_size)
        };
        group.bench_with_input(
            BenchmarkId::new("route_batch", table_size),
            &keys,
            |b, keys| {
                let mut out: Vec<TaskId> = Vec::with_capacity(BATCH);
                b.iter(|| {
                    let mut acc = 0u32;
                    for _ in 0..REPS {
                        f.route_batch(black_box(keys), &mut out);
                        acc ^= out.last().map_or(0, |d| d.0);
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

/// A shuffled pool of **every** present key (hits) or of `table_size`
/// guaranteed-absent keys (misses). The large-domain bench walks this
/// pool in consecutive `BATCH`-key chunks rather than re-routing one
/// fixed batch: re-probing the same 1 024 keys keeps their 64 KiB of
/// home slots L1-resident no matter how big the slab is, which measures
/// cache hits, not large-domain probing. Streaming the whole domain
/// touches every slot of the slab across a sample, so past the prefetch
/// threshold the probes genuinely miss L2 and the prefetch distance is
/// exercised for real.
fn key_pool(table_size: usize, set: &str) -> Vec<Key> {
    let mut pool: Vec<Key> = match set {
        "hit" => (0..table_size as u64).map(Key).collect(),
        _ => (table_size as u64..2 * table_size as u64)
            .map(Key)
            .collect(),
    };
    pool.sort_by_key(|k| mix64(k.raw()));
    pool
}

/// Hit/miss probing at 3e3 → 3e6 entries: the prefetched `route_batch`
/// (which switches itself to the prefetch loop past the 4 MiB slab
/// threshold) against the unprefetched `route_batch_scalar` reference,
/// each batch drawn from a shuffled pool spanning the whole key domain
/// (see [`key_pool`]). Below the threshold the two ids run the same
/// scalar loop on cache-resident slabs, pinning the "Amax = 3000 stays
/// neutral" claim; above it their gap is the software-prefetch win on
/// probes the caches can no longer absorb.
fn bench_large_domain(c: &mut Criterion, samples: usize, sizes: &[usize]) {
    let mut group = c.benchmark_group("routing_large_domain");
    group.sample_size(samples);
    for &table_size in sizes {
        let f = assignment(table_size);
        for set in ["hit", "miss"] {
            let pool = key_pool(table_size, set);
            group.bench_with_input(
                BenchmarkId::new(&format!("batched_{set}"), table_size),
                &pool,
                |b, pool| {
                    let mut out: Vec<TaskId> = Vec::with_capacity(BATCH);
                    let mut chunks = pool.chunks_exact(BATCH).cycle();
                    b.iter(|| {
                        let mut acc = 0u32;
                        for _ in 0..REPS {
                            let keys = chunks.next().unwrap();
                            f.route_batch(black_box(keys), &mut out);
                            acc ^= out.last().map_or(0, |d| d.0);
                        }
                        acc
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(&format!("scalar_{set}"), table_size),
                &pool,
                |b, pool| {
                    let mut out: Vec<TaskId> = Vec::with_capacity(BATCH);
                    let mut chunks = pool.chunks_exact(BATCH).cycle();
                    b.iter(|| {
                        let mut acc = 0u32;
                        for _ in 0..REPS {
                            let keys = chunks.next().unwrap();
                            f.route_batch_scalar(black_box(keys), &mut out);
                            acc ^= out.last().map_or(0, |d| d.0);
                        }
                        acc
                    })
                },
            );
        }
    }
    group.finish();
}

/// Table-maintenance latency at the large-domain sizes: one full
/// `CompiledTable::build` (the per-mutation cost before incremental
/// maintenance — a lower bound, since the old path also re-cloned the
/// map) against one `apply_delta` of a 1%-churn rebalance. The delta
/// alternates between two move lists so every sample does real work —
/// half the churn re-pins entries in place, half bounces between a
/// move-back to `h(k)` (tombstoning the entry) and a re-pin (reusing the
/// tombstone) — exercising exactly the mutation mix a steady-state
/// rebalance cadence produces.
fn bench_mutation(c: &mut Criterion, samples: usize, sizes: &[usize]) {
    let mut group = c.benchmark_group("routing_mutation");
    for &table_size in sizes {
        // Whole-table rebuilds at 3e6 entries run tens of milliseconds;
        // cap the samples so the full sweep stays minutes, not hours.
        group.sample_size(if table_size >= 300_000 {
            samples.min(10)
        } else {
            samples
        });
        let table: RoutingTable = (0..table_size as u64)
            .map(|k| (Key(k), TaskId((k % N_TASKS as u64) as u32)))
            .collect();
        group.bench_with_input(BenchmarkId::new("rebuild", table_size), &table, |b, t| {
            b.iter(|| CompiledTable::build(black_box(t)).len())
        });

        let churn = (table_size / CHURN_DENOM).max(1);
        let mut f = AssignmentFn::with_table(N_TASKS, table);
        // Destinations guaranteed ≠ h(k) (inserts) or = h(k) (removals).
        let pin = |f: &AssignmentFn, k: Key, off: u32| {
            TaskId((f.hash_route(k).0 + 1 + off) % N_TASKS as u32)
        };
        let moves_a: Vec<(Key, TaskId)> = (0..churn as u64)
            .map(Key)
            .map(|k| {
                if k.raw() % 2 == 0 {
                    (k, pin(&f, k, 0)) // re-pin in place
                } else {
                    (k, f.hash_route(k)) // move back: tombstone
                }
            })
            .collect();
        let moves_b: Vec<(Key, TaskId)> = (0..churn as u64)
            .map(Key)
            .map(|k| {
                if k.raw() % 2 == 0 {
                    (k, pin(&f, k, 1)) // re-pin elsewhere
                } else {
                    (k, pin(&f, k, 0)) // re-insert into the tombstone
                }
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("apply_delta", table_size),
            &(moves_a, moves_b),
            |b, (moves_a, moves_b)| {
                let mut flip = false;
                b.iter(|| {
                    let moves = if flip { moves_b } else { moves_a };
                    flip = !flip;
                    f.apply_delta(moves.iter().copied());
                    f.table().len()
                })
            },
        );
    }
    group.finish();
}

fn mean_ns(ms: &[Measurement], id: &str) -> Option<f64> {
    ms.iter()
        .find(|m| m.id == id)
        .map(|m| m.mean.as_nanos() as f64)
}

fn min_ns(ms: &[Measurement], id: &str) -> Option<f64> {
    ms.iter()
        .find(|m| m.id == id)
        .map(|m| m.min.as_nanos() as f64)
}

/// Serializes measurements (and derived per-key costs / speedups) to
/// `bench_results/routing.json`.
fn write_results(ms: &[Measurement], smoke: bool) {
    let keys_per_sample = (BATCH * REPS) as f64;
    let results: Vec<Json> = ms
        .iter()
        .map(|m| {
            Json::obj([
                ("id", Json::str(m.id.clone())),
                ("mean_ns", Json::Num(m.mean.as_nanos() as f64)),
                ("min_ns", Json::Num(m.min.as_nanos() as f64)),
                (
                    "ns_per_key",
                    Json::Num(m.mean.as_nanos() as f64 / keys_per_sample),
                ),
                ("samples", Json::Int(m.samples as u64)),
            ])
        })
        .collect();
    // The acceptance ratios: the new hot path (batched dispatch +
    // compiled probes) against the seed hot path (per-tuple dispatch +
    // map probes), per key set. Ratios of means plus ratios of minima —
    // the minima are the noise-robust point estimates.
    let mut speedups_mean = Vec::new();
    let mut speedups_min = Vec::new();
    for set in ["hit", "miss", "mixed"] {
        let seed_id = format!("seed_map_per_tuple/{set}");
        let new_id = format!("compiled_batched/{set}");
        if let (Some(seed), Some(new)) = (mean_ns(ms, &seed_id), mean_ns(ms, &new_id)) {
            speedups_mean.push((set, Json::Num(if new > 0.0 { seed / new } else { 0.0 })));
        }
        if let (Some(seed), Some(new)) = (min_ns(ms, &seed_id), min_ns(ms, &new_id)) {
            speedups_min.push((set, Json::Num(if new > 0.0 { seed / new } else { 0.0 })));
        }
    }
    // Large-domain prefetch win: prefetched batched over unprefetched
    // scalar, per key set and table size (≈1.0 below the slab threshold
    // by construction — both ids run the same loop there).
    let mut prefetch_speedups = Vec::new();
    for set in ["hit", "miss"] {
        for n in LARGE_SIZES {
            let scalar_id = format!("scalar_{set}/{n}");
            let batched_id = format!("batched_{set}/{n}");
            if let (Some(s), Some(p)) = (mean_ns(ms, &scalar_id), mean_ns(ms, &batched_id)) {
                prefetch_speedups.push((
                    format!("{set}/{n}"),
                    Json::Num(if p > 0.0 { s / p } else { 0.0 }),
                ));
            }
        }
    }
    // Table-maintenance win: one full rebuild over one 1%-churn delta
    // apply, per table size (the ≥10×-at-≥3e5 acceptance series).
    let mut mutation_speedups = Vec::new();
    for n in LARGE_SIZES {
        let rebuild_id = format!("rebuild/{n}");
        let delta_id = format!("apply_delta/{n}");
        if let (Some(r), Some(d)) = (mean_ns(ms, &rebuild_id), mean_ns(ms, &delta_id)) {
            mutation_speedups.push((n.to_string(), Json::Num(if d > 0.0 { r / d } else { 0.0 })));
        }
    }
    let doc = Json::obj([
        ("bench", Json::str("routing")),
        ("n_tasks", Json::Int(N_TASKS as u64)),
        ("table_size", Json::Int(TABLE_SIZE as u64)),
        ("batch", Json::Int(BATCH as u64)),
        ("reps", Json::Int(REPS as u64)),
        ("churn_denom", Json::Int(CHURN_DENOM as u64)),
        ("smoke", Json::Bool(smoke)),
        ("results", Json::Arr(results)),
        (
            "prefetch_speedup_batched_vs_scalar",
            Json::Obj(prefetch_speedups),
        ),
        (
            "mutation_speedup_delta_vs_rebuild",
            Json::Obj(mutation_speedups),
        ),
        (
            "speedup_batched_vs_seed_per_tuple",
            Json::Obj(
                speedups_mean
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            ),
        ),
        (
            "speedup_batched_vs_seed_per_tuple_min",
            Json::Obj(
                speedups_min
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            ),
        ),
    ]);
    // Anchored at the workspace root (cargo runs bench binaries with the
    // package dir as CWD). Smoke runs (3 noisy samples) go to a separate,
    // untracked path so they can never clobber the committed full-run
    // trajectory in routing.json.
    let path = streambal_bench::figure::results_dir().join(if smoke {
        "routing.smoke.json"
    } else {
        "routing.json"
    });
    match write_json(&path, &doc) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
    }
}

fn main() {
    // `cargo bench --bench routing -- --test` (the CI smoke step) passes
    // `--test`; shrink the sample count and the large-domain sizes but
    // keep the JSON emission.
    let smoke = std::env::args().any(|a| a == "--test");
    let samples = if smoke { 3 } else { 40 };
    let sizes: &[usize] = if smoke {
        &LARGE_SIZES[..2]
    } else {
        &LARGE_SIZES
    };
    let mut c = Criterion::default();
    bench_compare(&mut c, samples);
    bench_sweep(&mut c, samples);
    bench_large_domain(&mut c, samples, sizes);
    bench_mutation(&mut c, samples, sizes);
    let ms = take_measurements();
    write_results(&ms, smoke);
}
