//! Offline shim for `bytes`, backed by `Arc<[u8]>`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin API slice it actually uses: cheaply cloneable
//! immutable byte buffers ([`Bytes`]), a growable builder ([`BytesMut`]),
//! and the little-endian cursor traits ([`Buf`], [`BufMut`]).

use std::ops::RangeBounds;
use std::sync::Arc;

/// A cheaply cloneable, sliceable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-slice sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{} bytes\"", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// A growable byte builder; freeze into [`Bytes`] when done.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty builder with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte buffer; `get_*` calls consume from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    /// Copies bytes into `dst`, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::with_capacity(13);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(u64::MAX - 1);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 13);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64_le(), u64::MAX - 1);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_is_zero_copy_and_bounded() {
        let bytes = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = bytes.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(s2.as_ref(), &[2, 3]);
        // Clones share the allocation.
        let c = bytes.clone();
        assert_eq!(c, bytes);
    }

    #[test]
    fn consuming_reads_advance_shared_view_only() {
        let bytes = Bytes::from(vec![9u8; 8]);
        let mut cursor = bytes.clone();
        let _ = cursor.get_u32_le();
        assert_eq!(cursor.remaining(), 4);
        assert_eq!(bytes.remaining(), 8, "original view untouched");
    }
}
