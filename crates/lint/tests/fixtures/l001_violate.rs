// Fixture: every panic family member in library code, unannotated.

pub fn take(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn must(x: Option<u32>) -> u32 {
    x.expect("fixture")
}

pub fn boom() {
    panic!("fixture");
}

pub fn never() {
    unreachable!();
}
