//! The paper's Stock experiment in miniature: a windowed self-join over a
//! bursty stock-tick stream (finding dense trading activity per stock),
//! with the Mixed rebalancer absorbing the bursts.
//!
//! ```text
//! cargo run --release --example stock_selfjoin
//! ```

use streambal::baselines::{CoreBalancer, HashPartitioner, Partitioner};
use streambal::core::{BalanceParams, Key, RebalanceStrategy};
use streambal::runtime::{Engine, EngineConfig, Tuple, WindowedSelfJoinOp};
use streambal::workloads::StockWorkload;

fn intervals(seed: u64) -> Vec<Vec<Key>> {
    // 1,036 stock IDs (the paper's domain), heavy bursts.
    let mut w = StockWorkload::new(1_036, 15_000, 10, 25, seed);
    (0..6)
        .map(|i| {
            if i > 0 {
                w.advance();
            }
            w.tuples()
        })
        .collect()
}

fn run(name: &str, partitioner: Box<dyn Partitioner>, feed: Vec<Vec<Key>>) {
    let config = EngineConfig {
        n_workers: 4,
        max_workers: 4,
        spin_work: 400,
        window: 3, // self-join window: 3 intervals of ticks
        ..EngineConfig::default()
    };
    let report = Engine::run(
        config,
        partitioner,
        |_| Box::new(WindowedSelfJoinOp::new()),
        move |iv| {
            feed.get(iv as usize).map(|ks| {
                ks.iter()
                    .enumerate()
                    .map(|(i, &k)| Tuple::tagged(k, 0, [i as u64, 0]))
                    .collect()
            })
        },
        None,
    );
    println!(
        "{name:<8} throughput {:>8.0} t/s   mean latency {:>8.0} µs   rebalances {}   migrated {} bytes",
        report.mean_throughput,
        report.latency_us.mean(),
        report.rebalances,
        report.migrated_bytes,
    );
    // Interval timeline: watch throughput dip and recover around bursts.
    let timeline: Vec<String> = report
        .interval_throughput
        .points()
        .iter()
        .map(|&(iv, v)| format!("iv{iv:.0}:{:.0}k", v / 1e3))
        .collect();
    println!("{:<8} timeline: {}", "", timeline.join("  "));
}

fn main() {
    println!("Stock windowed self-join, 4 workers, 6 bursty intervals\n");
    run("Storm", Box::new(HashPartitioner::new(4)), intervals(3));
    run(
        "Mixed",
        Box::new(CoreBalancer::new(
            4,
            3,
            RebalanceStrategy::Mixed,
            BalanceParams {
                theta_max: 0.1,
                ..BalanceParams::default()
            },
        )),
        intervals(3),
    );
    println!("\nExpected shape (paper Fig. 14b): the join is stateful, so only");
    println!("key-preserving strategies apply (no PKG); Mixed migrates burst");
    println!("keys' window state and keeps the pipeline near its capacity.");
}
