//! Regenerates the paper's Fig. 14 (see EXPERIMENTS.md).
fn main() {
    let scale = streambal_bench::Scale::from_env();
    print!("{}", streambal_bench::figs_runtime::fig14(scale));
}
