//! Collected scheduling metrics of one simulation run.

use streambal_core::{LoadSummary, RebalanceOutcome};
use streambal_elastic::{ScaleEvent, SplitEvent};
use streambal_metrics::{OnlineStats, TimeSeries};

/// Everything a simulation run measures, mirroring the paper's §V metric
/// definitions.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Partitioner display name.
    pub name: String,
    /// Max-θ per interval, evaluated *before* that interval's rebalance
    /// (what the operator actually experienced during the interval).
    pub theta_series: TimeSeries,
    /// Workload skewness `max L/L̄` per interval.
    pub skew_series: TimeSeries,
    /// Routing-table size per rebalance.
    pub table_series: TimeSeries,
    /// Plan-generation wall time (ms) per fired rebalance.
    pub gen_time_ms: OnlineStats,
    /// Migration cost as a fraction of total state, per fired rebalance.
    pub mig_fraction: OnlineStats,
    /// Post-rebalance (estimated) θ per fired rebalance.
    pub theta_after: OnlineStats,
    /// Number of rebalances fired.
    pub rebalances: usize,
    /// Executed elasticity decisions, in order (same type as the engine
    /// report's, so sim and runtime decision traces compare directly).
    pub scale_events: Vec<ScaleEvent>,
    /// Executed hot-key split/unsplit decisions, in order (same type as
    /// `EngineReport::split_events` for the same `==` trace comparison).
    pub split_events: Vec<SplitEvent>,
    /// Per-task accumulated normalized load (for Fig. 7-style CDFs).
    /// Grows with scale-out; a retired task's accumulation stops but its
    /// history remains.
    per_task_norm_load: Vec<f64>,
    intervals_seen: usize,
}

impl SimReport {
    /// Creates an empty report.
    pub fn new(name: String, n_tasks: usize) -> Self {
        SimReport {
            name,
            theta_series: TimeSeries::labelled("max θ"),
            skew_series: TimeSeries::labelled("skewness"),
            table_series: TimeSeries::labelled("table size"),
            gen_time_ms: OnlineStats::new(),
            mig_fraction: OnlineStats::new(),
            theta_after: OnlineStats::new(),
            rebalances: 0,
            scale_events: Vec::new(),
            split_events: Vec::new(),
            per_task_norm_load: vec![0.0; n_tasks],
            intervals_seen: 0,
        }
    }

    /// Records one interval's pre-rebalance load state.
    pub fn observe_interval(&mut self, interval: usize, summary: &LoadSummary) {
        self.theta_series.push(interval as f64, summary.max_theta());
        self.skew_series.push(interval as f64, summary.skewness());
        if summary.loads.len() > self.per_task_norm_load.len() {
            // Scale-out mid-run: new slots join with zero history.
            self.per_task_norm_load.resize(summary.loads.len(), 0.0);
        }
        if summary.mean > 0.0 {
            for (d, &l) in summary.loads.iter().enumerate() {
                self.per_task_norm_load[d] += l as f64 / summary.mean;
            }
        }
        self.intervals_seen += 1;
    }

    /// Records one executed elasticity decision.
    pub fn observe_scale(&mut self, event: ScaleEvent) {
        self.scale_events.push(event);
    }

    /// Records one executed split/unsplit decision.
    pub fn observe_split(&mut self, event: SplitEvent) {
        self.split_events.push(event);
    }

    /// Records one fired rebalance.
    pub fn observe_rebalance(&mut self, interval: usize, gen_ms: f64, out: &RebalanceOutcome) {
        self.rebalances += 1;
        self.gen_time_ms.add(gen_ms);
        self.mig_fraction.add(out.migration_fraction);
        self.theta_after.add(out.achieved_theta);
        self.table_series
            .push(interval as f64, out.table.len() as f64);
    }

    /// Mean workload skewness across intervals.
    pub fn mean_skewness(&self) -> f64 {
        self.skew_series.mean()
    }

    /// Mean max-θ over the second half of the run — after the strategy has
    /// had a chance to converge (the paper also discards warm-up).
    pub fn mean_theta_after_warmup(&self) -> f64 {
        let n = self.theta_series.len() as f64;
        self.theta_series.mean_in(n / 2.0, n + 1.0)
    }

    /// Fig. 7-style per-task skewness samples: each task's average
    /// normalized load over the run, sorted ascending.
    pub fn per_task_skew_samples(&self) -> Vec<f64> {
        let mut out: Vec<f64> = self
            .per_task_norm_load
            .iter()
            .map(|s| {
                if self.intervals_seen == 0 {
                    0.0
                } else {
                    s / self.intervals_seen as f64
                }
            })
            .collect();
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out
    }

    /// One-line summary for experiment logs.
    pub fn summary_row(&self) -> String {
        format!(
            "{:<10} rebal={:<3} gen={:.2}ms mig={:.1}% θ̄={:.3} skew̄={:.3} table={:.0}",
            self.name,
            self.rebalances,
            self.gen_time_ms.mean(),
            self.mig_fraction.mean() * 100.0,
            self.mean_theta_after_warmup(),
            self.mean_skewness(),
            self.table_series.points().last().map_or(0.0, |&(_, v)| v),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streambal_core::{MigrationPlan, RoutingTable};

    fn outcome(theta: f64, mig: f64, table: usize) -> RebalanceOutcome {
        let mut t = RoutingTable::new();
        for i in 0..table {
            t.insert(streambal_core::Key(i as u64), streambal_core::TaskId(0));
        }
        RebalanceOutcome {
            table: t,
            plan: MigrationPlan::empty(),
            loads: LoadSummary::new(vec![10, 10]),
            achieved_theta: theta,
            migration_fraction: mig,
        }
    }

    #[test]
    fn per_task_samples_average_to_one() {
        let mut r = SimReport::new("test".into(), 4);
        r.observe_interval(0, &LoadSummary::new(vec![10, 20, 30, 40]));
        r.observe_interval(1, &LoadSummary::new(vec![40, 30, 20, 10]));
        let samples = r.per_task_skew_samples();
        let mean: f64 = samples.iter().sum::<f64>() / 4.0;
        assert!((mean - 1.0).abs() < 1e-9);
        // Sorted ascending.
        for w in samples.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn rebalance_observation_accumulates() {
        let mut r = SimReport::new("x".into(), 2);
        r.observe_rebalance(3, 1.5, &outcome(0.05, 0.1, 7));
        r.observe_rebalance(5, 2.5, &outcome(0.07, 0.3, 9));
        assert_eq!(r.rebalances, 2);
        assert!((r.gen_time_ms.mean() - 2.0).abs() < 1e-9);
        assert!((r.mig_fraction.mean() - 0.2).abs() < 1e-9);
        assert_eq!(r.table_series.points().last().unwrap().1, 9.0);
    }

    #[test]
    fn summary_row_contains_name() {
        let r = SimReport::new("Mixed".into(), 2);
        assert!(r.summary_row().contains("Mixed"));
    }

    #[test]
    fn warmup_mean_uses_second_half() {
        let mut r = SimReport::new("x".into(), 2);
        // First half skewed, second half balanced.
        r.observe_interval(0, &LoadSummary::new(vec![100, 0]));
        r.observe_interval(1, &LoadSummary::new(vec![100, 0]));
        r.observe_interval(2, &LoadSummary::new(vec![50, 50]));
        r.observe_interval(3, &LoadSummary::new(vec![50, 50]));
        assert!(r.mean_theta_after_warmup() < 0.01);
    }
}
