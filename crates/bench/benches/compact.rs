//! Criterion bench: the compact representation's speedup (Fig. 11a) —
//! adapted Mixed over 6-dim records vs Mixed over the full key space.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use streambal_bench::fig11::skewed_input;
use streambal_bench::{Defaults, Scale};
use streambal_core::compact::{compact_mixed, CompactStats};
use streambal_core::{rebalance, RebalanceStrategy};

fn bench_compact(c: &mut Criterion) {
    let mut d = Defaults::at(Scale::Quick);
    d.k = 20_000;
    d.tuples = 200_000;
    let input = skewed_input(&d);
    let params = d.params();

    let mut group = c.benchmark_group("compact_vs_full");
    group.sample_size(10);
    for r in [1u32, 3, 6] {
        group.bench_with_input(
            BenchmarkId::new("compact_mixed", 1u64 << r),
            &input,
            |b, input| b.iter(|| compact_mixed(input, &params, r)),
        );
    }
    group.bench_with_input(
        BenchmarkId::new("full_mixed", "orig"),
        &input,
        |b, input| b.iter(|| rebalance(input, RebalanceStrategy::Mixed, &params)),
    );
    group.finish();

    let mut group = c.benchmark_group("compact_build");
    for r in [1u32, 6] {
        group.bench_with_input(BenchmarkId::new("build", 1u64 << r), &input, |b, input| {
            b.iter(|| CompactStats::build(&input.records, r))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compact);
criterion_main!(benches);
