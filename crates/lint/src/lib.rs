//! `streambal-lint`: a hand-rolled static analyzer for the project
//! invariants no compiler or clippy pass checks.
//!
//! The engine's correctness rests on rules that live outside the type
//! system: the pause→migrate→resume protocol must never panic
//! mid-protocol, every data-plane batch must be capacity-accounted by
//! tuple count (the PR 3 capacity-deflation bug class), `swap_table`
//! full rebuilds are confined to the documented resync path, and every
//! committed benchmark metric must have a known comparison direction.
//! This crate enforces them lexically — a comment/string/attribute-aware
//! token scan, not a parse (the build sandbox is offline, so no `syn`) —
//! which is exactly enough: every rule here is a property of identifiers
//! in non-test, non-gated positions.
//!
//! Rules (see `README.md` for the full contract and the
//! `// lint: allow(...)` grammar):
//!
//! * **L001** — no `unwrap`/`expect`/`panic!`/`unreachable!` in non-test
//!   code of `crates/runtime` + `crates/core`, unless annotated.
//! * **L002** — every `unsafe` keyword is immediately preceded by a
//!   `// SAFETY:` comment (attributes may sit between them).
//! * **L003** — `swap_table(` is called only from the whitelisted
//!   resync file (`crates/core/src/routing.rs`) and test code.
//! * **L004** — no plain `.send(`/`.try_send(` of a `TupleBatch` in
//!   `crates/runtime` non-test code — weighted sends only.
//! * **L005** — every numeric key in committed `bench_results/*.json`
//!   classifies in the metric-direction table (`streambal-bench`).
//! * **L006** — `_mm_*` intrinsics appear only under `cfg(target_arch)`
//!   gates.
//! * **L007** — no per-event `.record(` on a trace recorder in
//!   `crates/runtime` non-test code — the flight recorder's data-plane
//!   contract is batch granularity only (`count_batch` /
//!   `close_interval`).
//! * **L000** — a malformed `lint: allow` annotation (missing reason,
//!   unknown rule name) is itself a violation.

use std::fmt;

pub mod lexer;
pub mod rules;
pub mod walk;

/// One diagnostic: `file:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line; 0 for whole-file diagnostics (L005 on JSON files).
    pub line: u32,
    /// Rule id (`"L001"` … `"L006"`, `"L000"` for malformed allows).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.msg)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.msg
            )
        }
    }
}
