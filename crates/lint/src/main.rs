//! The `streambal-lint` binary: lints the workspace, prints `file:line`
//! diagnostics with rule ids, exits non-zero on any violation. Runs as
//! a blocking CI step.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    // Default to the workspace this binary was built from, so
    // `cargo run -p streambal-lint` works from any directory; an
    // explicit root can be passed as the only argument.
    let root = match std::env::args_os().nth(1) {
        Some(p) => PathBuf::from(p),
        None => {
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            manifest
                .join("../..")
                .canonicalize()
                .unwrap_or_else(|_| PathBuf::from("."))
        }
    };
    let report = streambal_lint::walk::lint_workspace(&root);
    for v in &report.violations {
        println!("{v}");
    }
    if report.violations.is_empty() {
        println!(
            "streambal-lint: ok — {} files scanned, {} metric keys checked, 0 violations",
            report.files_scanned, report.metrics_checked
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("streambal-lint: {} violation(s)", report.violations.len());
        ExitCode::FAILURE
    }
}
