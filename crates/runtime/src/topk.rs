//! A heavy-hitter (top-k) operator built on the Space-Saving summary.
//!
//! Word-count topologies often only need the *hottest* keys (trending
//! topics, most-traded stocks). Space-Saving (Metwally et al., 2005)
//! tracks at most `capacity` counters with the guarantee that any key
//! whose true frequency exceeds `N / capacity` is present in the summary,
//! and every estimate over-counts by at most the smallest tracked count.
//!
//! The operator is keyed like the others: each worker summarizes *its*
//! keys, and per-key migration works by extracting a key's counter and
//! re-inserting it at the destination — making this the one operator
//! whose state is a *sketch*, exercising migration of approximate state.

use std::collections::VecDeque;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use streambal_core::Key;
use streambal_hashring::FxHashMap;

use crate::operator::Operator;
use crate::tuple::Tuple;

/// Space-Saving counter state for one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    count: u64,
    /// Maximum possible over-count (the evicted counter's value at
    /// adoption time).
    error: u64,
}

/// The Space-Saving top-k operator.
#[derive(Debug)]
pub struct TopKOp {
    capacity: usize,
    counters: FxHashMap<Key, Slot>,
    /// Tuples seen (per instance; diagnostics).
    observed: u64,
    /// Recent per-interval arrivals, only for window-eviction accounting
    /// (the sketch itself is not windowed).
    recent: VecDeque<(u64, u64)>,
}

impl TopKOp {
    /// Creates a summary tracking at most `capacity` keys.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "top-k needs at least one counter");
        TopKOp {
            capacity,
            counters: FxHashMap::default(),
            observed: 0,
            recent: VecDeque::new(),
        }
    }

    /// The current top-`n` estimates, `(key, count, max_error)`, by
    /// descending count.
    pub fn top(&self, n: usize) -> Vec<(Key, u64, u64)> {
        let mut v: Vec<(Key, u64, u64)> = self
            .counters
            .iter()
            .map(|(&k, s)| (k, s.count, s.error))
            .collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Total tuples observed by this instance.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    fn offer(&mut self, key: Key) {
        self.observed += 1;
        if let Some(s) = self.counters.get_mut(&key) {
            s.count += 1;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(key, Slot { count: 1, error: 0 });
            return;
        }
        // Evict the minimum counter; the newcomer adopts its count as its
        // error bound — the Space-Saving step.
        let Some((&victim, &slot)) = self.counters.iter().min_by_key(|(k, s)| (s.count, k.raw()))
        else {
            // capacity == 0: degenerate sketch, count nothing.
            return;
        };
        self.counters.remove(&victim);
        self.counters.insert(
            key,
            Slot {
                count: slot.count + 1,
                error: slot.count,
            },
        );
    }
}

impl Operator for TopKOp {
    fn process(&mut self, tuple: &Tuple, _interval: u64, _emit: &mut dyn FnMut(Tuple)) -> u64 {
        self.offer(tuple.key);
        // Sketch state is bounded: account bytes only while the summary
        // still grows.
        if self.counters.len() < self.capacity {
            24
        } else {
            0
        }
    }

    fn state_size(&self, key: Key) -> u64 {
        if self.counters.contains_key(&key) {
            24
        } else {
            0
        }
    }

    fn extract(&mut self, key: Key) -> Option<Bytes> {
        let slot = self.counters.remove(&key)?;
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u64_le(slot.count);
        buf.put_u64_le(slot.error);
        Some(buf.freeze())
    }

    fn install(&mut self, key: Key, blob: Bytes) {
        let mut buf = blob;
        if buf.remaining() < 16 {
            return;
        }
        let count = buf.get_u64_le();
        let error = buf.get_u64_le();
        let e = self
            .counters
            .entry(key)
            .or_insert(Slot { count: 0, error: 0 });
        e.count += count;
        e.error += error;
        // Over capacity after an install: evict minima until bounded.
        while self.counters.len() > self.capacity {
            let Some((&victim, _)) = self.counters.iter().min_by_key(|(k, s)| (s.count, k.raw()))
            else {
                break;
            };
            self.counters.remove(&victim);
        }
    }

    fn evict_before(&mut self, oldest_keep: u64) {
        // The sketch is cumulative; only the accounting queue ages out.
        while self.recent.front().is_some_and(|&(iv, _)| iv < oldest_keep) {
            self.recent.pop_front();
        }
    }

    fn drain(&mut self) -> Vec<(Key, Bytes)> {
        let keys: Vec<Key> = self.counters.keys().copied().collect();
        let mut out: Vec<(Key, Bytes)> = keys
            .into_iter()
            .filter_map(|k| self.extract(k).map(|b| (k, b)))
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_emit() -> impl FnMut(Tuple) {
        |_| {}
    }

    fn feed(op: &mut TopKOp, key: u64, times: u64) {
        let mut sink = no_emit();
        for _ in 0..times {
            op.process(&Tuple::keyed(Key(key)), 0, &mut sink);
        }
    }

    #[test]
    fn exact_when_under_capacity() {
        let mut op = TopKOp::new(10);
        feed(&mut op, 1, 50);
        feed(&mut op, 2, 30);
        feed(&mut op, 3, 20);
        let top = op.top(2);
        assert_eq!(top[0], (Key(1), 50, 0));
        assert_eq!(top[1], (Key(2), 30, 0));
    }

    #[test]
    fn heavy_hitters_survive_eviction_pressure() {
        // 4 counters, one dominant key among a churn of singletons.
        let mut op = TopKOp::new(4);
        for i in 0..200u64 {
            feed(&mut op, 1000, 3); // the heavy hitter, every round
            feed(&mut op, i, 1); // churn
        }
        let top = op.top(1);
        assert_eq!(top[0].0, Key(1000), "heavy hitter must be retained");
        // Space-Saving guarantee: estimate ≥ true count.
        assert!(top[0].1 >= 600);
    }

    #[test]
    fn error_bound_holds() {
        let mut op = TopKOp::new(3);
        for i in 0..50u64 {
            feed(&mut op, i % 7, 1);
        }
        for (_, count, error) in op.top(3) {
            assert!(error <= count, "error {error} > estimate {count}");
        }
        assert_eq!(op.observed(), 50);
    }

    #[test]
    fn extract_install_roundtrip_preserves_counts() {
        let mut a = TopKOp::new(8);
        feed(&mut a, 5, 40);
        let blob = a.extract(Key(5)).unwrap();
        assert!(a.top(8).iter().all(|&(k, _, _)| k != Key(5)));
        let mut b = TopKOp::new(8);
        feed(&mut b, 5, 2);
        b.install(Key(5), blob);
        let top = b.top(1);
        assert_eq!(top[0], (Key(5), 42, 0), "counts merge on install");
    }

    #[test]
    fn install_respects_capacity() {
        let mut op = TopKOp::new(2);
        feed(&mut op, 1, 10);
        feed(&mut op, 2, 20);
        let mut blob = BytesMut::new();
        blob.put_u64_le(5);
        blob.put_u64_le(0);
        op.install(Key(3), blob.freeze());
        assert_eq!(op.top(10).len(), 2, "capacity bound maintained");
        // The smallest counter (the installed 5) was evicted.
        assert!(op.top(10).iter().all(|&(k, _, _)| k != Key(3)));
    }

    #[test]
    fn drain_returns_all_sorted() {
        let mut op = TopKOp::new(8);
        for k in [9u64, 1, 5] {
            feed(&mut op, k, 2);
        }
        let drained = op.drain();
        let keys: Vec<u64> = drained.iter().map(|(k, _)| k.raw()).collect();
        assert_eq!(keys, vec![1, 5, 9]);
        assert!(op.top(8).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn zero_capacity_panics() {
        TopKOp::new(0);
    }
}
