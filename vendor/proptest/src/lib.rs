//! Offline shim for `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin API slice its property tests use: the [`proptest!`]
//! macro, range/tuple/`Just`/`vec`/`any` strategies, `prop_map` /
//! `prop_flat_map`, and the `prop_assert*` family. Differences from
//! upstream: cases are generated from a fixed deterministic seed sequence,
//! there is **no shrinking** (a failure reports the failing inputs via the
//! panic message of the underlying `assert!`), and `prop_assume!` skips
//! the case without drawing a replacement.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property (panics on failure, as upstream
/// does after shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return ::std::option::Option::None;
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller, as
/// upstream requires) running `cases` deterministic draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@items $cfg; $($rest)*}
    };
    (@items $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::case_rng(case);
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    // The closure gives `prop_assume!` an early exit;
                    // `None` marks a skipped case.
                    #[allow(clippy::redundant_closure_call)]
                    let _skipped: ::std::option::Option<()> = (|| {
                        $body
                        ::std::option::Option::Some(())
                    })();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@items $crate::test_runner::ProptestConfig::default(); $($rest)*}
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Doc comments and multi-arg patterns parse; draws honour ranges.
        #[test]
        fn ranges_and_tuples((a, b) in (1usize..5, 10u64..=12), f in -1.0f64..1.0) {
            prop_assert!((1..5).contains(&a));
            prop_assert!((10..=12).contains(&b));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn map_flat_map_vec(v in crate::collection::vec((0u32..7).prop_map(|x| x * 2), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for x in v {
                prop_assert!(x % 2 == 0 && x < 14);
            }
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn flat_map_dependent(pair in (2usize..6).prop_flat_map(|n| (Just(n), 0..n as u32))) {
            let (n, v) = pair;
            prop_assert!((v as usize) < n);
        }
    }
}
