//! Key and task identifiers.
//!
//! Tuples are key-value pairs `(k, v)` (paper §II-A); the partitioning
//! algorithms only ever see the key, as a 64-bit identifier. String keys
//! (e.g. topic words in the Social workload) are interned to `u64` by the
//! workload layer before entering the engine, which keeps the router hot
//! path allocation-free.

use std::fmt;

/// A tuple key from the key domain `K`.
///
/// A plain `u64` newtype: dense integers for synthetic workloads, interned
/// string ids for real ones. All hashing goes through the `hashring`
/// primitives, so dense domains are safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(pub u64);

impl Key {
    /// The raw identifier.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for Key {
    #[inline]
    fn from(v: u64) -> Self {
        Key(v)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// A downstream task-instance identifier `d ∈ D`, in `0..N_D`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The task index as a usize, for array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for TaskId {
    #[inline]
    fn from(v: u32) -> Self {
        TaskId(v)
    }
}

impl From<usize> for TaskId {
    #[inline]
    fn from(v: usize) -> Self {
        // lint: allow(panic, reason = "task indices are bounded by worker
        // count (tens); 2^32 tasks means the caller's arithmetic is broken
        // and truncating would silently alias two workers")
        TaskId(u32::try_from(v).expect("task index exceeds u32"))
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip_and_display() {
        let k = Key::from(42u64);
        assert_eq!(k.raw(), 42);
        assert_eq!(k.to_string(), "k42");
        assert_eq!(k, Key(42));
    }

    #[test]
    fn task_id_conversions() {
        let d = TaskId::from(3usize);
        assert_eq!(d.index(), 3);
        assert_eq!(d, TaskId(3));
        assert_eq!(d.to_string(), "d3");
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn oversized_task_index_panics() {
        let _ = TaskId::from(usize::MAX);
    }

    #[test]
    fn ordering_is_by_raw_value() {
        assert!(Key(1) < Key(2));
        assert!(TaskId(0) < TaskId(9));
    }
}
