//! `(tick, value)` series for timeline figures.

/// An append-only series of `(tick, value)` observations.
///
/// Ticks are caller-defined (seconds, interval indices, tuple counts). Used
/// for the throughput-over-time plots of Figs. 15 and 16, where different
/// balancing strategies are compared on the same time axis.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
    label: String,
}

impl TimeSeries {
    /// Creates an empty, unlabelled series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Creates an empty series with a display label (e.g. `"Mixed θmax=0.1"`).
    pub fn labelled(label: impl Into<String>) -> Self {
        TimeSeries {
            points: Vec::new(),
            label: label.into(),
        }
    }

    /// The display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends an observation. Ticks should be non-decreasing; that is
    /// asserted in debug builds.
    pub fn push(&mut self, tick: f64, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(t, _)| t <= tick),
            "time series ticks must be non-decreasing"
        );
        self.points.push((tick, value));
    }

    /// The raw points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the values.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Mean of the values in the tick range `[from, to)`. A single
    /// streaming sum/count pass — called once per interval by report
    /// generation, so it must not allocate.
    pub fn mean_in(&self, from: f64, to: f64) -> f64 {
        let (sum, count) = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .fold((0.0f64, 0usize), |(s, n), &(_, v)| (s + v, n + 1));
        if count == 0 {
            return 0.0;
        }
        sum / count as f64
    }

    /// First tick at which `value >= threshold` holds and keeps holding for
    /// `sustain` consecutive points — used to measure recovery time after a
    /// disturbance (Fig. 15's "how fast does each strategy rebalance").
    pub fn first_sustained_at(&self, threshold: f64, sustain: usize) -> Option<f64> {
        if sustain == 0 {
            return self.points.first().map(|&(t, _)| t);
        }
        let mut run = 0usize;
        let mut start_tick = 0.0;
        for &(t, v) in &self.points {
            if v >= threshold {
                if run == 0 {
                    start_tick = t;
                }
                run += 1;
                if run >= sustain {
                    return Some(start_tick);
                }
            } else {
                run = 0;
            }
        }
        None
    }

    /// Downsamples to at most `n` points by averaging fixed-size chunks —
    /// keeps the experiment logs readable.
    pub fn downsample(&self, n: usize) -> TimeSeries {
        if n == 0 || self.points.len() <= n {
            return self.clone();
        }
        let chunk = self.points.len().div_ceil(n);
        let mut out = TimeSeries::labelled(self.label.clone());
        for c in self.points.chunks(chunk) {
            let t = c.iter().map(|&(t, _)| t).sum::<f64>() / c.len() as f64;
            let v = c.iter().map(|&(_, v)| v).sum::<f64>() / c.len() as f64;
            out.points.push((t, v));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[(f64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new();
        for &(t, v) in vals {
            s.push(t, v);
        }
        s
    }

    #[test]
    fn push_and_mean() {
        let s = series(&[(0.0, 2.0), (1.0, 4.0), (2.0, 6.0)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.mean(), 4.0);
    }

    #[test]
    fn mean_in_range() {
        let s = series(&[(0.0, 1.0), (1.0, 100.0), (2.0, 200.0), (3.0, 1.0)]);
        assert_eq!(s.mean_in(1.0, 3.0), 150.0);
        assert_eq!(s.mean_in(10.0, 20.0), 0.0);
    }

    #[test]
    fn sustained_recovery_detection() {
        let s = series(&[
            (0.0, 10.0),
            (1.0, 2.0), // disturbance
            (2.0, 3.0),
            (3.0, 9.0), // recovery starts
            (4.0, 9.5),
            (5.0, 9.8),
        ]);
        assert_eq!(s.first_sustained_at(8.0, 3), Some(3.0));
        assert_eq!(s.first_sustained_at(50.0, 1), None);
    }

    #[test]
    fn sustained_run_resets_on_dip() {
        let s = series(&[(0.0, 9.0), (1.0, 1.0), (2.0, 9.0), (3.0, 9.0)]);
        assert_eq!(s.first_sustained_at(8.0, 2), Some(2.0));
    }

    #[test]
    fn downsample_halves() {
        let s = series(&(0..10).map(|i| (i as f64, i as f64)).collect::<Vec<_>>());
        let d = s.downsample(5);
        assert_eq!(d.len(), 5);
        assert_eq!(d.points()[0], (0.5, 0.5));
    }

    #[test]
    fn downsample_noop_when_small() {
        let s = series(&[(0.0, 1.0)]);
        assert_eq!(s.downsample(10).len(), 1);
    }

    #[test]
    fn labels_survive() {
        let s = TimeSeries::labelled("Mixed");
        assert_eq!(s.label(), "Mixed");
        assert_eq!(s.downsample(1).label(), "Mixed");
    }
}
