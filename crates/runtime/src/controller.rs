//! Controller-side accounting, factored out of the engine loop so its
//! edge cases are unit-testable without spinning up threads: the
//! statistics-round ledger (which must survive late and duplicate worker
//! reports — a retiring worker can answer a round the controller already
//! closed) and the worker-seconds integral (which must bill queued
//! scale-ins exactly once per parallelism change).

use std::time::Instant;

use streambal_core::{IntervalStats, TaskId};
use streambal_hashring::{FxHashMap, FxHashSet};
use streambal_metrics::Histogram;

/// One open statistics round: merged stats, per-slot loads, queue-depth
/// samples, the interval's latency distribution, and which workers have
/// reported. The expected *set* is pinned at issue time — scale-out must
/// not retroactively change which workers a round waits for — but it can
/// shrink: a reporter that dies mid-round is struck off
/// ([`StatsLedger::on_worker_dead`]), and a round that outlives its
/// deadline closes with whoever answered
/// ([`StatsLedger::expire_rounds`]), so a dead or wedged worker cannot
/// hold statistics — or shutdown, which waits on open rounds — hostage.
struct StatsRound {
    merged: IntervalStats,
    loads: Vec<u64>,
    queues: Vec<u64>,
    latency: Histogram,
    reporters: FxHashSet<TaskId>,
    expected: FxHashSet<TaskId>,
    /// When the round was issued (wall half of the expiry deadline).
    opened: Instant,
}

impl StatsRound {
    fn is_complete(&self) -> bool {
        self.expected.iter().all(|w| self.reporters.contains(w))
    }

    fn close(self) -> ClosedRound {
        ClosedRound {
            merged: self.merged,
            loads: self.loads,
            queues: self.queues,
            mean_latency_us: self.latency.mean(),
            p99_latency_us: self.latency.quantile(0.99) as f64,
        }
    }
}

/// Everything a completed round hands the elasticity policy, the
/// partitioner, and the flight recorder's per-interval `Snapshot`
/// event: the merged stats, the per-slot load vector, the queue
/// depths sampled when the round was issued, and the interval latency
/// summary.
pub(crate) struct ClosedRound {
    pub merged: IntervalStats,
    pub loads: Vec<u64>,
    pub queues: Vec<u64>,
    pub mean_latency_us: f64,
    pub p99_latency_us: f64,
}

/// The controller's statistics-round ledger.
///
/// Robustness contract (the seed crashed on both): a report for a round
/// the ledger does not know — late (the round already closed without the
/// retiring reporter) or simply unknown — **degrades gracefully**: its
/// load folds into the oldest open round, or into the carry buffer
/// consumed by the next round, so totals never under-count; and a
/// *duplicate* report from a worker that already answered merges its
/// load without advancing the round's completion count, so a round can
/// neither close early nor leak.
pub(crate) struct StatsLedger {
    rounds: FxHashMap<u64, StatsRound>,
    /// Residual statistics with no open round to absorb them — folded
    /// into the next round issued.
    carry: IntervalStats,
}

impl StatsLedger {
    pub fn new() -> Self {
        StatsLedger {
            rounds: FxHashMap::default(),
            carry: IntervalStats::new(),
        }
    }

    /// Rounds still waiting for reports.
    pub fn outstanding(&self) -> usize {
        self.rounds.len()
    }

    /// Opens the round for `interval`, expecting a report from each
    /// worker in `expected`, over `active` worker slots, with `queues`
    /// the per-slot queue depths sampled at interval close. Any carried
    /// residue is folded in (the slot attribution is gone with the
    /// retired slot; totals are what policies consume).
    pub fn open(&mut self, interval: u64, active: usize, expected: Vec<TaskId>, queues: Vec<u64>) {
        debug_assert!(!expected.is_empty() && active > 0);
        let mut round = StatsRound {
            merged: IntervalStats::new(),
            loads: vec![0; active],
            queues,
            latency: Histogram::new(),
            reporters: FxHashSet::default(),
            expected: expected.into_iter().collect(),
            opened: Instant::now(),
        };
        if !self.carry.is_empty() {
            round.loads[active - 1] += self.carry.iter().map(|(_, s)| s.cost).sum::<u64>();
            round.merged.merge(&self.carry);
            self.carry = IntervalStats::new();
        }
        self.rounds.insert(interval, round);
    }

    /// Strikes a dead worker off every open round's expected set and
    /// closes the rounds that were only waiting on it, oldest first.
    /// Its already-merged contributions stay — the load was real.
    pub fn on_worker_dead(&mut self, worker: TaskId) -> Vec<(u64, ClosedRound)> {
        for round in self.rounds.values_mut() {
            round.expected.remove(&worker);
        }
        self.drain_complete()
    }

    /// Closes rounds past their deadline — `deadline_intervals` newer
    /// intervals have been issued (the deterministic clock) *and*
    /// `deadline` wall time has passed since the round opened — with
    /// whoever answered. Returns `(interval, round, missing reporters)`
    /// oldest first; the caller records the missing set in the fault
    /// ledger. A silent-but-subscribed worker thus delays statistics by
    /// a bounded amount instead of wedging shutdown.
    pub fn expire_rounds(
        &mut self,
        current_interval: u64,
        deadline_intervals: u64,
        deadline: std::time::Duration,
    ) -> Vec<(u64, ClosedRound, Vec<usize>)> {
        let now = Instant::now();
        let mut expired: Vec<u64> = self
            .rounds
            .iter()
            .filter(|(iv, round)| {
                current_interval.saturating_sub(**iv) >= deadline_intervals
                    && now.duration_since(round.opened) >= deadline
            })
            .map(|(iv, _)| *iv)
            .collect();
        expired.sort_unstable();
        expired
            .into_iter()
            .filter_map(|iv| {
                let round = self.rounds.remove(&iv)?;
                let mut missing: Vec<usize> = round
                    .expected
                    .difference(&round.reporters)
                    .map(|w| w.index())
                    .collect();
                missing.sort_unstable();
                Some((iv, round.close(), missing))
            })
            .collect()
    }

    /// Removes and returns every complete round, oldest first.
    fn drain_complete(&mut self) -> Vec<(u64, ClosedRound)> {
        let mut done: Vec<u64> = self
            .rounds
            .iter()
            .filter(|(_, r)| r.is_complete())
            .map(|(iv, _)| *iv)
            .collect();
        done.sort_unstable();
        done.into_iter()
            .filter_map(|iv| Some((iv, self.rounds.remove(&iv)?.close())))
            .collect()
    }

    /// Ingests one worker report. Returns the completed round when this
    /// report was the last one still expected.
    pub fn on_stats(
        &mut self,
        worker: TaskId,
        interval: u64,
        stats: IntervalStats,
        latency: &Histogram,
    ) -> Option<ClosedRound> {
        let Some(round) = self.rounds.get_mut(&interval) else {
            // Late or unknown round: never crash the controller — the
            // load is real traffic, so absorb it where the next decision
            // will see it.
            self.absorb(worker, &stats);
            return None;
        };
        let slot = worker.index().min(round.loads.len() - 1);
        round.loads[slot] += stats.iter().map(|(_, s)| s.cost).sum::<u64>();
        round.merged.merge(&stats);
        round.latency.merge(latency);
        // A duplicate reporter merges (discarding would under-count) but
        // must not advance completion, or the round would close while a
        // distinct worker's report is still in flight.
        if round.reporters.insert(worker) && round.is_complete() {
            return self.rounds.remove(&interval).map(StatsRound::close);
        }
        None
    }

    /// Folds a retired victim's unreported residue into the oldest open
    /// round (issued while the victim was alive, so its slot exists), or
    /// carries it for the next round — dropping it would read as a load
    /// dip and re-trigger the scale-in policy.
    pub fn on_residue(&mut self, worker: TaskId, stats: &IntervalStats) {
        if !stats.is_empty() {
            self.absorb(worker, stats);
        }
    }

    fn absorb(&mut self, worker: TaskId, stats: &IntervalStats) {
        if let Some((_, round)) = self.rounds.iter_mut().min_by_key(|(k, _)| **k) {
            let slot = worker.index().min(round.loads.len() - 1);
            round.loads[slot] += stats.iter().map(|(_, s)| s.cost).sum::<u64>();
            round.merged.merge(stats);
        } else {
            self.carry.merge(stats);
        }
    }
}

/// The worker-seconds integral `∫ active(t) dt` — the provisioning cost
/// an elastic policy saves against a static peak-sized deployment.
///
/// One accumulation rule at every parallelism change: bill the *old*
/// parallelism for the span since the last change, then advance the
/// mark. Queued scale-ins thus bill each victim until its own retirement
/// completes (it is processing its backlog the whole time), not until
/// the decision that doomed it.
pub(crate) struct WorkerSeconds {
    mark: Instant,
    active: usize,
    total: f64,
}

impl WorkerSeconds {
    pub fn new(start: Instant, active: usize) -> Self {
        WorkerSeconds {
            mark: start,
            active,
            total: 0.0,
        }
    }

    /// Records a parallelism change at `now`.
    pub fn set_active(&mut self, now: Instant, active: usize) {
        self.total += self.active as f64 * now.duration_since(self.mark).as_secs_f64();
        self.mark = now;
        self.active = active;
    }

    /// Closes the integral at `now` and returns it.
    pub fn finish(mut self, now: Instant) -> f64 {
        self.set_active(now, 0);
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use streambal_core::Key;

    fn stats_with_cost(key: u64, cost: u64) -> IntervalStats {
        let mut s = IntervalStats::new();
        s.observe(Key(key), 1, cost, 1);
        s
    }

    fn expect_n(n: usize) -> Vec<TaskId> {
        (0..n).map(TaskId::from).collect()
    }

    fn close_all_but(ledger: &mut StatsLedger, interval: u64, workers: &[usize]) {
        for &w in workers {
            assert!(ledger
                .on_stats(
                    TaskId::from(w),
                    interval,
                    stats_with_cost(w as u64, 10),
                    &Histogram::new(),
                )
                .is_none());
        }
    }

    #[test]
    fn round_closes_when_all_expected_report() {
        let mut ledger = StatsLedger::new();
        ledger.open(0, 3, expect_n(3), vec![5, 0, 2]);
        close_all_but(&mut ledger, 0, &[0, 1]);
        let closed = ledger
            .on_stats(TaskId(2), 0, stats_with_cost(2, 30), &Histogram::new())
            .expect("third report closes");
        assert_eq!(closed.loads, vec![10, 10, 30]);
        assert_eq!(closed.queues, vec![5, 0, 2]);
        assert_eq!(ledger.outstanding(), 0);
    }

    /// The seed's first panic path: a report for a round the ledger
    /// already closed (a retiring worker answering late) must fold into
    /// an open round instead of crashing.
    #[test]
    fn late_report_folds_into_oldest_open_round() {
        let mut ledger = StatsLedger::new();
        ledger.open(0, 2, expect_n(2), vec![0, 0]);
        close_all_but(&mut ledger, 0, &[0]);
        assert!(ledger
            .on_stats(TaskId(1), 0, stats_with_cost(1, 10), &Histogram::new())
            .is_some());
        // Round 0 is gone. Rounds 1 and 2 are open; a late report for
        // round 0 lands in round 1 (the oldest), clamped to its slots.
        ledger.open(1, 2, expect_n(2), vec![0, 0]);
        ledger.open(2, 2, expect_n(2), vec![0, 0]);
        assert!(ledger
            .on_stats(TaskId(7), 0, stats_with_cost(9, 55), &Histogram::new())
            .is_none());
        close_all_but(&mut ledger, 1, &[0]);
        let closed = ledger
            .on_stats(TaskId(1), 1, stats_with_cost(1, 10), &Histogram::new())
            .expect("round 1 closes");
        assert_eq!(closed.loads, vec![10, 65], "late load folded, clamped");
        assert_eq!(ledger.outstanding(), 1);
    }

    /// With no round open at all, a late report carries into the next
    /// round issued — the retired-victim residue path.
    #[test]
    fn late_report_with_no_open_round_carries_forward() {
        let mut ledger = StatsLedger::new();
        assert!(ledger
            .on_stats(TaskId(3), 9, stats_with_cost(4, 40), &Histogram::new())
            .is_none());
        ledger.open(10, 2, expect_n(2), vec![0, 0]);
        close_all_but(&mut ledger, 10, &[0]);
        let closed = ledger
            .on_stats(TaskId(1), 10, stats_with_cost(1, 10), &Histogram::new())
            .expect("closes");
        assert_eq!(closed.loads, vec![10, 50], "carry lands on the tail slot");
    }

    /// The seed's second hazard: a duplicate report must not close a
    /// round early (a distinct worker's report is still in flight) and
    /// must not lose the duplicated load.
    #[test]
    fn duplicate_report_merges_without_advancing_completion() {
        let mut ledger = StatsLedger::new();
        ledger.open(0, 3, expect_n(3), vec![0, 0, 0]);
        close_all_but(&mut ledger, 0, &[0, 1]);
        // Worker 1 reports again: still waiting on worker 2.
        assert!(ledger
            .on_stats(TaskId(1), 0, stats_with_cost(1, 7), &Histogram::new())
            .is_none());
        let closed = ledger
            .on_stats(TaskId(2), 0, stats_with_cost(2, 10), &Histogram::new())
            .expect("real third report closes");
        assert_eq!(closed.loads, vec![10, 17, 10]);
    }

    #[test]
    fn residue_folds_into_oldest_round_or_carry() {
        let mut ledger = StatsLedger::new();
        // No round open: residue carries into the next open().
        ledger.on_residue(TaskId(2), &stats_with_cost(5, 21));
        ledger.open(0, 2, expect_n(2), vec![0, 0]);
        close_all_but(&mut ledger, 0, &[0]);
        let closed = ledger
            .on_stats(TaskId(1), 0, stats_with_cost(1, 10), &Histogram::new())
            .expect("closes");
        assert_eq!(closed.loads, vec![10, 31]);
        // Round open: residue folds straight in, slot clamped.
        ledger.open(1, 2, expect_n(2), vec![0, 0]);
        ledger.on_residue(TaskId(6), &stats_with_cost(5, 9));
        close_all_but(&mut ledger, 1, &[0]);
        let closed = ledger
            .on_stats(TaskId(1), 1, stats_with_cost(1, 10), &Histogram::new())
            .expect("closes");
        assert_eq!(closed.loads, vec![10, 19]);
    }

    #[test]
    fn latency_summary_merges_across_reporters() {
        let mut ledger = StatsLedger::new();
        ledger.open(0, 2, expect_n(2), vec![0, 0]);
        let mut h0 = Histogram::new();
        h0.record(100);
        let mut h1 = Histogram::new();
        h1.record(300);
        assert!(ledger
            .on_stats(TaskId(0), 0, stats_with_cost(0, 1), &h0)
            .is_none());
        let closed = ledger
            .on_stats(TaskId(1), 0, stats_with_cost(1, 1), &h1)
            .expect("closes");
        assert_eq!(closed.mean_latency_us, 200.0);
        assert!(closed.p99_latency_us >= 250.0, "{}", closed.p99_latency_us);
    }

    /// A reporter that dies mid-round must not wedge the round: striking
    /// it off closes every round that was only waiting on it, and its
    /// already-merged load stays in the closed totals.
    #[test]
    fn dead_reporter_closes_waiting_rounds() {
        let mut ledger = StatsLedger::new();
        ledger.open(0, 3, expect_n(3), vec![0, 0, 0]);
        ledger.open(1, 3, expect_n(3), vec![0, 0, 0]);
        close_all_but(&mut ledger, 0, &[0, 1]);
        close_all_but(&mut ledger, 1, &[0]);
        // Worker 2 dies. Round 0 was only waiting on it → closes with
        // the two real reports; round 1 still waits on worker 1.
        let closed = ledger.on_worker_dead(TaskId(2));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].0, 0);
        assert_eq!(closed[0].1.loads, vec![10, 10, 0]);
        assert_eq!(ledger.outstanding(), 1);
        let done = ledger
            .on_stats(TaskId(1), 1, stats_with_cost(1, 10), &Histogram::new())
            .expect("round 1 closes without the dead worker");
        assert_eq!(done.loads, vec![10, 10, 0]);
        assert_eq!(ledger.outstanding(), 0);
    }

    /// The satellite regression: a permanently-silent reporter (alive
    /// but never answering) delays a round only until the deadline, then
    /// the round closes with whoever answered and names the missing
    /// worker — instead of holding `outstanding()` (and shutdown, which
    /// gates on it) hostage forever.
    #[test]
    fn silent_reporter_round_closes_by_deadline() {
        let mut ledger = StatsLedger::new();
        ledger.open(0, 2, expect_n(2), vec![0, 0]);
        close_all_but(&mut ledger, 0, &[0]);
        // Worker 1 never reports. Not enough intervals elapsed: no expiry.
        assert!(ledger
            .expire_rounds(1, 2, Duration::from_millis(0))
            .is_empty());
        // Interval clock satisfied but wall deadline not yet: no expiry.
        assert!(ledger
            .expire_rounds(5, 2, Duration::from_secs(3600))
            .is_empty());
        let expired = ledger.expire_rounds(5, 2, Duration::from_millis(0));
        assert_eq!(expired.len(), 1);
        let (iv, round, missing) = &expired[0];
        assert_eq!(*iv, 0);
        assert_eq!(round.loads, vec![10, 0]);
        assert_eq!(missing, &vec![1], "the silent worker is named");
        assert_eq!(ledger.outstanding(), 0, "shutdown is no longer gated");
    }

    /// The hand-computed worker-seconds trace for a queued scale-in: a
    /// scale-out at t=2 (3→4), two queued victims whose retirements
    /// complete at t=5 (4→3) and t=6 (3→2), shutdown at t=10. Each span
    /// bills the parallelism that was actually live:
    /// 3·2 + 4·3 + 3·1 + 2·4 = 29 — exactly, so double- or
    /// under-counting can never regress silently.
    #[test]
    fn worker_seconds_bills_queued_scale_ins_exactly() {
        let t0 = Instant::now();
        let at = |s: u64| t0 + Duration::from_secs(s);
        let mut ws = WorkerSeconds::new(t0, 3);
        ws.set_active(at(2), 4); // scale-out decided and spawned
        ws.set_active(at(5), 3); // first queued victim retires
        ws.set_active(at(6), 2); // second victim (queued behind the first)
        assert_eq!(ws.finish(at(10)), 29.0);
    }

    /// Back-to-back changes at the same instant (a scale-out landing in
    /// the same event-loop turn as a retirement) bill zero-length spans,
    /// not negative or doubled ones.
    #[test]
    fn worker_seconds_zero_length_spans_are_free() {
        let t0 = Instant::now();
        let at = |s: u64| t0 + Duration::from_secs(s);
        let mut ws = WorkerSeconds::new(t0, 2);
        ws.set_active(at(3), 3);
        ws.set_active(at(3), 2);
        ws.set_active(at(3), 3);
        assert_eq!(ws.finish(at(4)), 2.0 * 3.0 + 3.0);
    }
}
