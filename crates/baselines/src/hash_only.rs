//! Static consistent hashing — the "Storm" baseline.

use streambal_core::{AssignmentFn, IntervalStats, Key, RebalanceOutcome, TaskId};

use crate::{Partitioner, RoutingView};

/// Routes every key by consistent hash, never rebalancing. This is what a
/// stock Storm `fields` grouping does, and the strawman whose skew the
/// paper's Fig. 7 quantifies.
#[derive(Debug)]
pub struct HashPartitioner {
    assignment: AssignmentFn,
}

impl HashPartitioner {
    /// Creates the partitioner over `n_tasks` downstream instances.
    pub fn new(n_tasks: usize) -> Self {
        HashPartitioner {
            assignment: AssignmentFn::hash_only(n_tasks),
        }
    }
}

impl Partitioner for HashPartitioner {
    fn name(&self) -> String {
        "Storm".into()
    }

    fn n_tasks(&self) -> usize {
        self.assignment.n_tasks()
    }

    #[inline]
    fn route(&mut self, key: Key) -> TaskId {
        self.assignment.route(key)
    }

    fn route_batch(&mut self, keys: &[Key], out: &mut Vec<TaskId>) {
        self.assignment.route_batch(keys, out);
    }

    fn end_interval(&mut self, _stats: IntervalStats) -> Option<RebalanceOutcome> {
        None // never rebalances
    }

    fn add_task(&mut self) -> TaskId {
        self.assignment.add_task()
    }

    fn scale_out_plan(&mut self, live: &[Key]) -> (TaskId, Vec<(Key, TaskId)>) {
        // Pure consistent hashing: the moves are exactly the `add_slot`
        // delta — live keys the grown ring re-homes onto the new slot.
        self.assignment.add_task_with_moves(live)
    }

    fn scale_in(&mut self, victim: TaskId, live: &[Key]) {
        assert_eq!(
            victim.index(),
            self.assignment.n_tasks() - 1,
            "scale-in retires the highest-numbered task"
        );
        self.assignment.remove_task_pinned(live);
    }

    fn routing_view(&self) -> RoutingView {
        RoutingView::of_assignment(&self.assignment)
    }

    fn reroute_dead(
        &mut self,
        dead: TaskId,
        is_dead: &dyn Fn(usize) -> bool,
    ) -> Vec<(Key, TaskId)> {
        self.assignment.repin_dead(dead, is_dead)
    }

    fn apply_moves(&mut self, moves: &[(Key, TaskId)]) -> bool {
        self.assignment.apply_delta(moves.iter().copied());
        true
    }

    fn split_key(&mut self, key: Key, replicas: &[TaskId]) -> bool {
        self.assignment.set_split(key, replicas)
    }

    fn unsplit_key(&mut self, key: Key) -> Option<Vec<TaskId>> {
        self.assignment.clear_split(key)
    }

    fn splits(&self) -> Vec<(Key, Vec<TaskId>)> {
        self.assignment.splits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_routing() {
        let mut p = HashPartitioner::new(7);
        let before: Vec<TaskId> = (0..500u64).map(|k| p.route(Key(k))).collect();
        // Interval boundaries change nothing.
        assert!(p.end_interval(IntervalStats::new()).is_none());
        let after: Vec<TaskId> = (0..500u64).map(|k| p.route(Key(k))).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn scale_in_reroutes_only_the_victims_keys() {
        let mut p = HashPartitioner::new(5);
        let before: Vec<TaskId> = (0..2000u64).map(|k| p.route(Key(k))).collect();
        p.scale_in(TaskId(4), &[]);
        assert_eq!(p.n_tasks(), 4);
        for (k, &old) in before.iter().enumerate() {
            let now = p.route(Key(k as u64));
            assert!(now.index() < 4);
            if old.index() < 4 {
                assert_eq!(now, old, "survivor key {k} churned");
            }
        }
    }

    #[test]
    fn scale_out_moves_keys_only_to_new_task() {
        let mut p = HashPartitioner::new(4);
        let before: Vec<TaskId> = (0..2000u64).map(|k| p.route(Key(k))).collect();
        let new = p.add_task();
        for (k, &old) in before.iter().enumerate() {
            let now = p.route(Key(k as u64));
            assert!(now == old || now == new);
        }
    }
}
