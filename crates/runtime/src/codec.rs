//! Wire encoding for control-plane artifacts.
//!
//! In this in-process engine the controller hands [`RoutingView`]s and
//! migration plans to the source over channels; a distributed deployment
//! (the paper's Storm cluster) ships them over the network. This module
//! provides the byte codec that transport would use: a compact, versioned,
//! little-endian format with explicit length prefixes — no serde, no
//! reflection, auditable by eye.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use streambal_core::{Key, MigrationPlan, Move, RoutingTable, RoutingView, TaskId};

/// Codec format version (first byte of every message).
pub const CODEC_VERSION: u8 = 1;

const VIEW_TABLE_PLUS_HASH: u8 = 0;
const VIEW_TWO_CHOICE: u8 = 1;
const VIEW_ROUND_ROBIN: u8 = 2;
const VIEW_TABLE_DELTA: u8 = 3;
const VIEW_SPLIT_TABLE: u8 = 4;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the advertised content.
    Truncated,
    /// Unknown version byte.
    BadVersion(u8),
    /// Unknown discriminant.
    BadTag(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "buffer truncated"),
            CodecError::BadVersion(v) => write!(f, "unsupported codec version {v}"),
            CodecError::BadTag(t) => write!(f, "unknown discriminant {t}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn need(buf: &impl Buf, n: usize) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(CodecError::Truncated)
    } else {
        Ok(())
    }
}

/// Serializes a routing view.
pub fn encode_view(view: &RoutingView) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u8(CODEC_VERSION);
    match view {
        RoutingView::TablePlusHash { table, n_tasks } => {
            buf.put_u8(VIEW_TABLE_PLUS_HASH);
            buf.put_u32_le(*n_tasks as u32);
            buf.put_u32_le(table.len() as u32);
            for (k, d) in table.sorted_entries() {
                buf.put_u64_le(k.raw());
                buf.put_u32_le(d.0);
            }
        }
        RoutingView::TwoChoice { n_tasks } => {
            buf.put_u8(VIEW_TWO_CHOICE);
            buf.put_u32_le(*n_tasks as u32);
        }
        RoutingView::RoundRobin { n_tasks } => {
            buf.put_u8(VIEW_ROUND_ROBIN);
            buf.put_u32_le(*n_tasks as u32);
        }
        RoutingView::TableDelta { n_tasks, moves } => {
            // Same 12-byte entry shape as the full table — the delta's
            // wire win is its length (O(churn) entries, not O(table)).
            buf.put_u8(VIEW_TABLE_DELTA);
            buf.put_u32_le(*n_tasks as u32);
            buf.put_u32_le(moves.len() as u32);
            for (k, d) in moves {
                buf.put_u64_le(k.raw());
                buf.put_u32_le(d.0);
            }
        }
        RoutingView::SplitTable {
            table,
            n_tasks,
            splits,
        } => {
            // A full table view followed by the split table: per split,
            // key + replica count + the replica slots in rotation order
            // (primary first). Cursors are per-holder state and never on
            // the wire.
            buf.put_u8(VIEW_SPLIT_TABLE);
            buf.put_u32_le(*n_tasks as u32);
            buf.put_u32_le(table.len() as u32);
            for (k, d) in table.sorted_entries() {
                buf.put_u64_le(k.raw());
                buf.put_u32_le(d.0);
            }
            buf.put_u32_le(splits.len() as u32);
            for (k, replicas) in splits {
                buf.put_u64_le(k.raw());
                buf.put_u32_le(replicas.len() as u32);
                for d in replicas {
                    buf.put_u32_le(d.0);
                }
            }
        }
    }
    buf.freeze()
}

/// Deserializes a routing view.
pub fn decode_view(mut buf: Bytes) -> Result<RoutingView, CodecError> {
    need(&buf, 2)?;
    let version = buf.get_u8();
    if version != CODEC_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let tag = buf.get_u8();
    match tag {
        VIEW_TABLE_PLUS_HASH => {
            need(&buf, 8)?;
            let n_tasks = buf.get_u32_le() as usize;
            let entries = buf.get_u32_le() as usize;
            need(&buf, entries * 12)?;
            let mut table = RoutingTable::new();
            for _ in 0..entries {
                let k = Key(buf.get_u64_le());
                let d = TaskId(buf.get_u32_le());
                table.insert(k, d);
            }
            Ok(RoutingView::TablePlusHash { table, n_tasks })
        }
        VIEW_TWO_CHOICE => {
            need(&buf, 4)?;
            Ok(RoutingView::TwoChoice {
                n_tasks: buf.get_u32_le() as usize,
            })
        }
        VIEW_ROUND_ROBIN => {
            need(&buf, 4)?;
            Ok(RoutingView::RoundRobin {
                n_tasks: buf.get_u32_le() as usize,
            })
        }
        VIEW_TABLE_DELTA => {
            need(&buf, 8)?;
            let n_tasks = buf.get_u32_le() as usize;
            let n_moves = buf.get_u32_le() as usize;
            need(&buf, n_moves * 12)?;
            let mut moves = Vec::with_capacity(n_moves);
            for _ in 0..n_moves {
                let k = Key(buf.get_u64_le());
                let d = TaskId(buf.get_u32_le());
                moves.push((k, d));
            }
            Ok(RoutingView::TableDelta { n_tasks, moves })
        }
        VIEW_SPLIT_TABLE => {
            need(&buf, 8)?;
            let n_tasks = buf.get_u32_le() as usize;
            let entries = buf.get_u32_le() as usize;
            need(&buf, entries * 12)?;
            let mut table = RoutingTable::new();
            for _ in 0..entries {
                let k = Key(buf.get_u64_le());
                let d = TaskId(buf.get_u32_le());
                table.insert(k, d);
            }
            need(&buf, 4)?;
            let n_splits = buf.get_u32_le() as usize;
            let mut splits = Vec::with_capacity(n_splits.min(1024));
            for _ in 0..n_splits {
                need(&buf, 12)?;
                let k = Key(buf.get_u64_le());
                let n_replicas = buf.get_u32_le() as usize;
                need(&buf, n_replicas * 4)?;
                let mut replicas = Vec::with_capacity(n_replicas);
                for _ in 0..n_replicas {
                    replicas.push(TaskId(buf.get_u32_le()));
                }
                splits.push((k, replicas));
            }
            Ok(RoutingView::SplitTable {
                table,
                n_tasks,
                splits,
            })
        }
        other => Err(CodecError::BadTag(other)),
    }
}

/// Serializes a tuple batch — the wire form of one
/// [`crate::Message::TupleBatch`] channel send, for a transport that ships
/// the batched data plane between processes. Fixed 25 bytes per tuple
/// after the 5-byte header, so frames size predictably per batch.
pub fn encode_tuple_batch(batch: &[crate::Tuple]) -> Bytes {
    let mut buf = BytesMut::with_capacity(5 + batch.len() * 25);
    buf.put_u8(CODEC_VERSION);
    buf.put_u32_le(batch.len() as u32);
    for t in batch {
        buf.put_u64_le(t.key.raw());
        buf.put_u8(t.tag);
        buf.put_u64_le(t.vals[0]);
        buf.put_u64_le(t.vals[1]);
    }
    buf.freeze()
}

/// Deserializes a tuple batch into `out` (cleared first; reuse the buffer
/// across frames, like the in-process pool does). `emitted_us` is not on
/// the wire — the receiver stamps batches against its own clock, exactly
/// as the in-process source stamps once per staged batch.
pub fn decode_tuple_batch(mut buf: Bytes, out: &mut Vec<crate::Tuple>) -> Result<(), CodecError> {
    need(&buf, 5)?;
    let version = buf.get_u8();
    if version != CODEC_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let n = buf.get_u32_le() as usize;
    need(&buf, n * 25)?;
    out.clear();
    out.reserve(n);
    for _ in 0..n {
        let key = Key(buf.get_u64_le());
        let tag = buf.get_u8();
        let vals = [buf.get_u64_le(), buf.get_u64_le()];
        out.push(crate::Tuple::tagged(key, tag, vals));
    }
    Ok(())
}

/// Serializes a migration plan (step-3 broadcast payload).
pub fn encode_plan(plan: &MigrationPlan) -> Bytes {
    let mut buf = BytesMut::with_capacity(6 + plan.keys_moved() * 24);
    buf.put_u8(CODEC_VERSION);
    buf.put_u32_le(plan.keys_moved() as u32);
    for m in plan.moves() {
        buf.put_u64_le(m.key.raw());
        buf.put_u32_le(m.from.0);
        buf.put_u32_le(m.to.0);
        buf.put_u64_le(m.state_bytes);
    }
    buf.freeze()
}

/// Deserializes a migration plan.
pub fn decode_plan(mut buf: Bytes) -> Result<MigrationPlan, CodecError> {
    need(&buf, 5)?;
    let version = buf.get_u8();
    if version != CODEC_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let n = buf.get_u32_le() as usize;
    need(&buf, n * 24)?;
    let mut moves = Vec::with_capacity(n);
    for _ in 0..n {
        moves.push(Move {
            key: Key(buf.get_u64_le()),
            from: TaskId(buf.get_u32_le()),
            to: TaskId(buf.get_u32_le()),
            state_bytes: buf.get_u64_le(),
        });
    }
    Ok(MigrationPlan::from_moves(moves))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table(n: u64) -> RoutingTable {
        (0..n)
            .map(|k| (Key(k * 7), TaskId((k % 5) as u32)))
            .collect()
    }

    #[test]
    fn view_roundtrip_table_plus_hash() {
        let view = RoutingView::TablePlusHash {
            table: sample_table(100),
            n_tasks: 8,
        };
        let bytes = encode_view(&view);
        let decoded = decode_view(bytes).unwrap();
        match (view, decoded) {
            (
                RoutingView::TablePlusHash {
                    table: a,
                    n_tasks: na,
                },
                RoutingView::TablePlusHash {
                    table: b,
                    n_tasks: nb,
                },
            ) => {
                assert_eq!(na, nb);
                assert_eq!(a.sorted_entries(), b.sorted_entries());
            }
            _ => panic!("variant changed"),
        }
    }

    #[test]
    fn view_roundtrip_simple_variants() {
        for view in [
            RoutingView::TwoChoice { n_tasks: 12 },
            RoutingView::RoundRobin { n_tasks: 3 },
        ] {
            let decoded = decode_view(encode_view(&view)).unwrap();
            match (&view, &decoded) {
                (RoutingView::TwoChoice { n_tasks: a }, RoutingView::TwoChoice { n_tasks: b })
                | (
                    RoutingView::RoundRobin { n_tasks: a },
                    RoutingView::RoundRobin { n_tasks: b },
                ) => assert_eq!(a, b),
                _ => panic!("variant mismatch"),
            }
        }
    }

    #[test]
    fn view_roundtrip_table_delta() {
        let view = RoutingView::TableDelta {
            n_tasks: 6,
            moves: (0..40u64)
                .map(|i| (Key(i * 13), TaskId((i % 6) as u32)))
                .collect(),
        };
        let decoded = decode_view(encode_view(&view)).unwrap();
        match (view, decoded) {
            (
                RoutingView::TableDelta {
                    n_tasks: na,
                    moves: a,
                },
                RoutingView::TableDelta {
                    n_tasks: nb,
                    moves: b,
                },
            ) => {
                assert_eq!(na, nb);
                assert_eq!(a, b, "move order is part of delta semantics");
            }
            _ => panic!("variant changed"),
        }
    }

    #[test]
    fn view_roundtrip_split_table() {
        let view = RoutingView::SplitTable {
            table: sample_table(20),
            n_tasks: 5,
            splits: vec![
                (Key(3), vec![TaskId(0), TaskId(2)]),
                (Key(14), vec![TaskId(1), TaskId(3), TaskId(4)]),
            ],
        };
        let bytes = encode_view(&view);
        let decoded = decode_view(bytes.clone()).unwrap();
        match (view, decoded) {
            (
                RoutingView::SplitTable {
                    table: a,
                    n_tasks: na,
                    splits: sa,
                },
                RoutingView::SplitTable {
                    table: b,
                    n_tasks: nb,
                    splits: sb,
                },
            ) => {
                assert_eq!(na, nb);
                assert_eq!(a.sorted_entries(), b.sorted_entries());
                assert_eq!(sa, sb, "replica order is rotation order");
            }
            _ => panic!("variant changed"),
        }
        // Truncation detected at every byte boundary inside the split
        // section as well as the table section.
        for cut in [0, 1, 3, 10, bytes.len() - 20, bytes.len() - 1] {
            assert_eq!(
                decode_view(bytes.slice(0..cut)).unwrap_err(),
                CodecError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn plan_roundtrip() {
        let plan = MigrationPlan::from_moves((0..50u64).map(|i| Move {
            key: Key(i),
            from: TaskId((i % 3) as u32),
            to: TaskId(((i + 1) % 3) as u32),
            state_bytes: i * 100,
        }));
        let decoded = decode_plan(encode_plan(&plan)).unwrap();
        assert_eq!(plan, decoded);
        assert_eq!(decoded.cost_bytes(), plan.cost_bytes());
    }

    #[test]
    fn empty_plan_roundtrip() {
        let decoded = decode_plan(encode_plan(&MigrationPlan::empty())).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn tuple_batch_roundtrip() {
        use crate::tuple::{Tuple, TAG_LEFT};
        let batch: Vec<Tuple> = (0..100u64)
            .map(|i| Tuple::tagged(Key(i * 3), TAG_LEFT, [i, i * i]))
            .collect();
        let bytes = encode_tuple_batch(&batch);
        assert_eq!(bytes.len(), 5 + batch.len() * 25);
        let mut out = vec![Tuple::keyed(Key(999))]; // must be cleared
        decode_tuple_batch(bytes.clone(), &mut out).unwrap();
        assert_eq!(out, batch);
        // Truncation detected mid-batch.
        assert_eq!(
            decode_tuple_batch(bytes.slice(0..bytes.len() - 1), &mut out),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode_view(&RoutingView::TablePlusHash {
            table: sample_table(10),
            n_tasks: 4,
        });
        for cut in [0, 1, 3, bytes.len() - 1] {
            let err = decode_view(bytes.slice(0..cut)).unwrap_err();
            assert_eq!(err, CodecError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn bad_version_and_tag_detected() {
        let mut raw = BytesMut::new();
        raw.put_u8(99);
        raw.put_u8(VIEW_ROUND_ROBIN);
        raw.put_u32_le(1);
        assert_eq!(
            decode_view(raw.freeze()).unwrap_err(),
            CodecError::BadVersion(99)
        );
        let mut raw = BytesMut::new();
        raw.put_u8(CODEC_VERSION);
        raw.put_u8(77);
        raw.put_u32_le(1);
        assert_eq!(
            decode_view(raw.freeze()).unwrap_err(),
            CodecError::BadTag(77)
        );
    }

    #[test]
    fn encoded_size_is_compact() {
        // 3000 entries (the paper's Amax default) must fit in ~36 KB —
        // trivially broadcastable each rebalance.
        let view = RoutingView::TablePlusHash {
            table: sample_table(3_000),
            n_tasks: 10,
        };
        let bytes = encode_view(&view);
        assert!(bytes.len() <= 3_000 * 12 + 16, "size {}", bytes.len());
    }

    #[test]
    fn error_display() {
        assert!(CodecError::Truncated.to_string().contains("truncated"));
        assert!(CodecError::BadVersion(9).to_string().contains('9'));
    }
}
