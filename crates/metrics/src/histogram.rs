//! Log-bucketed histogram for latency recording.
//!
//! Values (e.g. per-tuple latency in microseconds) are binned into buckets
//! whose width grows geometrically: bucket `b` covers
//! `[2^(b/GRADE), 2^((b+1)/GRADE))` with `GRADE` sub-divisions per octave.
//! This bounds relative quantile error to about `2^(1/GRADE) - 1` (≈ 9% at
//! `GRADE = 8`) with a few hundred buckets across nine decades, the same
//! trade HDR histograms make.

/// Sub-divisions per power of two. 8 gives ≤ ~12.5% relative error.
const GRADE: u32 = 8;
/// Number of buckets: exact buckets below 16, then 8 per octave up to
/// `u64::MAX` (top exponent 63 → index 63·8 + 7 − 16 = 495).
const BUCKETS: usize = 496;

/// A fixed-footprint histogram over `u64` values.
///
/// Recording is `O(1)`; quantile queries scan the bucket array. Not
/// thread-safe by itself — each task records into its own histogram and the
/// collector merges them (see [`Histogram::merge`]), which avoids hot-path
/// contention entirely.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Total number of buckets; `bucket_of` returns indices in
    /// `0..BUCKET_COUNT` and `bucket_value` accepts exactly that range.
    pub const BUCKET_COUNT: usize = BUCKETS;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new([0u64; BUCKETS]),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of `value`. Monotone in `value`, and
    /// `bucket_value(bucket_of(v)) ≤ v` for every `v` (the property tests
    /// in `tests/prop_metrics.rs` pin both across the exact/geometric
    /// boundary). Public for those tests and for external bucket-level
    /// consumers; recording should go through [`Histogram::record`].
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        // Values below 2·GRADE get exact buckets; above, the bucket is the
        // exponent octave refined by the three bits following the MSB.
        if value < 2 * GRADE as u64 {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros();
        let sub = ((value >> (exp - 3)) & 0x7) as u32;
        (exp * GRADE + sub - 2 * GRADE) as usize
    }

    /// Lower-bound value of bucket `b` (exact for the small-value buckets).
    pub fn bucket_value(b: usize) -> u64 {
        if b < 2 * GRADE as usize {
            return b as u64;
        }
        let idx = b as u32 + 2 * GRADE;
        let exp = idx / GRADE;
        let sub = (idx % GRADE) as u64;
        (1u64 << exp) + sub * (1u64 << (exp - 3))
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    #[inline]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact arithmetic mean of recorded values (not bucketed).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile `q ∈ [0,1]`; returns 0 when empty.
    ///
    /// The true quantile lies within one bucket width (≈ 9% relative) of
    /// the returned value, except at the extremes where exact `min`/`max`
    /// are returned.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q * self.total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one (used by the collector to
    /// combine per-task histograms).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all recorded values.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn exact_small_values() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.mean(), 25.0);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for &(q, expect) in &[(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(
                rel < 0.15,
                "q={q}: got {got}, want ≈{expect} (rel {rel:.3})"
            );
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 100_000);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=500u64 {
            a.record(v);
        }
        for v in 501..=1000u64 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 1000);
        let med = a.quantile(0.5) as f64;
        assert!((med - 500.0).abs() / 500.0 < 0.15, "median {med}");
    }

    #[test]
    fn reset_clears() {
        let mut h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn huge_values_clamp_into_last_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), u64::MAX);
        // Quantile is clamped to observed max.
        assert_eq!(h.quantile(0.5), u64::MAX);
    }

    #[test]
    fn bucket_monotone() {
        let mut prev = 0;
        for v in (0..1_000_000u64).step_by(997) {
            let b = Histogram::bucket_of(v);
            assert!(b >= prev || v == 0, "bucket not monotone at {v}");
            prev = b;
        }
    }
}
