//! The elasticity hook behaves identically across drivers: a decision
//! trace planned in the simulator (`run_sim_elastic`) replays on the live
//! engine (`EngineConfig::elasticity`) `ScaleEvent` for `ScaleEvent`.
//!
//! Two layers, split by what can be made deterministic on a one-core CI
//! box. The *policy* layer is pinned in the simulator, which observes
//! exact interval statistics: the threshold policy must produce exactly
//! the expected out/in trace on the burst workload. The *execution*
//! layer is pinned in the engine with the sim's trace replayed as a
//! `FixedSchedule`: schedule decisions depend only on interval numbers —
//! which the stats rounds carry exactly, however the OS scheduler blurs
//! *which tuples* each round observes — so the engine must emit the
//! byte-identical event sequence, proving the hook, clamping, victim
//! selection, and event recording agree across drivers. (Asserting the
//! engine's *load-driven* trace instead would be inherently flaky here:
//! with every thread time-sharing one core, a descheduled controller can
//! collapse whole intervals into one statistics round, and no watermark
//! margin survives a 2× total-load distortion. The engine's load-driven
//! behaviour is covered by its own tests with order-robust assertions.)

use streambal::baselines::CoreBalancer;
use streambal::core::{BalanceParams, IntervalStats, RebalanceStrategy};
use streambal::elastic::{
    BackpressurePolicy, FixedSchedule, FixedSplitSchedule, HoldPolicy, HotKeyPolicy, ScaleDecision,
    ScaleEvent, SplitDecision, SplitEvent, ThresholdPolicy,
};
use streambal::prelude::Key;
use streambal::runtime::{Engine, EngineConfig, Tuple, WordCountOp};
use streambal::sim::source::ReplaySource;
use streambal::sim::{
    run_sim_elastic, run_sim_elastic_queued, run_sim_elastic_split, QueueModel, SimConfig,
};

const N_TASKS: usize = 3;
const MAX_TASKS: usize = 4;
const SPIN: u32 = 10; // per-tuple cost = SPIN + 1 = 11, in both drivers
const QUIET: u64 = 4_000; // tuples per quiet interval
const KEYS: u64 = 500;

/// Interval tuple sequences: 2 quiet, 2 at 4× burst, 3 quiet.
fn intervals() -> Vec<Vec<Key>> {
    [1u64, 1, 4, 4, 1, 1, 1]
        .iter()
        .map(|&m| (0..QUIET * m).map(|i| Key(i % KEYS)).collect())
        .collect()
}

/// The same policy for both drivers: budget ≈ 0.7·L where L is the quiet
/// interval's total cost — quiet holds at 3 tasks, the burst scales out,
/// the quiet tail scales back in. `down_after = 2` is load-bearing for
/// determinism: a control-plane pause spanning a stats-round boundary can
/// deflate one round's observed load (its tuples land in the next round),
/// and requiring two consecutive low rounds means a single distorted
/// round can never fire a spurious scale-in.
fn policy() -> ThresholdPolicy {
    let quiet_load = QUIET as f64 * (SPIN + 1) as f64;
    let mut p = ThresholdPolicy::new(1.08 * 0.7 * quiet_load, 2, MAX_TASKS);
    p.up_after = 1;
    p.down_after = 2;
    p.cooldown = 1;
    p
}

/// θmax is set far above any observable imbalance so the rebalancer never
/// fires: this test isolates the elasticity trace, and a migration's own
/// pause window shifting tuples across round boundaries would add timing
/// noise to the observed loads.
fn partitioner() -> CoreBalancer {
    CoreBalancer::new(
        N_TASKS,
        100,
        RebalanceStrategy::Mixed,
        BalanceParams {
            theta_max: 5.0,
            ..BalanceParams::default()
        },
    )
}

/// The trace both drivers must produce: out after the first burst
/// interval (cooldown suppresses the second), in after two consecutive
/// quiet tail intervals (the cooldown then covers the run's remainder).
fn expected_trace() -> Vec<ScaleEvent> {
    vec![
        ScaleEvent {
            interval: 2,
            from: 3,
            to: 4,
        },
        ScaleEvent {
            interval: 5,
            from: 4,
            to: 3,
        },
    ]
}

#[test]
fn sim_plans_and_engine_replays_the_identical_trace() {
    let intervals = intervals();

    // --- simulator ----------------------------------------------------
    let stats: Vec<IntervalStats> = intervals
        .iter()
        .map(|keys| {
            let mut iv = IntervalStats::new();
            let mut freqs = vec![0u64; KEYS as usize];
            for k in keys {
                freqs[k.raw() as usize] += 1;
            }
            for (i, &f) in freqs.iter().enumerate() {
                if f > 0 {
                    iv.observe(Key(i as u64), f, f * (SPIN as u64 + 1), f * 8);
                }
            }
            iv
        })
        .collect();
    let mut src = ReplaySource::new(stats);
    let mut sim_policy = policy();
    let mut p = partitioner();
    let sim_report = run_sim_elastic(
        &mut p,
        &mut src,
        &SimConfig {
            n_tasks: N_TASKS,
            intervals: intervals.len(),
        },
        &mut sim_policy,
        MAX_TASKS,
    );

    // The policy layer is deterministic in the sim: exact stats in,
    // exact trace out.
    assert_eq!(sim_report.scale_events, expected_trace(), "sim trace");

    // --- engine: replay the sim's plan --------------------------------
    let schedule = FixedSchedule::new(sim_report.scale_events.iter().map(|e| {
        (
            e.interval,
            if e.to > e.from {
                ScaleDecision::ScaleOut
            } else {
                ScaleDecision::ScaleIn
            },
        )
    }));
    let feed = intervals.clone();
    let engine_report = Engine::run(
        EngineConfig {
            n_workers: N_TASKS,
            max_workers: MAX_TASKS,
            spin_work: SPIN,
            window: 100,
            elasticity: Box::new(schedule),
            ..EngineConfig::default()
        },
        Box::new(partitioner()),
        |_| Box::new(WordCountOp::new()),
        move |iv| {
            feed.get(iv as usize)
                .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
        },
        None,
    );

    assert_eq!(
        engine_report.scale_events, sim_report.scale_events,
        "engine replay diverged from the sim plan"
    );
    // And the engine run stayed lossless through the cycle.
    let total: u64 = intervals.iter().map(|v| v.len() as u64).sum();
    assert_eq!(engine_report.processed, total);
}

/// The queue-signal analogue of the trace-identity test above, for
/// [`BackpressurePolicy`]: the simulator plans from the *modeled* queue
/// proxy (per-task fluid backlog over a service rate, clamped at the
/// channel bound — the same `IntervalObservation::queue_depths` field the
/// engine fills from sampled channel occupancy), and the engine replays
/// that plan event-for-event. The policy layer is deterministic in the
/// sim (exact stats in, exact queue model, exact trace out); the engine
/// layer proves the hook, clamping, pre-placement spawn, and event
/// recording agree — `scale_events` must compare equal under `==`.
#[test]
fn backpressure_sim_plan_replays_identically_on_the_engine() {
    let intervals = intervals();

    // --- simulator: plan from the modeled queue signal ------------------
    let stats: Vec<IntervalStats> = intervals
        .iter()
        .map(|keys| {
            let mut iv = IntervalStats::new();
            let mut freqs = vec![0u64; KEYS as usize];
            for k in keys {
                freqs[k.raw() as usize] += 1;
            }
            for (i, &f) in freqs.iter().enumerate() {
                if f > 0 {
                    iv.observe(Key(i as u64), f, f * (SPIN as u64 + 1), f * 8);
                }
            }
            iv
        })
        .collect();
    let mut src = ReplaySource::new(stats);
    // Service 2000 tuples/task/interval: the quiet 4000 over 3 tasks
    // (≈ 1300/task) drains every interval; the 4× burst (≈ 5300/task)
    // leaves a standing backlog clamped at the channel bound, far above
    // the high watermark. After the burst the residue drains within two
    // quiet intervals, putting the total under the low watermark for the
    // two consecutive rounds `down_after` demands.
    let model = QueueModel {
        service_rate: 2_000.0,
        channel_capacity: 1_024,
        us_per_tuple: 50.0,
    };
    let mut policy = BackpressurePolicy::new(512, 16, N_TASKS, MAX_TASKS);
    policy.up_after = 1;
    policy.down_after = 2;
    policy.cooldown = 1;
    let mut p = partitioner();
    let sim_report = run_sim_elastic_queued(
        &mut p,
        &mut src,
        &SimConfig {
            n_tasks: N_TASKS,
            intervals: intervals.len(),
        },
        &mut policy,
        MAX_TASKS,
        model,
    );
    assert_eq!(
        sim_report.scale_events,
        vec![
            ScaleEvent {
                interval: 2,
                from: 3,
                to: 4,
            },
            ScaleEvent {
                interval: 6,
                from: 4,
                to: 3,
            },
        ],
        "sim backpressure trace"
    );

    // --- engine: replay the sim's plan ----------------------------------
    let schedule = FixedSchedule::new(sim_report.scale_events.iter().map(|e| {
        (
            e.interval,
            if e.to > e.from {
                ScaleDecision::ScaleOut
            } else {
                ScaleDecision::ScaleIn
            },
        )
    }));
    let feed = intervals.clone();
    let engine_report = Engine::run(
        EngineConfig {
            n_workers: N_TASKS,
            max_workers: MAX_TASKS,
            spin_work: SPIN,
            window: 100,
            elasticity: Box::new(schedule),
            ..EngineConfig::default()
        },
        Box::new(partitioner()),
        |_| Box::new(WordCountOp::new()),
        move |iv| {
            feed.get(iv as usize)
                .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
        },
        None,
    );
    assert_eq!(
        engine_report.scale_events, sim_report.scale_events,
        "engine replay diverged from the sim's backpressure plan"
    );
    let total: u64 = intervals.iter().map(|v| v.len() as u64).sum();
    assert_eq!(engine_report.processed, total);
    // The pre-placed scale-out worker actually absorbed traffic.
    assert!(
        engine_report.per_worker_processed[N_TASKS] > 0,
        "pre-placement left the scaled-out worker cold: {:?}",
        engine_report.per_worker_processed
    );
}

/// The split analogue of the scale-trace identity tests: the simulator
/// plans hot-key splits with [`HotKeyPolicy`] from exact per-key interval
/// costs (a dominant-key burst splits once, the cooled key consolidates
/// after `down_after` quiet rounds), and the engine replays that plan as
/// a [`FixedSplitSchedule`] — whose decisions depend only on interval
/// numbers, which the stats rounds carry exactly — so
/// `EngineReport::split_events` must equal the sim's trace under `==`,
/// proving the guards, replica-count choice, split/unsplit execution,
/// and event recording agree across drivers.
#[test]
fn split_sim_plan_replays_identically_on_the_engine() {
    const HOT: u64 = 500; // outside the background key range
    const BG_KEYS: u64 = 50;
    const BG_TUPLES: u64 = 2_000; // 40/key → cost 440/key, far below high
    const BURST: u64 = 4_000; // hot cost 44_000, far above high
    let intervals: Vec<Vec<Key>> = [0u64, 0, BURST, BURST, 0, 0, 0]
        .iter()
        .map(|&burst| {
            let mut v: Vec<Key> = (0..BG_TUPLES).map(|i| Key(i % BG_KEYS)).collect();
            v.extend((0..burst).map(|_| Key(HOT)));
            v
        })
        .collect();

    // --- simulator: plan the splits -------------------------------------
    let stats: Vec<IntervalStats> = intervals
        .iter()
        .map(|keys| {
            let mut iv = IntervalStats::new();
            let mut freqs = std::collections::HashMap::new();
            for k in keys {
                *freqs.entry(k.raw()).or_insert(0u64) += 1;
            }
            let mut sorted: Vec<_> = freqs.into_iter().collect();
            sorted.sort_unstable();
            for (k, f) in sorted {
                iv.observe(Key(k), f, f * (SPIN as u64 + 1), f * 8);
            }
            iv
        })
        .collect();
    let mut src = ReplaySource::new(stats);
    // budget = 21_600/1.08 = 20_000: high mark 18_000 sits between the
    // background per-key cost (440) and the burst key's (44_000), whose
    // ⌈44_000/18_000⌉ = 3 replicas exactly cover the 3 tasks.
    let mut hot = HotKeyPolicy::new(21_600.0);
    let mut p = partitioner();
    let sim_report = run_sim_elastic_split(
        &mut p,
        &mut src,
        &SimConfig {
            n_tasks: N_TASKS,
            intervals: intervals.len(),
        },
        &mut HoldPolicy,
        N_TASKS,
        QueueModel::none(),
        &mut hot,
    );
    assert_eq!(
        sim_report.split_events,
        vec![
            SplitEvent {
                interval: 2,
                key: HOT,
                from: 1,
                to: 3,
            },
            SplitEvent {
                interval: 5,
                key: HOT,
                from: 3,
                to: 1,
            },
        ],
        "sim split trace"
    );

    // --- engine: replay the sim's plan ----------------------------------
    let schedule = FixedSplitSchedule::new(sim_report.split_events.iter().map(|e| {
        (
            e.interval,
            if e.to > e.from {
                SplitDecision::Split {
                    key: e.key,
                    replicas: e.to,
                }
            } else {
                SplitDecision::Unsplit { key: e.key }
            },
        )
    }));
    let feed = intervals.clone();
    let engine_report = Engine::run(
        EngineConfig {
            n_workers: N_TASKS,
            spin_work: SPIN,
            window: 100,
            split: Some(Box::new(schedule)),
            ..EngineConfig::default()
        },
        Box::new(partitioner()),
        |_| Box::new(WordCountOp::new()),
        move |iv| {
            feed.get(iv as usize)
                .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
        },
        None,
    );
    assert_eq!(
        engine_report.split_events, sim_report.split_events,
        "engine replay diverged from the sim's split plan"
    );
    // Lossless through the split/unsplit cycle, replica merge included:
    // every hot tuple landed on some replica and each replica's partial
    // consolidated back onto the primary at unsplit.
    let total: u64 = intervals.iter().map(|v| v.len() as u64).sum();
    assert_eq!(engine_report.processed, total);
    let hot_count: u64 = engine_report
        .final_states
        .iter()
        .filter(|(k, _)| k.raw() == HOT)
        .map(|(_, blob)| {
            WordCountOp::decode(blob)
                .iter()
                .map(|&(_, c)| c)
                .sum::<u64>()
        })
        .sum();
    assert_eq!(hot_count, 2 * BURST, "merged hot-key count must be exact");
}

/// Worker-seconds accounting: an elastic run that spends part of its
/// life below the static peak must bill fewer worker-seconds than its
/// peak parallelism sustained for the same wall time would.
#[test]
fn elastic_run_bills_fewer_worker_seconds_than_static_peak() {
    let intervals = intervals();
    let feed = intervals.clone();
    let report = Engine::run(
        EngineConfig {
            n_workers: N_TASKS,
            max_workers: MAX_TASKS,
            // Small channels keep the stats rounds close to the interval
            // boundaries, so the policy sees the burst while it happens.
            channel_capacity: 64,
            batch_size: 32,
            spin_work: SPIN,
            window: 100,
            elasticity: Box::new(policy()),
            ..EngineConfig::default()
        },
        Box::new(partitioner()),
        |_| Box::new(WordCountOp::new()),
        move |iv| {
            feed.get(iv as usize)
                .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
        },
        None,
    );
    let wall = report.wall.as_secs_f64();
    assert!(
        report.worker_seconds < MAX_TASKS as f64 * wall,
        "elastic {} !< static peak {}",
        report.worker_seconds,
        MAX_TASKS as f64 * wall
    );
    assert!(
        report.worker_seconds >= N_TASKS as f64 * wall * 0.5,
        "integral implausibly small: {}",
        report.worker_seconds
    );
}
