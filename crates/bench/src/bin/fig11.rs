//! Regenerates the paper's Fig. 11 (see EXPERIMENTS.md): prints the text
//! tables and writes `bench_results/fig11.json`.
fn main() {
    let scale = streambal_bench::Scale::from_env();
    streambal_bench::figure::emit(&streambal_bench::fig11::fig11(scale), scale);
}
