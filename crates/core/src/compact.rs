//! The compact 6-dimensional statistics representation (paper §IV).
//!
//! Real key domains hold millions of keys; shipping and optimizing over
//! per-key statistics does not scale. The paper merges keys with common
//! characteristics into records `(d′, d, dₕ, v_c, v_S, #)`:
//!
//! * `d′` — the *next* destination being decided (nil while in the
//!   candidate set),
//! * `d`  — the current destination `F(k)`,
//! * `dₕ` — the hash destination `h(k)`,
//! * `v_c`, `v_S` — discretized computation cost and windowed memory,
//! * `#` — how many keys share all five values.
//!
//! The adapted Mixed algorithm then operates on records (moving *units*,
//! i.e. single keys within a record) instead of raw keys, shrinking the
//! working set from `|K|` to `O(N_D³ · |v_c| · |v_S|)`. At the end the
//! record-level decisions are *materialized* back to concrete keys using
//! the controller's full statistics (paper §IV-A Phase III), so the
//! emitted table and migration plan are exact — only the optimizer's view
//! is approximate, and Fig. 11b's load-estimation error stays under 1%.

use streambal_hashring::FxHashMap;

use crate::discretize::discretize;
use crate::key::{Key, TaskId};
use crate::rebalance::{outcome_from_assignment, BalanceParams, RebalanceInput, RebalanceOutcome};
use crate::stats::KeyRecord;

/// One compact record: a group of keys sharing `(d, dₕ, v_c, v_S)`.
///
/// `#` is `keys.len()`; `d′` lives in the optimizer's working state, not
/// here (a record's units can be split across several `d′` mid-run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactRecord {
    /// Current destination `d = F(k)` for all member keys.
    pub cur: TaskId,
    /// Hash destination `dₕ = h(k)` for all member keys.
    pub hash: TaskId,
    /// Discretized computation cost `v_c` per key.
    pub vc: u64,
    /// Discretized windowed memory `v_S` per key.
    pub vs: u64,
    /// The member keys (sorted).
    pub keys: Vec<Key>,
}

impl CompactRecord {
    /// Number of member keys (`#`).
    pub fn count(&self) -> usize {
        self.keys.len()
    }

    /// Migration priority `γ = v_c^β / v_S` of a unit of this record.
    pub fn gamma(&self, beta: f64) -> f64 {
        if self.vs == 0 {
            return f64::INFINITY;
        }
        (self.vc as f64).powf(beta) / self.vs as f64
    }
}

/// The compact view of one interval's statistics.
#[derive(Debug, Clone)]
pub struct CompactStats {
    /// The merged records, deterministically ordered.
    pub records: Vec<CompactRecord>,
    n_keys: usize,
}

impl CompactStats {
    /// Builds the compact view: discretizes costs and memories with degree
    /// `R = 2^r`, then merges keys by `(d, dₕ, v_c, v_S)`.
    pub fn build(records: &[KeyRecord], r: u32) -> Self {
        let costs: Vec<u64> = records.iter().map(|k| k.cost).collect();
        let mems: Vec<u64> = records.iter().map(|k| k.mem).collect();
        let vc = discretize(&costs, r);
        let vs = discretize(&mems, r);
        let mut groups: FxHashMap<(TaskId, TaskId, u64, u64), Vec<Key>> = FxHashMap::default();
        for (i, k) in records.iter().enumerate() {
            groups
                .entry((k.current, k.hash_dest, vc[i], vs[i]))
                .or_default()
                .push(k.key);
        }
        let mut recs: Vec<CompactRecord> = groups
            .into_iter()
            .map(|((cur, hash, vc, vs), mut keys)| {
                keys.sort_unstable();
                CompactRecord {
                    cur,
                    hash,
                    vc,
                    vs,
                    keys,
                }
            })
            .collect();
        recs.sort_unstable_by_key(|r| (r.cur, r.hash, std::cmp::Reverse(r.vc), r.vs));
        CompactStats {
            records: recs,
            n_keys: records.len(),
        }
    }

    /// Number of compact records (the optimizer's working-set size).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when there are no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of underlying keys.
    pub fn n_keys(&self) -> usize {
        self.n_keys
    }

    /// Compression ratio `keys / records` (≥ 1).
    pub fn compression(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.n_keys as f64 / self.records.len() as f64
    }
}

/// Unit-level working state of the adapted algorithm: `units[r][d]` = how
/// many keys of record `r` are currently assigned to task `d`.
struct UnitState {
    units: Vec<Vec<u32>>,
    loads: Vec<u64>,
    n_tasks: usize,
}

impl UnitState {
    fn new(stats: &CompactStats, n_tasks: usize) -> Self {
        let mut units = vec![vec![0u32; n_tasks]; stats.records.len()];
        let mut loads = vec![0u64; n_tasks];
        for (r, rec) in stats.records.iter().enumerate() {
            units[r][rec.cur.index()] = rec.count() as u32;
            loads[rec.cur.index()] += rec.vc * rec.count() as u64;
        }
        UnitState {
            units,
            loads,
            n_tasks,
        }
    }

    fn move_units(&mut self, rec: usize, vc: u64, from: usize, to: usize, m: u32) {
        debug_assert!(self.units[rec][from] >= m);
        self.units[rec][from] -= m;
        self.units[rec][to] += m;
        self.loads[from] -= vc * m as u64;
        self.loads[to] += vc * m as u64;
    }
}

/// Result of an adapted compact-Mixed run.
#[derive(Debug, Clone)]
pub struct CompactOutcome {
    /// The exact materialized outcome (table, plan, true loads).
    pub outcome: RebalanceOutcome,
    /// Compact working-set size the optimizer saw.
    pub n_records: usize,
    /// The optimizer's *estimated* per-task loads (sums of `v_c`).
    pub est_loads: Vec<u64>,
    /// Mean relative load-estimation error across tasks
    /// (`|est − actual| / actual`, Fig. 11b's metric).
    pub estimation_error: f64,
    /// Time to build the compact view from per-key records. In the
    /// paper's deployment this happens at the *workers* during statistics
    /// collection (§IV: instances report 6-dim vectors), so it is not part
    /// of the controller's plan-generation latency.
    pub build_time: std::time::Duration,
    /// Controller-side plan time over the compact records — the Fig. 11a
    /// metric.
    pub solve_time: std::time::Duration,
    /// Time to materialize record-level decisions back to concrete keys.
    pub materialize_time: std::time::Duration,
}

/// Runs the adapted Mixed algorithm over the compact representation and
/// materializes an exact plan (paper §IV-A).
///
/// `r` is the discretization degree (`R = 2^r`).
pub fn compact_mixed(input: &RebalanceInput, params: &BalanceParams, r: u32) -> CompactOutcome {
    let t_build = std::time::Instant::now();
    let stats = CompactStats::build(&input.records, r);
    let build_time = t_build.elapsed();
    let t_solve = std::time::Instant::now();
    let n_tasks = input.n_tasks;

    // η order for Phase-I cleaning: table-entry records by smallest vs.
    let mut eta: Vec<usize> = (0..stats.records.len())
        .filter(|&i| stats.records[i].cur != stats.records[i].hash)
        .collect();
    eta.sort_unstable_by_key(|&i| (stats.records[i].vs, i));
    let total_table_units: u32 = eta.iter().map(|&i| stats.records[i].count() as u32).sum();

    let mut n = 0u32;
    let mut state;
    loop {
        state = run_trial(&stats, n_tasks, params, &eta, n);
        let table_units = table_size(&stats, &state);
        let over = table_units.saturating_sub(params.table_max);
        if over == 0 || n >= total_table_units {
            break;
        }
        n = (n + (over as u32).max(1)).min(total_table_units);
    }

    let solve_time = t_solve.elapsed();

    // Materialize record-level unit placement into concrete keys.
    let t_mat = std::time::Instant::now();
    let assign = materialize(&stats, &state, input);
    let outcome = outcome_from_assignment(input, &assign);
    let materialize_time = t_mat.elapsed();

    // Estimation error: optimizer loads (v_c sums) vs true loads.
    let est_loads = state.loads.clone();
    let mut err_sum = 0.0;
    let mut err_n = 0usize;
    for (&est, &actual) in est_loads.iter().zip(&outcome.loads.loads) {
        if actual > 0 {
            err_sum += (est as f64 - actual as f64).abs() / actual as f64;
            err_n += 1;
        }
    }
    CompactOutcome {
        outcome,
        n_records: stats.len(),
        est_loads,
        estimation_error: if err_n == 0 {
            0.0
        } else {
            err_sum / err_n as f64
        },
        build_time,
        solve_time,
        materialize_time,
    }
}

/// Number of keys whose working destination differs from their hash
/// destination (the table size this state implies).
fn table_size(stats: &CompactStats, state: &UnitState) -> usize {
    let mut n = 0usize;
    for (r, rec) in stats.records.iter().enumerate() {
        for d in 0..state.n_tasks {
            if d != rec.hash.index() {
                n += state.units[r][d] as usize;
            }
        }
    }
    n
}

/// One trial of the adapted Mixed: Phase I moves back `n` units (η order),
/// Phase II drains overloaded tasks (γ order), Phase III is record-level
/// LLFD.
fn run_trial(
    stats: &CompactStats,
    n_tasks: usize,
    params: &BalanceParams,
    eta: &[usize],
    n: u32,
) -> UnitState {
    let mut state = UnitState::new(stats, n_tasks);
    let total: u64 = state.loads.iter().sum();
    let mean = total as f64 / n_tasks as f64;
    let lmax = (1.0 + params.theta_max) * mean;

    // Phase I: move back n units, smallest-vs records first.
    let mut remaining = n;
    for &ri in eta {
        if remaining == 0 {
            break;
        }
        let rec = &stats.records[ri];
        let (from, to) = (rec.cur.index(), rec.hash.index());
        let have = state.units[ri][from];
        let m = have.min(remaining);
        if m > 0 {
            state.move_units(ri, rec.vc, from, to, m);
            remaining -= m;
        }
    }

    // Phase II: drain overloaded tasks in γ-descending order.
    // Candidate units per record.
    let mut pending = vec![0u32; stats.records.len()];
    let beta = params.beta;
    let mut gamma_order: Vec<usize> = (0..stats.records.len()).collect();
    gamma_order.sort_unstable_by(|&a, &b| {
        stats.records[b]
            .gamma(beta)
            .partial_cmp(&stats.records[a].gamma(beta))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cmp(&b))
    });
    for d in 0..n_tasks {
        for &ri in &gamma_order {
            if (state.loads[d] as f64) <= lmax {
                break;
            }
            let rec = &stats.records[ri];
            if rec.vc == 0 {
                continue; // zero-cost units cannot shed load
            }
            let have = state.units[ri][d];
            if have == 0 {
                continue;
            }
            let excess = state.loads[d] as f64 - lmax;
            let need = (excess / rec.vc as f64).ceil() as u32;
            let m = have.min(need.max(1));
            state.units[ri][d] -= m;
            state.loads[d] -= rec.vc * m as u64;
            pending[ri] += m;
        }
    }

    // Phase III: adapted LLFD. Process records in descending vc.
    let mut vc_order: Vec<usize> = (0..stats.records.len()).collect();
    vc_order.sort_unstable_by(|&a, &b| {
        stats.records[b]
            .vc
            .cmp(&stats.records[a].vc)
            .then_with(|| a.cmp(&b))
    });
    // Iterate to fixpoint: exchanges re-add pending units of smaller vc,
    // which are handled in later passes of this loop.
    let mut guard = 0usize;
    loop {
        guard += 1;
        let force = guard > 4 * stats.records.len() + 8;
        let mut any = false;
        for &ri in &vc_order {
            while pending[ri] > 0 {
                any = true;
                let rec = &stats.records[ri];
                place_units(
                    &mut state,
                    stats,
                    &mut pending,
                    ri,
                    rec.vc,
                    lmax,
                    beta,
                    force,
                );
            }
        }
        if !any {
            break;
        }
    }
    state
}

/// Places all pending units of record `ri`, batching under-`lmax` fits and
/// falling back to single-unit exchange, then force-placement.
#[allow(clippy::too_many_arguments)]
fn place_units(
    state: &mut UnitState,
    stats: &CompactStats,
    pending: &mut [u32],
    ri: usize,
    vc: u64,
    lmax: f64,
    beta: f64,
    force: bool,
) {
    let n_tasks = state.n_tasks;
    // Tasks in ascending load order.
    let mut order: Vec<usize> = (0..n_tasks).collect();
    order.sort_unstable_by_key(|&d| (state.loads[d], d));

    let u = pending[ri];
    debug_assert!(u > 0);

    if force {
        // Spread one unit at a time onto the least-loaded task.
        state.units[ri][order[0]] += 1;
        state.loads[order[0]] += vc;
        pending[ri] -= 1;
        return;
    }

    for &d in &order {
        let room = lmax - state.loads[d] as f64;
        let fit = if vc == 0 {
            u
        } else if room <= 0.0 {
            0
        } else {
            ((room / vc as f64).floor() as u64).min(u as u64) as u32
        };
        if fit >= 1 {
            state.units[ri][d] += fit;
            state.loads[d] += vc * fit as u64;
            pending[ri] -= fit;
            return;
        }
        // Exchange: evict strictly-cheaper units from d to make room, then
        // place as many units as the freed room allows (batched — a
        // per-unit loop would rescan the residents once per key).
        let need = state.loads[d] as f64 + vc as f64 - lmax;
        let mut resident: Vec<usize> = (0..stats.records.len())
            .filter(|&r| {
                state.units[r][d] > 0 && stats.records[r].vc < vc && stats.records[r].vc > 0
            })
            .collect();
        resident.sort_unstable_by(|&a, &b| {
            stats.records[b]
                .gamma(beta)
                .partial_cmp(&stats.records[a].gamma(beta))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(&b))
        });
        // Shed up to the amount that lets all `u` pending units in.
        let max_useful = need + (u as f64 - 1.0) * vc as f64;
        let mut shed = 0u64;
        let mut evictions: Vec<(usize, u32)> = Vec::new();
        for r in resident {
            if shed as f64 >= max_useful {
                break;
            }
            let rvc = stats.records[r].vc;
            let have = state.units[r][d] as u64;
            let want = (((max_useful - shed as f64) / rvc as f64).ceil() as u64).min(have);
            if want > 0 {
                evictions.push((r, want as u32));
                shed += rvc * want;
            }
        }
        if (shed as f64) >= need && need > 0.0 {
            for (r, m) in evictions {
                state.units[r][d] -= m;
                state.loads[d] -= stats.records[r].vc * m as u64;
                pending[r] += m;
            }
            // Place as many units as now fit (≥ 1 by construction).
            let room = lmax - state.loads[d] as f64;
            let m = ((room / vc as f64).floor() as u64).clamp(1, u as u64) as u32;
            state.units[ri][d] += m;
            state.loads[d] += vc * m as u64;
            pending[ri] -= m;
            return;
        }
    }
    // Nobody accepted: force one unit onto the least-loaded task.
    state.units[ri][order[0]] += 1;
    state.loads[order[0]] += vc;
    pending[ri] -= 1;
}

/// Materializes unit placement into a per-key assignment parallel to
/// `input.records` (paper §IV-A Phase III: pick concrete keys for each
/// record-level decision; keys staying on their current task are preferred
/// so migrations match the unit counts exactly).
fn materialize(stats: &CompactStats, state: &UnitState, input: &RebalanceInput) -> Vec<TaskId> {
    let mut by_key: FxHashMap<Key, TaskId> = FxHashMap::default();
    for (ri, rec) in stats.records.iter().enumerate() {
        let cur = rec.cur.index();
        let stay = state.units[ri][cur] as usize;
        // First `stay` keys keep their current task; the rest are dealt to
        // other tasks in id order. Keys are sorted, so this is
        // deterministic.
        let mut cursor = stay.min(rec.keys.len());
        for &k in &rec.keys[..cursor] {
            by_key.insert(k, rec.cur);
        }
        for d in 0..state.n_tasks {
            if d == cur {
                continue;
            }
            let m = state.units[ri][d] as usize;
            for &k in rec.keys.iter().skip(cursor).take(m) {
                by_key.insert(k, TaskId::from(d));
            }
            cursor += m;
        }
        debug_assert_eq!(cursor, rec.keys.len(), "unit counts must cover all keys");
    }
    input.records.iter().map(|r| by_key[&r.key]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::needs_rebalance;

    fn rec(key: u64, cost: u64, mem: u64, cur: u32, hash: u32) -> KeyRecord {
        KeyRecord {
            key: Key(key),
            cost,
            mem,
            current: TaskId(cur),
            hash_dest: TaskId(hash),
        }
    }

    fn skewed_input(n_keys: u64, n_tasks: usize) -> RebalanceInput {
        // All keys hashed "fairly" but task 0 given the hot head.
        let records: Vec<KeyRecord> = (0..n_keys)
            .map(|i| {
                let d = (i % n_tasks as u64) as u32;
                let cost = if i < n_keys / 20 { 100 } else { 2 };
                rec(i, cost, cost * 3, if i < n_keys / 20 { 0 } else { d }, d)
            })
            .collect();
        RebalanceInput { n_tasks, records }
    }

    #[test]
    fn build_groups_identical_keys() {
        let records = vec![
            rec(1, 10, 5, 0, 0),
            rec(2, 10, 5, 0, 0),
            rec(3, 10, 5, 1, 1),
            rec(4, 7, 5, 0, 0),
        ];
        let stats = CompactStats::build(&records, 0);
        // r=0 keeps values nearly exact; keys 1,2 merge; 3 differs by cur;
        // 4 differs by vc.
        assert_eq!(stats.n_keys(), 4);
        assert!(stats.len() <= 3, "got {} records", stats.len());
        let big = stats
            .records
            .iter()
            .find(|r| r.count() == 2)
            .expect("merged record");
        assert_eq!(big.keys, vec![Key(1), Key(2)]);
        assert!(stats.compression() >= 4.0 / 3.0);
    }

    #[test]
    fn coarser_discretization_merges_more() {
        let records: Vec<KeyRecord> = (0..2000)
            .map(|i| rec(i, 1 + i % 97, 1 + i % 53, 0, (i % 4) as u32))
            .collect();
        let fine = CompactStats::build(&records, 0).len();
        let coarse = CompactStats::build(&records, 5).len();
        assert!(
            coarse < fine,
            "coarse {coarse} should be smaller than fine {fine}"
        );
    }

    #[test]
    fn compact_mixed_balances_skewed_load() {
        let input = skewed_input(2000, 4);
        let before = input.current_loads();
        assert!(needs_rebalance(&before, 0.08));
        let out = compact_mixed(&input, &BalanceParams::default(), 2);
        assert!(
            out.outcome.achieved_theta < before.max_theta(),
            "θ {} → {}",
            before.max_theta(),
            out.outcome.achieved_theta
        );
        assert!(out.outcome.achieved_theta < 0.3);
        // The optimizer saw far fewer records than keys.
        assert!(out.n_records < input.records.len() / 4);
    }

    #[test]
    fn estimation_error_small_and_shrinks_with_finer_r() {
        let input = skewed_input(5000, 4);
        let fine = compact_mixed(&input, &BalanceParams::default(), 0);
        let coarse = compact_mixed(&input, &BalanceParams::default(), 6);
        // The paper reports < 1% error across R ∈ [1, 256]; allow 2%.
        assert!(
            fine.estimation_error < 0.02,
            "fine error {}",
            fine.estimation_error
        );
        assert!(
            coarse.estimation_error < 0.05,
            "coarse error {}",
            coarse.estimation_error
        );
    }

    #[test]
    fn materialized_plan_is_consistent() {
        let input = skewed_input(1000, 3);
        let out = compact_mixed(&input, &BalanceParams::default(), 2);
        // Every move's `from` equals the key's current task.
        for m in out.outcome.plan.moves() {
            let kr = input.records.iter().find(|r| r.key == m.key).unwrap();
            assert_eq!(m.from, kr.current);
            assert!(m.to.index() < input.n_tasks);
        }
        // Table entries never point at the hash destination.
        for (k, d) in out.outcome.table.iter() {
            let kr = input.records.iter().find(|r| r.key == k).unwrap();
            assert_ne!(d, kr.hash_dest);
        }
    }

    #[test]
    fn table_bound_enforced_via_cleaning() {
        // Start with many parked keys and a tight Amax.
        let records: Vec<KeyRecord> = (0..200)
            .map(|i| {
                let hash = (i % 2) as u32;
                let cur = 1 - hash; // every key parked off-hash
                rec(i, 4, 2, cur, hash)
            })
            .collect();
        let input = RebalanceInput {
            n_tasks: 2,
            records,
        };
        let params = BalanceParams {
            table_max: 10,
            theta_max: 0.05,
            beta: 1.5,
        };
        let out = compact_mixed(&input, &params, 1);
        assert!(
            out.outcome.table.len() <= 10,
            "table {} > Amax",
            out.outcome.table.len()
        );
        // Loads stay balanced (hash split is already even here).
        assert!(out.outcome.achieved_theta < 0.1);
    }

    #[test]
    fn empty_input() {
        let input = RebalanceInput {
            n_tasks: 2,
            records: vec![],
        };
        let out = compact_mixed(&input, &BalanceParams::default(), 2);
        assert!(out.outcome.plan.is_empty());
        assert_eq!(out.n_records, 0);
        assert_eq!(out.estimation_error, 0.0);
    }

    #[test]
    fn unit_conservation() {
        // After the adapted algorithm, each record's units must sum to its
        // key count — materialize() debug-asserts this; run it on a
        // non-trivial input under both loose and tight table bounds.
        for table_max in [usize::MAX, 5] {
            let input = skewed_input(600, 3);
            let params = BalanceParams {
                table_max,
                ..BalanceParams::default()
            };
            let out = compact_mixed(&input, &params, 3);
            // Materialization succeeded ⇒ conservation held; sanity-check
            // the assignment covers every key exactly once.
            let total_after: u64 = out.outcome.loads.loads.iter().sum();
            let total_before: u64 = input.records.iter().map(|r| r.cost).sum();
            assert_eq!(total_after, total_before);
        }
    }
}
