//! Criterion bench: HLHE greedy discretization vs naive nearest-value
//! rounding (the Fig. 6 mechanism) on realistic value populations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use streambal_core::discretize::{discretize, discretize_naive};
use streambal_hashring::mix64;

fn values(n: u64) -> Vec<u64> {
    (0..n)
        .map(|i| {
            let h = mix64(i);
            if h % 100 < 90 {
                1 + h % 16
            } else {
                64 + h % 4096
            }
        })
        .collect()
}

fn bench_discretize(c: &mut Criterion) {
    let mut group = c.benchmark_group("discretize");
    for n in [10_000u64, 100_000] {
        let vals = values(n);
        group.bench_with_input(BenchmarkId::new("hlhe_greedy", n), &vals, |b, v| {
            b.iter(|| discretize(v, 3))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &vals, |b, v| {
            b.iter(|| discretize_naive(v, 3))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_discretize);
criterion_main!(benches);
