//! Regenerates the paper's Fig. 17 (see EXPERIMENTS.md).
fn main() {
    let scale = streambal_bench::Scale::from_env();
    print!("{}", streambal_bench::figs_sim::fig17(scale));
}
