//! Migration plans and cost accounting (paper §II-A, Eq. 2).
//!
//! Replacing `F` with `F′` moves the keys in
//! `Δ(F, F′) = {k | F(k) ≠ F′(k)}`; each moved key drags its windowed state
//! `Sᵢ(k, w)` along, so the total migration cost is
//! `Mᵢ(w, F, F′) = Σ_{k ∈ Δ} Sᵢ(k, w)`.

use crate::key::{Key, TaskId};
use crate::stats::KeyRecord;

/// One key relocation within a migration plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// The key being reassigned.
    pub key: Key,
    /// Source task `F(k)`.
    pub from: TaskId,
    /// Destination task `F′(k)`.
    pub to: TaskId,
    /// State bytes that travel with the key (`Sᵢ(k, w)`).
    pub state_bytes: u64,
}

/// The full set of key moves produced by one rebalance decision — the
/// artifact the controller broadcasts in step 3 of the Fig. 5 protocol.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MigrationPlan {
    moves: Vec<Move>,
}

impl MigrationPlan {
    /// An empty (no-op) plan.
    pub fn empty() -> Self {
        MigrationPlan::default()
    }

    /// Builds a plan from moves, dropping degenerate `from == to` entries.
    pub fn from_moves(moves: impl IntoIterator<Item = Move>) -> Self {
        let mut v: Vec<Move> = moves.into_iter().filter(|m| m.from != m.to).collect();
        v.sort_unstable_by_key(|m| m.key);
        MigrationPlan { moves: v }
    }

    /// The moves, sorted by key.
    pub fn moves(&self) -> &[Move] {
        &self.moves
    }

    /// Number of keys that change destination, `|Δ(F, F′)|`.
    pub fn keys_moved(&self) -> usize {
        self.moves.len()
    }

    /// Total migration cost `Mᵢ(w, F, F′)` in state bytes (Eq. 2).
    pub fn cost_bytes(&self) -> u64 {
        self.moves.iter().map(|m| m.state_bytes).sum()
    }

    /// True when nothing moves.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// The paper's *migration cost* report metric: the fraction of all
    /// maintained state that travels, `M / Σ_k S(k, w)` (reported as a
    /// percentage in Figs. 8b–12b, 17, 19, 21).
    pub fn cost_fraction(&self, total_state_bytes: u64) -> f64 {
        if total_state_bytes == 0 {
            return 0.0;
        }
        self.cost_bytes() as f64 / total_state_bytes as f64
    }

    /// Moves grouped by source task — what each downstream instance must
    /// extract and ship during step 5 of the protocol.
    pub fn moves_from(&self, task: TaskId) -> impl Iterator<Item = &Move> + '_ {
        self.moves.iter().filter(move |m| m.from == task)
    }

    /// Moves grouped by destination task.
    pub fn moves_to(&self, task: TaskId) -> impl Iterator<Item = &Move> + '_ {
        self.moves.iter().filter(move |m| m.to == task)
    }

    /// Splits the plan into rounds of at most `max_bytes` state each (a
    /// single over-sized key still gets its own round).
    ///
    /// The paper's protocol pauses every key in `Δ(F, F′)` at once; for
    /// very large plans that makes the pause window — and the buffered
    /// tuple volume — proportional to the whole migration. Executing the
    /// rounds sequentially (pause → migrate → resume per round) bounds
    /// both, at the cost of more controller round-trips. This is the "smooth
    /// workload redistribution" direction the paper's §VII names as
    /// future work.
    ///
    /// Heaviest keys ship first, so the most impactful state lands early.
    pub fn split_rounds(&self, max_bytes: u64) -> Vec<MigrationPlan> {
        if self.moves.is_empty() {
            return Vec::new();
        }
        let mut by_size: Vec<&Move> = self.moves.iter().collect();
        by_size.sort_unstable_by_key(|m| std::cmp::Reverse(m.state_bytes));
        let mut rounds: Vec<Vec<Move>> = Vec::new();
        let mut budgets: Vec<u64> = Vec::new();
        // First-fit decreasing into byte-bounded rounds.
        'outer: for m in by_size {
            for (round, budget) in rounds.iter_mut().zip(&mut budgets) {
                if *budget >= m.state_bytes {
                    round.push(*m);
                    *budget -= m.state_bytes;
                    continue 'outer;
                }
            }
            rounds.push(vec![*m]);
            budgets.push(max_bytes.saturating_sub(m.state_bytes));
        }
        rounds.into_iter().map(MigrationPlan::from_moves).collect()
    }
}

/// Computes `Δ(F, F′)` as a [`MigrationPlan`], given the records (carrying
/// `F` in `current`) and the new assignment `F′` as a lookup.
pub fn migration_delta(records: &[KeyRecord], new_assign: impl Fn(Key) -> TaskId) -> MigrationPlan {
    MigrationPlan::from_moves(records.iter().map(|r| Move {
        key: r.key,
        from: r.current,
        to: new_assign(r.key),
        state_bytes: r.mem,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(key: u64, from: u32, to: u32, bytes: u64) -> Move {
        Move {
            key: Key(key),
            from: TaskId(from),
            to: TaskId(to),
            state_bytes: bytes,
        }
    }

    #[test]
    fn degenerate_moves_dropped() {
        let p = MigrationPlan::from_moves([mv(1, 0, 0, 100), mv(2, 0, 1, 50)]);
        assert_eq!(p.keys_moved(), 1);
        assert_eq!(p.cost_bytes(), 50);
    }

    #[test]
    fn cost_fraction_of_total_state() {
        let p = MigrationPlan::from_moves([mv(1, 0, 1, 25), mv(2, 1, 0, 25)]);
        assert!((p.cost_fraction(200) - 0.25).abs() < 1e-12);
        assert_eq!(p.cost_fraction(0), 0.0);
    }

    #[test]
    fn grouping_by_endpoint() {
        let p = MigrationPlan::from_moves([mv(1, 0, 1, 1), mv(2, 0, 2, 1), mv(3, 1, 0, 1)]);
        assert_eq!(p.moves_from(TaskId(0)).count(), 2);
        assert_eq!(p.moves_to(TaskId(0)).count(), 1);
    }

    #[test]
    fn delta_from_records() {
        let records = vec![
            KeyRecord {
                key: Key(1),
                cost: 5,
                mem: 10,
                current: TaskId(0),
                hash_dest: TaskId(0),
            },
            KeyRecord {
                key: Key(2),
                cost: 5,
                mem: 20,
                current: TaskId(1),
                hash_dest: TaskId(1),
            },
        ];
        // New assignment swaps key 2 to task 0; key 1 stays on task 0.
        let plan = migration_delta(&records, |_| TaskId(0));
        assert_eq!(plan.keys_moved(), 1);
        assert_eq!(plan.moves()[0].key, Key(2));
        assert_eq!(plan.cost_bytes(), 20);
    }

    #[test]
    fn empty_plan() {
        let p = MigrationPlan::empty();
        assert!(p.is_empty());
        assert_eq!(p.cost_bytes(), 0);
        assert_eq!(p.keys_moved(), 0);
    }

    #[test]
    fn moves_sorted_by_key() {
        let p = MigrationPlan::from_moves([mv(9, 0, 1, 1), mv(2, 1, 0, 1), mv(5, 0, 2, 1)]);
        let keys: Vec<u64> = p.moves().iter().map(|m| m.key.raw()).collect();
        assert_eq!(keys, vec![2, 5, 9]);
    }

    #[test]
    fn split_rounds_respects_budget_and_covers_all() {
        let p = MigrationPlan::from_moves((0..20u64).map(|i| mv(i, 0, 1, 10 + i * 7)));
        let rounds = p.split_rounds(100);
        // Coverage: the union of rounds is the original plan.
        let mut all: Vec<Move> = rounds.iter().flat_map(|r| r.moves().to_vec()).collect();
        all.sort_unstable_by_key(|m| m.key);
        assert_eq!(all, p.moves());
        // Budget: no round above 100 bytes unless it is a single
        // oversized key.
        for r in &rounds {
            assert!(
                r.cost_bytes() <= 100 || r.keys_moved() == 1,
                "round at {} bytes with {} keys",
                r.cost_bytes(),
                r.keys_moved()
            );
        }
        assert!(rounds.len() > 1, "must actually split");
    }

    #[test]
    fn split_rounds_single_oversized_key() {
        let p = MigrationPlan::from_moves([mv(1, 0, 1, 1_000), mv(2, 0, 1, 5)]);
        let rounds = p.split_rounds(100);
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].cost_bytes(), 1_000, "oversized key alone");
        assert_eq!(rounds[1].cost_bytes(), 5);
    }

    #[test]
    fn split_rounds_empty_and_roomy() {
        assert!(MigrationPlan::empty().split_rounds(10).is_empty());
        let p = MigrationPlan::from_moves([mv(1, 0, 1, 5), mv(2, 0, 1, 5)]);
        let rounds = p.split_rounds(1_000);
        assert_eq!(rounds.len(), 1, "everything fits in one round");
        assert_eq!(rounds[0].keys_moved(), 2);
    }
}
