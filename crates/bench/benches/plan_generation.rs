//! Criterion bench: rebalance-plan construction latency — the paper's
//! "average generation time" metric (Figs. 8a/9a/10a/12a) measured
//! precisely for each algorithm on a fixed skewed input.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use streambal_baselines::readj_rebalance;
use streambal_baselines::ReadjConfig;
use streambal_bench::fig11::skewed_input;
use streambal_bench::{Defaults, Scale};
use streambal_core::{rebalance, RebalanceStrategy};

fn bench_plans(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_generation");
    group.sample_size(10);
    for k in [5_000usize, 20_000] {
        let mut d = Defaults::at(Scale::Quick);
        d.k = k;
        d.tuples = (k * 10) as u64;
        let input = skewed_input(&d);
        let params = d.params();
        for strategy in [
            RebalanceStrategy::Mixed,
            RebalanceStrategy::MinTable,
            RebalanceStrategy::MinMig,
        ] {
            group.bench_with_input(BenchmarkId::new(strategy.name(), k), &input, |b, input| {
                b.iter(|| rebalance(input, strategy, &params))
            });
        }
        let readj_cfg = ReadjConfig {
            theta_max: d.theta_max,
            sigma: 0.02,
            max_actions: 256,
        };
        group.bench_with_input(BenchmarkId::new("Readj", k), &input, |b, input| {
            b.iter(|| readj_rebalance(&input.records, input.n_tasks, &readj_cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plans);
criterion_main!(benches);
