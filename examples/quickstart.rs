//! Quickstart: the core rebalancing loop in ~60 lines.
//!
//! Builds a [`Rebalancer`] (the paper's controller component), feeds it a
//! skewed interval of key statistics, and shows the produced routing
//! table and migration plan.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use streambal::prelude::*;
use streambal::core::IntervalStats;

fn main() {
    // An operator with 4 downstream task instances, keeping 2 intervals
    // of state, rebalanced by the paper's Mixed algorithm.
    let mut rebalancer = Rebalancer::new(
        4,
        2,
        RebalanceStrategy::Mixed,
        BalanceParams {
            theta_max: 0.08, // tolerate 8% deviation from the mean load
            beta: 1.5,       // γ = c^β / S migration priority
            table_max: 100,  // at most 100 explicit routing entries
        },
    );

    // Simulate one interval of measurements: 1000 keys, Zipf-ish skew —
    // the first keys are disproportionately hot.
    let mut stats = IntervalStats::new();
    for k in 0..1000u64 {
        let freq = 2000 / (k + 1); // heavy head, long tail
        let cost = freq; // CPU units
        let state = freq * 8; // bytes written
        stats.observe(Key(k), freq, cost, state);
    }

    // Check the imbalance hashing alone produces.
    {
        let mut probe = IntervalStats::new();
        probe.merge(&stats);
        // (end_interval ingests the stats and decides)
        let before = {
            let mut loads = vec![0u64; 4];
            for (k, s) in probe.iter() {
                loads[rebalancer.route(k).index()] += s.cost;
            }
            streambal::core::LoadSummary::new(loads)
        };
        println!("before: per-task loads {:?}", before.loads);
        println!("before: max θ = {:.3}  (bound {:.3})", before.max_theta(), 0.08);
    }

    // End the interval: the controller triggers and constructs F′.
    let outcome = rebalancer
        .end_interval(stats)
        .expect("skew above θmax must trigger a rebalance");

    println!("\nrebalance fired:");
    println!("  routing table entries : {}", outcome.table.len());
    println!("  keys migrated         : {}", outcome.plan.keys_moved());
    println!(
        "  state moved           : {} bytes ({:.1}% of all state)",
        outcome.plan.cost_bytes(),
        outcome.migration_fraction * 100.0
    );
    println!("  post-rebalance loads  : {:?}", outcome.loads.loads);
    println!("  post-rebalance max θ  : {:.3}", outcome.achieved_theta);

    // The first few explicit routes:
    println!("\nfirst routing-table entries:");
    for (k, d) in outcome.table.sorted_entries().into_iter().take(5) {
        println!("  {k} → {d}");
    }

    // Tuples now route through the updated table:
    let hot = Key(0);
    println!("\nhot key {hot} now routes to {}", rebalancer.route(hot));
}
