//! Partial Key Grouping (PKG) — Nasir et al., ICDE'15.
//!
//! Each key gets *two* candidate workers from independent hash functions;
//! every tuple goes to whichever candidate the router currently estimates
//! as less loaded (power of two choices). Key state is therefore split
//! across two workers:
//!
//! * aggregations need a downstream **merge** operator combining the two
//!   partial results per key (the runtime provides the partial/merge
//!   topology; the merge period `p` and max-pending bound are modelled
//!   there — the paper tuned `p = 10 ms`, max pending 50);
//! * joins are **not expressible** (`preserves_key_semantics() == false`),
//!   which is why PKG is absent from the paper's Fig. 14b/16.
//!
//! PKG never migrates: `end_interval` only decays the router's local load
//! estimates.

use streambal_core::{IntervalStats, Key, RebalanceOutcome, TaskId};
use streambal_hashring::two_choices;

use crate::{Partitioner, RoutingView};

/// Power-of-two-choices router with local load estimation.
#[derive(Debug)]
pub struct PkgPartitioner {
    n_tasks: usize,
    /// Tuples routed to each task in the current estimation window.
    est_load: Vec<u64>,
}

impl PkgPartitioner {
    /// Creates a PKG router over `n_tasks` instances.
    pub fn new(n_tasks: usize) -> Self {
        assert!(n_tasks > 0, "need at least one task");
        PkgPartitioner {
            n_tasks,
            est_load: vec![0; n_tasks],
        }
    }

    /// The two candidate workers of a key (exposed so the runtime's merge
    /// operator knows which partials to combine).
    pub fn choices(&self, key: Key) -> (TaskId, TaskId) {
        let (a, b) = two_choices(key.raw(), self.n_tasks);
        (TaskId::from(a), TaskId::from(b))
    }

    /// Current local load estimates (for tests/diagnostics).
    pub fn estimates(&self) -> &[u64] {
        &self.est_load
    }
}

impl Partitioner for PkgPartitioner {
    fn name(&self) -> String {
        "PKG".into()
    }

    fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    #[inline]
    fn route(&mut self, key: Key) -> TaskId {
        let (a, b) = two_choices(key.raw(), self.n_tasks);
        // Lesser-loaded choice; ties toward the first hash.
        let d = if self.est_load[a] <= self.est_load[b] {
            a
        } else {
            b
        };
        self.est_load[d] += 1;
        TaskId::from(d)
    }

    fn end_interval(&mut self, _stats: IntervalStats) -> Option<RebalanceOutcome> {
        // Halve (decay) the estimates so stale history fades but the
        // relative picture survives short gaps.
        for l in &mut self.est_load {
            *l /= 2;
        }
        None
    }

    fn add_task(&mut self) -> TaskId {
        self.n_tasks += 1;
        self.est_load.push(0);
        TaskId::from(self.n_tasks - 1)
    }

    fn scale_in(&mut self, victim: TaskId, _live: &[Key]) {
        assert!(self.n_tasks > 1, "cannot scale in below one task");
        assert_eq!(
            victim.index(),
            self.n_tasks - 1,
            "scale-in retires the highest-numbered task"
        );
        // PKG splits keys anyway: shrinking the choice space re-pairs
        // some keys, which is fine under partial/merge semantics.
        self.n_tasks -= 1;
        self.est_load.truncate(self.n_tasks);
    }

    fn routing_view(&self) -> RoutingView {
        RoutingView::TwoChoice {
            n_tasks: self.n_tasks,
        }
    }

    fn preserves_key_semantics(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_only_to_the_two_choices() {
        let mut p = PkgPartitioner::new(8);
        for k in 0..500u64 {
            let (a, b) = p.choices(Key(k));
            for _ in 0..10 {
                let d = p.route(Key(k));
                assert!(d == a || d == b, "key {k} routed off-choice");
            }
        }
    }

    #[test]
    fn balances_a_single_hot_key_across_two_workers() {
        let mut p = PkgPartitioner::new(4);
        let hot = Key(42);
        let (a, b) = p.choices(hot);
        let mut counts = [0u64; 4];
        for _ in 0..10_000 {
            counts[p.route(hot).index()] += 1;
        }
        // The hot key's tuples split ~50/50 between its two choices.
        assert_eq!(counts[a.index()] + counts[b.index()], 10_000);
        let ratio = counts[a.index()] as f64 / 10_000.0;
        assert!((0.45..=0.55).contains(&ratio), "split {ratio}");
    }

    #[test]
    fn beats_single_choice_hashing_under_skew() {
        // Zipf-ish: key i appears ~ 1/i times. Compare max load of PKG vs
        // single-hash.
        let n = 8usize;
        let mut pkg = PkgPartitioner::new(n);
        let mut hash_load = vec![0u64; n];
        let mut pkg_load = vec![0u64; n];
        for i in 1..=200u64 {
            let reps = 2000 / i;
            for _ in 0..reps {
                pkg_load[pkg.route(Key(i)).index()] += 1;
                let d = streambal_hashring::mix64(i) % n as u64;
                hash_load[d as usize] += 1;
            }
        }
        let max_pkg = *pkg_load.iter().max().unwrap();
        let max_hash = *hash_load.iter().max().unwrap();
        assert!(
            max_pkg < max_hash,
            "PKG max {max_pkg} should beat hash max {max_hash}"
        );
    }

    #[test]
    fn estimates_decay_at_interval() {
        let mut p = PkgPartitioner::new(2);
        for _ in 0..100 {
            p.route(Key(1));
        }
        let before: u64 = p.estimates().iter().sum();
        p.end_interval(IntervalStats::new());
        let after: u64 = p.estimates().iter().sum();
        assert_eq!(after, before / 2);
    }

    #[test]
    fn scale_out_extends_choices() {
        let mut p = PkgPartitioner::new(2);
        p.add_task();
        assert_eq!(p.n_tasks(), 3);
        for k in 0..100u64 {
            assert!(p.route(Key(k)).index() < 3);
        }
    }

    #[test]
    fn scale_in_shrinks_choices() {
        let mut p = PkgPartitioner::new(4);
        for k in 0..100u64 {
            p.route(Key(k));
        }
        p.scale_in(TaskId(3), &[]);
        assert_eq!(p.n_tasks(), 3);
        assert_eq!(p.estimates().len(), 3);
        for k in 0..500u64 {
            assert!(p.route(Key(k)).index() < 3, "routed to retired task");
        }
    }
}
