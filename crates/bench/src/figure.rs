//! Figure output model: every figure builds a [`Figure`] — a list of
//! labelled tables — which renders both the fixed-width text the
//! binaries print *and* the machine-readable JSON written under
//! `bench_results/figNN.json` through [`crate::json`]. One source of
//! truth, two renderings, so whole figure runs diff across PRs without
//! losing the human-readable console output.

use std::io;
use std::path::{Path, PathBuf};

use crate::json::{write_json, Json};
use crate::{header, row, Scale};

/// One labelled row of numbers.
#[derive(Debug, Clone)]
struct Row {
    label: String,
    values: Vec<f64>,
    /// Overrides the table precision (e.g. integer rows in a float
    /// table).
    precision: Option<usize>,
}

/// One table (title, column labels, numeric rows) of a figure.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    /// Corner label naming the row/column axes (e.g. `"ND \ percentile"`).
    corner: String,
    cols: Vec<String>,
    width: usize,
    precision: usize,
    rows: Vec<Row>,
    /// Free-form footnote lines (convergence bounds and the like).
    notes: Vec<String>,
}

impl Table {
    /// A new empty table; `width`/`precision` set the text rendering.
    pub fn new(
        title: impl Into<String>,
        corner: impl Into<String>,
        cols: Vec<String>,
        width: usize,
        precision: usize,
    ) -> Self {
        Table {
            title: title.into(),
            corner: corner.into(),
            cols,
            width,
            precision,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row at the table's default precision.
    pub fn row(&mut self, label: impl Into<String>, values: &[f64]) -> &mut Self {
        self.rows.push(Row {
            label: label.into(),
            values: values.to_vec(),
            precision: None,
        });
        self
    }

    /// Appends a row with its own text precision.
    pub fn row_prec(
        &mut self,
        label: impl Into<String>,
        values: &[f64],
        precision: usize,
    ) -> &mut Self {
        self.rows.push(Row {
            label: label.into(),
            values: values.to_vec(),
            precision: Some(precision),
        });
        self
    }

    /// Appends a footnote line.
    pub fn note(&mut self, line: impl Into<String>) -> &mut Self {
        self.notes.push(line.into());
        self
    }

    fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        out.push_str(&header(&self.corner, &self.cols, self.width));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&row(
                &r.label,
                &r.values,
                self.width,
                r.precision.unwrap_or(self.precision),
            ));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(n);
            out.push('\n');
        }
        out
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("title", Json::str(self.title.clone())),
            ("corner", Json::str(self.corner.clone())),
            (
                "cols",
                Json::Arr(self.cols.iter().map(|c| Json::str(c.clone())).collect()),
            ),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("label", Json::str(r.label.clone())),
                                (
                                    "values",
                                    Json::Arr(r.values.iter().map(|&v| Json::Num(v)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "notes",
                Json::Arr(self.notes.iter().map(|n| Json::str(n.clone())).collect()),
            ),
        ])
    }
}

/// A complete figure: named tables plus the scale it ran at.
#[derive(Debug, Clone)]
pub struct Figure {
    name: String,
    tables: Vec<Table>,
}

impl Figure {
    /// A new empty figure named like its binary (`"fig07"`).
    pub fn new(name: impl Into<String>) -> Self {
        Figure {
            name: name.into(),
            tables: Vec::new(),
        }
    }

    /// The figure's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a finished table.
    pub fn push(&mut self, table: Table) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// The fixed-width text rendering the binaries print.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&t.to_text());
        }
        out
    }

    /// The JSON document written under `bench_results/`.
    pub fn to_json(&self, scale: Scale) -> Json {
        Json::obj([
            ("figure", Json::str(self.name.clone())),
            (
                "scale",
                Json::str(match scale {
                    Scale::Quick => "quick",
                    Scale::Full => "full",
                }),
            ),
            (
                "tables",
                Json::Arr(self.tables.iter().map(|t| t.to_json()).collect()),
            ),
        ])
    }

    /// Writes `dir/<name>.json`; returns the path written.
    pub fn write_json(&self, dir: impl AsRef<Path>, scale: Scale) -> io::Result<PathBuf> {
        let path = dir.as_ref().join(format!("{}.json", self.name));
        write_json(&path, &self.to_json(scale))?;
        Ok(path)
    }
}

/// The workspace-root `bench_results/` directory, anchored at compile
/// time so figure binaries write the committed tree no matter which
/// directory `cargo run` is invoked from.
pub fn results_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench_results"))
}

/// The workspace-root `traces/` directory: committed flight-recorder
/// artifacts (`*.trace.jsonl` + Chrome `*.trace.json`), kept separate
/// from `bench_results/` so the closed-world tests over the metric files
/// never iterate trace exports.
pub fn traces_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../traces"))
}

/// Shared tail for the single-figure binaries: print the text rendering
/// and write `bench_results/<name>.json` at the workspace root.
pub fn emit(figure: &Figure, scale: Scale) {
    print!("{}", figure.to_text());
    match figure.write_json(results_dir(), scale) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}.json: {e}", figure.name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut f = Figure::new("fig99");
        let mut t = Table::new(
            "Fig 99: demo",
            "strategy",
            vec!["a".into(), "b".into()],
            8,
            2,
        );
        t.row("Mixed", &[1.5, 2.25]);
        t.row_prec("count", &[3.0, 4.0], 0);
        t.note("(a note)");
        f.push(t);
        f
    }

    #[test]
    fn text_matches_legacy_table_shape() {
        let text = sample().to_text();
        assert!(text.starts_with("# Fig 99: demo\n"));
        assert!(text.contains("Mixed"));
        assert!(text.contains("1.50"));
        assert!(text.contains("2.25"));
        assert!(text.contains("       3        4"), "integer precision row");
        assert!(text.ends_with("(a note)\n"));
    }

    #[test]
    fn json_carries_full_structure() {
        let json = sample().to_json(Scale::Quick);
        let rendered = json.to_pretty();
        assert!(rendered.contains("\"figure\": \"fig99\""));
        assert!(rendered.contains("\"scale\": \"quick\""));
        assert!(rendered.contains("\"label\": \"Mixed\""));
        assert!(rendered.contains("2.25"));
        assert!(rendered.contains("\"(a note)\""));
    }
}
