//! Value-generation strategies (no shrinking).

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn ranges_honour_bounds() {
        let mut rng = case_rng(0);
        for _ in 0..1_000 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = case_rng(1);
        let s = (1u32..5)
            .prop_map(|x| x * 10)
            .prop_flat_map(|x| Just(x + 1));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!([11, 21, 31, 41].contains(&v), "{v}");
        }
    }
}
