//! Cross-partitioner invariants: every routing strategy in the workspace
//! — the four baselines and the paper's four core strategies behind
//! `CoreBalancer` — must drive both the simulator (`run_sim`) and the
//! live engine (`Engine::run`) on the same workload.
//!
//! For the engine, correctness is checked end-to-end: strategies that
//! preserve key-grouping semantics must produce *exact* word counts in
//! worker state; key-splitting strategies (Shuffle, PKG) must produce
//! exact counts after the partial/merge collector. Either way, no tuple
//! may be lost or double-counted, migrations included.

use streambal::baselines::{
    CoreBalancer, HashPartitioner, PkgPartitioner, ReadjConfig, ReadjPartitioner,
    ShufflePartitioner,
};
use streambal::core::{BalanceParams, RebalanceStrategy};
use streambal::elastic::{FixedSchedule, FixedSplitSchedule};
use streambal::hashring::FxHashMap;
use streambal::prelude::{Key, Partitioner, TaskId};
use streambal::runtime::{Collector, Engine, EngineConfig, SumCollector, Tuple, WordCountOp};
use streambal::sim::source::ZipfSource;
use streambal::sim::{run_sim, SimConfig};
use streambal::workloads::FluctuatingWorkload;

/// Workload parameters shared by the sim and engine sides.
const N_TASKS: usize = 3;
const KEYS: usize = 400;
const ZIPF: f64 = 1.0;
const TUPLES: u64 = 6_000;
const FLUCTUATION: f64 = 0.6;
const SEED: u64 = 4242;
const INTERVALS: usize = 5;

/// Every partitioner under test, freshly constructed.
fn all_partitioners() -> Vec<Box<dyn Partitioner>> {
    let params = BalanceParams {
        theta_max: 0.05,
        ..BalanceParams::default()
    };
    let mut out: Vec<Box<dyn Partitioner>> = vec![
        Box::new(HashPartitioner::new(N_TASKS)),
        Box::new(ShufflePartitioner::new(N_TASKS)),
        Box::new(PkgPartitioner::new(N_TASKS)),
        Box::new(ReadjPartitioner::new(
            N_TASKS,
            100,
            ReadjConfig {
                theta_max: 0.05,
                sigma: 0.01,
                max_actions: 512,
            },
        )),
    ];
    for strategy in [
        RebalanceStrategy::Mixed,
        RebalanceStrategy::MinTable,
        RebalanceStrategy::MinMig,
        RebalanceStrategy::Simple,
    ] {
        out.push(Box::new(CoreBalancer::new(N_TASKS, 100, strategy, params)));
    }
    out
}

fn keyed_intervals() -> Vec<Vec<Key>> {
    let mut w = FluctuatingWorkload::new(KEYS, ZIPF, TUPLES, FLUCTUATION, SEED);
    (0..INTERVALS)
        .map(|i| {
            if i > 0 {
                w.advance(N_TASKS, |k| TaskId::from(k.raw() as usize % N_TASKS));
            }
            w.tuples()
        })
        .collect()
}

fn reference_counts(intervals: &[Vec<Key>]) -> FxHashMap<Key, u64> {
    let mut m = FxHashMap::default();
    for iv in intervals {
        for &k in iv {
            *m.entry(k).or_insert(0) += 1;
        }
    }
    m
}

/// Sim side: each partitioner completes the interval loop and reports one
/// θ sample per interval.
#[test]
fn every_partitioner_completes_a_sim_run() {
    let cfg = SimConfig {
        n_tasks: N_TASKS,
        intervals: INTERVALS,
    };
    for mut p in all_partitioners() {
        let name = p.name();
        let mut src = ZipfSource::new(KEYS, ZIPF, TUPLES, FLUCTUATION, SEED);
        let report = run_sim(p.as_mut(), &mut src, &cfg);
        assert_eq!(
            report.theta_series.len(),
            INTERVALS,
            "{name}: interval count"
        );
        assert!(
            report.mean_skewness() >= 1.0 - 1e-9,
            "{name}: skewness below 1: {}",
            report.mean_skewness()
        );
    }
}

/// The adaptive strategies must actually fire rebalances on this skewed,
/// fluctuating workload in the simulator (static ones must not).
#[test]
fn adaptive_strategies_rebalance_in_sim() {
    let cfg = SimConfig {
        n_tasks: N_TASKS,
        intervals: INTERVALS,
    };
    for mut p in all_partitioners() {
        let name = p.name();
        let mut src = ZipfSource::new(KEYS, ZIPF, TUPLES, FLUCTUATION, SEED);
        let report = run_sim(p.as_mut(), &mut src, &cfg);
        let adaptive = !matches!(name.as_str(), "Storm" | "Ideal" | "PKG");
        if adaptive {
            assert!(report.rebalances > 0, "{name}: expected rebalances");
        } else {
            assert_eq!(report.rebalances, 0, "{name}: static strategy rebalanced");
        }
    }
}

/// Migration consistency under the batched data plane, at maximal
/// stress: channels squeezed to 4 messages (every send blocks), a
/// skewed fluctuating workload forcing mid-run rebalances, and a
/// scale-out after interval 1 — across the seed per-tuple shape and
/// several batch sizes, including batches larger than the channel
/// capacity. Exact word counts prove no batch flush ever reorders
/// around a `MigrateOut`/`StateInstall`/`Shutdown` marker: a lost or
/// doubled tuple, or state extracted before its pre-pause tuples
/// landed, would show up as a count mismatch.
#[test]
fn tiny_channels_rebalance_and_scale_out_stay_exact() {
    let intervals = keyed_intervals();
    let expect = reference_counts(&intervals);
    let total: u64 = intervals.iter().map(|iv| iv.len() as u64).sum();
    for (per_tuple, batch_size) in [(true, 256), (false, 1), (false, 3), (false, 256)] {
        let label = if per_tuple {
            "per-tuple".to_string()
        } else {
            format!("batch={batch_size}")
        };
        let feed = intervals.clone();
        let report = Engine::run(
            EngineConfig {
                n_workers: N_TASKS,
                max_workers: N_TASKS + 1,
                channel_capacity: 4,
                collector_capacity: 2,
                batch_size,
                per_tuple,
                spin_work: 10,
                window: 100, // retain all state: exact count validation
                elasticity: Box::new(FixedSchedule::scale_out_at(1)),
                preplace: true,
                ..EngineConfig::default()
            },
            Box::new(CoreBalancer::new(
                N_TASKS,
                100,
                RebalanceStrategy::Mixed,
                BalanceParams {
                    theta_max: 0.05,
                    ..BalanceParams::default()
                },
            )),
            |_| Box::new(WordCountOp::new()),
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            None,
        );
        assert!(report.rebalances > 0, "{label}: skew must force rebalances");
        assert!(
            report.per_worker_processed[N_TASKS] > 0,
            "{label}: scale-out worker got no traffic: {:?}",
            report.per_worker_processed
        );
        assert_eq!(report.processed, total, "{label}: tuples lost/duplicated");
        // Sum duplicate keys: scale-out re-pins keys to the new worker
        // without moving their old state, so a key's count may be split
        // across two workers — the *sum* must still be exact.
        let mut got: FxHashMap<Key, u64> = FxHashMap::default();
        for (k, blob) in &report.final_states {
            let n: u64 = WordCountOp::decode(blob).iter().map(|&(_, c)| c).sum();
            *got.entry(*k).or_insert(0) += n;
        }
        assert_eq!(got, expect, "{label}: word counts diverged");
        assert!(
            report.protocol_errors.is_empty(),
            "{label}: protocol errors: {:?}",
            report.protocol_errors
        );
    }
}

/// A pre-placed scale-out across every partitioner, under maximal
/// stress: channels squeezed to 4 tuples, a skewed fluctuating workload,
/// one forced scale-out after interval 1, across the seed per-tuple
/// shape and batch sizes 3/256. Exact word counts prove the
/// plan → quiesce → install → resume window loses nothing: state
/// extracted before its pre-pause tuples landed, a tuple slipping to the
/// new worker before its key's state installed, or a pause-buffered
/// tuple lost in the flush would all surface as a count mismatch. And
/// the point of pre-placement — the new worker takes traffic instead of
/// idling — holds for *all* strategies: table-backed ones receive their
/// churned keys' state inside the scale-out window, key-oblivious and
/// key-splitting ones route to the new slot immediately.
#[test]
fn preplaced_scale_out_stays_exact_for_all_partitioners() {
    let intervals = keyed_intervals();
    let expect = reference_counts(&intervals);
    let total: u64 = intervals.iter().map(|iv| iv.len() as u64).sum();
    for (per_tuple, batch_size) in [(true, 256), (false, 3), (false, 256)] {
        for p in all_partitioners() {
            let name = p.name();
            let label = format!(
                "{name}/{}",
                if per_tuple {
                    "per-tuple".to_string()
                } else {
                    format!("batch={batch_size}")
                }
            );
            let preserves = p.preserves_key_semantics();
            let feed = intervals.clone();
            let report = Engine::run(
                EngineConfig {
                    n_workers: N_TASKS,
                    max_workers: N_TASKS + 1,
                    channel_capacity: 4,
                    collector_capacity: 2,
                    batch_size,
                    per_tuple,
                    spin_work: 10,
                    window: 100, // retain all state: exact count validation
                    elasticity: Box::new(FixedSchedule::scale_out_at(1)),
                    preplace: true,
                    ..EngineConfig::default()
                },
                p,
                |_| {
                    if preserves {
                        Box::new(WordCountOp::new())
                    } else {
                        Box::new(WordCountOp::with_partial_emission(8))
                    }
                },
                move |iv| {
                    feed.get(iv as usize)
                        .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
                },
                (!preserves).then(|| Box::new(SumCollector::new()) as Box<dyn Collector>),
            );
            assert_eq!(
                report
                    .scale_events
                    .iter()
                    .map(|e| (e.interval, e.from, e.to))
                    .collect::<Vec<_>>(),
                vec![(1, N_TASKS, N_TASKS + 1)],
                "{label}: scale-out not executed"
            );
            assert!(
                report.per_worker_processed[N_TASKS] > 0,
                "{label}: scaled-out worker stayed cold: {:?}",
                report.per_worker_processed
            );
            assert!(
                report.first_tuple_interval[N_TASKS].is_some(),
                "{label}: no first-tuple interval recorded for the new slot"
            );
            assert_eq!(report.processed, total, "{label}: tuples lost/duplicated");
            let got: FxHashMap<Key, u64> = if preserves {
                let mut m: FxHashMap<Key, u64> = FxHashMap::default();
                for (k, blob) in &report.final_states {
                    let n: u64 = WordCountOp::decode(blob).iter().map(|&(_, c)| c).sum();
                    *m.entry(*k).or_insert(0) += n;
                }
                m
            } else {
                report
                    .collector_result
                    .iter()
                    .map(|&(k, v)| (Key(k), v))
                    .collect()
            };
            assert_eq!(got, expect, "{label}: word counts diverged");
            assert!(
                report.protocol_errors.is_empty(),
                "{label}: protocol errors: {:?}",
                report.protocol_errors
            );
        }
    }
}

/// Scale-in across every partitioner, under maximal stress: a forced
/// scale-out → scale-in round trip mid-run (grow after interval 1, retire
/// after interval 3) with channels squeezed to 4 tuples, across the seed
/// per-tuple shape and batch sizes 1/3/256. Exact word counts prove the
/// drain → migrate → retire protocol loses nothing: a tuple dropped
/// around the victim's `Retire` marker, state extracted before its
/// pre-pause tuples landed, or a pause-buffered tuple overtaken by
/// `Shutdown` would all surface as a count mismatch. Counts are summed
/// per key across workers (scale-out pins keys without moving old state,
/// so a key's count may be legitimately split).
#[test]
fn scale_round_trip_stays_exact_for_all_partitioners() {
    let intervals = keyed_intervals();
    let expect = reference_counts(&intervals);
    let total: u64 = intervals.iter().map(|iv| iv.len() as u64).sum();
    for (per_tuple, batch_size) in [(true, 256), (false, 1), (false, 3), (false, 256)] {
        for p in all_partitioners() {
            let name = p.name();
            let label = format!(
                "{name}/{}",
                if per_tuple {
                    "per-tuple".to_string()
                } else {
                    format!("batch={batch_size}")
                }
            );
            let preserves = p.preserves_key_semantics();
            let feed = intervals.clone();
            let report = Engine::run(
                EngineConfig {
                    n_workers: N_TASKS,
                    max_workers: N_TASKS + 1,
                    channel_capacity: 4,
                    collector_capacity: 2,
                    batch_size,
                    per_tuple,
                    spin_work: 10,
                    window: 100, // retain all state: exact count validation
                    elasticity: Box::new(FixedSchedule::cycle(1, 3, 1)),
                    preplace: true,
                    ..EngineConfig::default()
                },
                p,
                |_| {
                    if preserves {
                        Box::new(WordCountOp::new())
                    } else {
                        Box::new(WordCountOp::with_partial_emission(8))
                    }
                },
                move |iv| {
                    feed.get(iv as usize)
                        .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
                },
                (!preserves).then(|| Box::new(SumCollector::new()) as Box<dyn Collector>),
            );
            // The cycle executed: up to N_TASKS+1 and back.
            assert_eq!(
                report
                    .scale_events
                    .iter()
                    .map(|e| (e.interval, e.from, e.to))
                    .collect::<Vec<_>>(),
                vec![(1, N_TASKS, N_TASKS + 1), (3, N_TASKS + 1, N_TASKS),],
                "{label}: cycle not executed"
            );
            assert_eq!(report.processed, total, "{label}: tuples lost/duplicated");
            let got: FxHashMap<Key, u64> = if preserves {
                let mut m: FxHashMap<Key, u64> = FxHashMap::default();
                for (k, blob) in &report.final_states {
                    let n: u64 = WordCountOp::decode(blob).iter().map(|&(_, c)| c).sum();
                    *m.entry(*k).or_insert(0) += n;
                }
                m
            } else {
                report
                    .collector_result
                    .iter()
                    .map(|&(k, v)| (Key(k), v))
                    .collect()
            };
            assert_eq!(got, expect, "{label}: word counts diverged");
            assert!(
                report.protocol_errors.is_empty(),
                "{label}: protocol errors: {:?}",
                report.protocol_errors
            );
        }
    }
}

/// A forced hot-key split/unsplit cycle mid-run across every
/// partitioner: the workload's hottest key is salted over all three
/// workers after interval 1 and consolidated after interval 3, under
/// both the per-tuple and a small-batch data-plane shape. Table-backed
/// strategies (Storm, Readj, the four `CoreBalancer` strategies) must
/// execute the cycle — one split event, one unsplit event, the key's
/// merged count exact after replica partials reunify on the primary.
/// Key-spreading strategies (Ideal, PKG) decline `split_key` by design
/// (they already spread every key), and the forced ops must no-op
/// without disturbing exactness.
#[test]
fn forced_split_cycle_stays_exact_for_all_partitioners() {
    let intervals = keyed_intervals();
    let expect = reference_counts(&intervals);
    let total: u64 = intervals.iter().map(|iv| iv.len() as u64).sum();
    // The workload's hottest key: the one whose split actually moves
    // replica traffic (ties broken low for determinism).
    let hot = expect
        .iter()
        .max_by_key(|&(k, &c)| (c, std::cmp::Reverse(k.raw())))
        .map(|(&k, _)| k)
        .expect("non-empty workload");
    for (per_tuple, batch_size) in [(true, 256), (false, 3)] {
        for p in all_partitioners() {
            let name = p.name();
            let label = format!(
                "{name}/{}",
                if per_tuple {
                    "per-tuple".to_string()
                } else {
                    format!("batch={batch_size}")
                }
            );
            let splittable = !matches!(name.as_str(), "Ideal" | "PKG");
            let preserves = p.preserves_key_semantics();
            let feed = intervals.clone();
            let report = Engine::run(
                EngineConfig {
                    n_workers: N_TASKS,
                    max_workers: N_TASKS,
                    channel_capacity: 4,
                    collector_capacity: 2,
                    batch_size,
                    per_tuple,
                    spin_work: 10,
                    window: 100, // retain all state: exact count validation
                    split: Some(Box::new(FixedSplitSchedule::cycle(
                        hot.raw(),
                        N_TASKS,
                        1,
                        3,
                    ))),
                    ..EngineConfig::default()
                },
                p,
                |_| {
                    if preserves {
                        Box::new(WordCountOp::new())
                    } else {
                        Box::new(WordCountOp::with_partial_emission(8))
                    }
                },
                move |iv| {
                    feed.get(iv as usize)
                        .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
                },
                (!preserves).then(|| Box::new(SumCollector::new()) as Box<dyn Collector>),
            );
            let events: Vec<(u64, u64, usize, usize)> = report
                .split_events
                .iter()
                .map(|e| (e.interval, e.key, e.from, e.to))
                .collect();
            if splittable {
                assert_eq!(
                    events,
                    vec![(1, hot.raw(), 1, N_TASKS), (3, hot.raw(), N_TASKS, 1)],
                    "{label}: forced split cycle not executed"
                );
            } else {
                assert_eq!(
                    events,
                    Vec::new(),
                    "{label}: key-spreading strategy must decline the split"
                );
            }
            assert_eq!(report.processed, total, "{label}: tuples lost/duplicated");
            let got: FxHashMap<Key, u64> = if preserves {
                let mut m: FxHashMap<Key, u64> = FxHashMap::default();
                for (k, blob) in &report.final_states {
                    let n: u64 = WordCountOp::decode(blob).iter().map(|&(_, c)| c).sum();
                    *m.entry(*k).or_insert(0) += n;
                }
                m
            } else {
                report
                    .collector_result
                    .iter()
                    .map(|&(k, v)| (Key(k), v))
                    .collect()
            };
            assert_eq!(got, expect, "{label}: word counts diverged");
            assert!(
                report.protocol_errors.is_empty(),
                "{label}: protocol errors: {:?}",
                report.protocol_errors
            );
        }
    }
}

/// Engine side: every partitioner processes the full input, and word
/// counts are exact — from worker state where key grouping holds, from
/// the partial/merge collector where it does not.
#[test]
fn engine_word_counts_exact_across_partitioners() {
    let intervals = keyed_intervals();
    let expect = reference_counts(&intervals);
    let total: u64 = intervals.iter().map(|iv| iv.len() as u64).sum();

    for p in all_partitioners() {
        let name = p.name();
        let preserves = p.preserves_key_semantics();
        let feed = intervals.clone();
        let report = Engine::run(
            EngineConfig {
                n_workers: N_TASKS,
                max_workers: N_TASKS,
                spin_work: 10,
                window: 100, // retain all state: exact count validation
                ..EngineConfig::default()
            },
            p,
            |_| {
                if preserves {
                    Box::new(WordCountOp::new())
                } else {
                    // Split keys need partial emission + a merge stage.
                    Box::new(WordCountOp::with_partial_emission(32))
                }
            },
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            (!preserves).then(|| Box::new(SumCollector::new()) as Box<dyn Collector>),
        );

        assert_eq!(report.processed, total, "{name}: tuples lost or duplicated");

        let got: FxHashMap<Key, u64> = if preserves {
            report
                .final_states
                .iter()
                .map(|(k, blob)| {
                    let n: u64 = WordCountOp::decode(blob).iter().map(|&(_, c)| c).sum();
                    (*k, n)
                })
                .collect()
        } else {
            report
                .collector_result
                .iter()
                .map(|&(k, v)| (Key(k), v))
                .collect()
        };
        assert_eq!(got, expect, "{name}: word counts diverged");
    }
}
