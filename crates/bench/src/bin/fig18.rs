//! Regenerates the paper's Fig. 18 (see EXPERIMENTS.md).
fn main() {
    let scale = streambal_bench::Scale::from_env();
    print!("{}", streambal_bench::figs_sim::fig18(scale));
}
