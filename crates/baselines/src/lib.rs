//! Baseline partitioners the paper compares against (§V / §VI).
//!
//! * [`HashPartitioner`] — static consistent hashing, i.e. vanilla Storm
//!   key grouping ("Storm" in the figures).
//! * [`ShufflePartitioner`] — key-oblivious round-robin, the "Ideal"
//!   throughput bound (unusable for stateful operators).
//! * [`PkgPartitioner`] — Partial Key Grouping [Nasir et al., ICDE'15]:
//!   power-of-two-choices routing that *splits* each key across two
//!   workers; needs a downstream merge operator for aggregations and
//!   cannot express joins.
//! * [`ReadjPartitioner`] — Gedik's partitioning-function rebalance
//!   [VLDBJ'14] ("Readj"): hash + explicit table like ours, but rebalanced
//!   by move-back plus exhaustive task/key pair move-and-swap search over
//!   hot keys, gated by the σ threshold.
//! * [`CoreBalancer`] — adapter putting `streambal-core`'s strategies
//!   (Mixed, MinTable, …) behind the same [`Partitioner`] trait so the
//!   simulator and runtime can swap strategies uniformly.
//!
//! All partitioners implement [`Partitioner`], the interface the
//! simulator (`streambal-sim`) and engine (`streambal-runtime`) drive.

pub mod core_wrapper;
pub mod hash_only;
pub mod pkg;
pub mod readj;
pub mod shuffle;

pub use core_wrapper::CoreBalancer;
pub use hash_only::HashPartitioner;
pub use pkg::PkgPartitioner;
pub use readj::{readj_rebalance, ReadjConfig, ReadjPartitioner};
pub use shuffle::ShufflePartitioner;

use streambal_core::{IntervalStats, Key, RebalanceOutcome, RoutingTable, TaskId};

/// A cheap, self-contained snapshot of a partitioner's routing function,
/// shippable to source threads (the engine's "tuples router" of Fig. 5
/// holds one of these and receives a fresh one on each Resume).
#[derive(Debug, Clone)]
pub enum RoutingView {
    /// Explicit table over a consistent-hash fallback (Eq. 1). The hash
    /// ring is reconstructed deterministically from `n_tasks`.
    TablePlusHash {
        /// The explicit entries.
        table: RoutingTable,
        /// Ring size.
        n_tasks: usize,
    },
    /// PKG's power-of-two-choices (the view carries no load state; each
    /// holder balances with its own local estimates, as PKG prescribes).
    TwoChoice {
        /// Slot count.
        n_tasks: usize,
    },
    /// Key-oblivious round-robin.
    RoundRobin {
        /// Slot count.
        n_tasks: usize,
    },
}

/// A pluggable tuple-routing strategy with an interval-boundary hook.
///
/// `route` is the per-tuple hot path (may mutate internal load estimates,
/// as PKG does). `end_interval` receives the statistics collected during
/// the closing interval and may return a rebalance outcome whose migration
/// plan the engine must then execute.
pub trait Partitioner: Send {
    /// Display name matching the paper's figure legends.
    fn name(&self) -> String;

    /// Current downstream parallelism.
    fn n_tasks(&self) -> usize;

    /// Routes one tuple.
    fn route(&mut self, key: Key) -> TaskId;

    /// Interval boundary: ingest stats, possibly rebalance.
    fn end_interval(&mut self, stats: IntervalStats) -> Option<RebalanceOutcome>;

    /// Adds a downstream instance (scale-out). Default: unsupported.
    fn add_task(&mut self) -> TaskId {
        unimplemented!("{} does not support scale-out", self.name())
    }

    /// State-placement-preserving scale-out: implementations that own a
    /// routing table pin hash-churned `live` keys to their old location so
    /// physical state placement stays truthful (see
    /// `Rebalancer::scale_out`). Default: plain [`Partitioner::add_task`].
    fn scale_out(&mut self, live: &[Key]) -> TaskId {
        let _ = live;
        self.add_task()
    }

    /// A shippable snapshot of the current routing function.
    fn routing_view(&self) -> RoutingView;

    /// Whether the strategy preserves key-grouping semantics (all tuples
    /// of a key on one worker). PKG does not — stateful aggregation then
    /// needs partial/merge topology support, and joins are impossible.
    fn preserves_key_semantics(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every baseline must route within range and be deterministic at the
    /// interval granularity (PKG may vary with load state, but stays in
    /// range).
    #[test]
    fn all_baselines_route_in_range() {
        let mut parts: Vec<Box<dyn Partitioner>> = vec![
            Box::new(HashPartitioner::new(5)),
            Box::new(ShufflePartitioner::new(5)),
            Box::new(PkgPartitioner::new(5)),
            Box::new(ReadjPartitioner::new(5, 2, ReadjConfig::default())),
        ];
        for p in parts.iter_mut() {
            for k in 0..1000u64 {
                let d = p.route(Key(k));
                assert!(d.index() < 5, "{} routed out of range", p.name());
            }
        }
    }

    #[test]
    fn key_semantics_flags() {
        assert!(HashPartitioner::new(2).preserves_key_semantics());
        assert!(!PkgPartitioner::new(2).preserves_key_semantics());
        assert!(ReadjPartitioner::new(2, 1, ReadjConfig::default()).preserves_key_semantics());
    }
}
