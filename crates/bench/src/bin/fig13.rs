//! Regenerates the paper's Fig. 13 (see EXPERIMENTS.md): prints the text
//! tables and writes `bench_results/fig13.json`.
fn main() {
    let scale = streambal_bench::Scale::from_env();
    streambal_bench::figure::emit(&streambal_bench::figs_runtime::fig13(scale), scale);
}
