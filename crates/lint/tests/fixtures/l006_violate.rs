// Fixture: an x86 intrinsic with no cfg(target_arch) gate.

pub fn warm(p: *const i8) {
    // SAFETY: fixture — prefetch has no architectural effect.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<0>(p);
    }
}
