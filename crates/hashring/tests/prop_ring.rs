//! Property-based tests for the consistent-hash ring and hashers.

use proptest::prelude::*;
use streambal_hashring::{mix64, two_choices, FxBuildHasher, HashRing};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Consistency under any scale-out sequence: growing the ring never
    /// moves a key between pre-existing slots.
    #[test]
    fn ring_consistency_under_growth(start in 1usize..6, grows in 1usize..4, keys in proptest::collection::vec(any::<u64>(), 1..100)) {
        let mut ring = HashRing::with_vnodes(start, 32);
        let mut owners: Vec<usize> = keys.iter().map(|&k| ring.slot_of(k)).collect();
        for _ in 0..grows {
            let new = ring.add_slot();
            for (i, &k) in keys.iter().enumerate() {
                let now = ring.slot_of(k);
                prop_assert!(
                    now == owners[i] || now == new,
                    "key {k} moved {} → {now}, not to new slot {new}",
                    owners[i]
                );
                owners[i] = now;
            }
        }
    }

    /// Ring lookups are pure: same key, same slot, in range.
    #[test]
    fn ring_lookup_pure(slots in 1usize..12, key in any::<u64>()) {
        let ring = HashRing::new(slots);
        let a = ring.slot_of(key);
        prop_assert!(a < slots);
        prop_assert_eq!(a, ring.slot_of(key));
    }

    /// mix64 is injective on arbitrary pairs (it is a bijection).
    #[test]
    fn mix64_injective(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(mix64(a), mix64(b));
    }

    /// two_choices always yields distinct in-range slots for n ≥ 2.
    #[test]
    fn two_choices_contract(key in any::<u64>(), n in 2usize..64) {
        let (x, y) = two_choices(key, n);
        prop_assert!(x < n && y < n);
        prop_assert_ne!(x, y);
    }

    /// The streaming hasher agrees with itself across split writes: the
    /// hash of `ab` fed at once equals `a` then `b` — byte-stream
    /// semantics, required for incremental hashing.
    #[test]
    fn hasher_is_stream_consistent(a in proptest::collection::vec(any::<u8>(), 0..32), b in proptest::collection::vec(any::<u8>(), 0..32)) {
        use std::hash::{BuildHasher, Hasher};
        let bh = FxBuildHasher::default();
        let mut whole = bh.build_hasher();
        let joined: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        whole.write(&joined);
        let mut split = bh.build_hasher();
        split.write(&a);
        split.write(&b);
        // NOTE: chunked multiply-xor hashing is *not* concat-consistent in
        // general (chunk boundaries differ); assert only that each is
        // deterministic. This documents the contract rather than
        // over-promising.
        let mut whole2 = bh.build_hasher();
        whole2.write(&joined);
        prop_assert_eq!(whole.finish(), whole2.finish());
        let mut split2 = bh.build_hasher();
        split2.write(&a);
        split2.write(&b);
        prop_assert_eq!(split.finish(), split2.finish());
    }
}
