//! Experiment harness: one entry point per figure of the paper's
//! evaluation (§V and appendix).
//!
//! Run a single figure with `cargo run -p streambal-bench --release --bin
//! fig08`, or everything with `--bin all` (which also writes the outputs
//! under `bench_results/`). Absolute numbers differ from the paper's
//! 21-node Storm cluster — the *shape* (who wins, by what factor, where
//! crossovers fall) is the reproduction target; see EXPERIMENTS.md.
//!
//! Two scales are supported via the `STREAMBAL_SCALE` environment
//! variable: `quick` (default; minutes, smaller key domains) and `full`
//! (closer to Tab. II's bold defaults).

pub mod direction;
pub mod fig11;
pub mod figs_runtime;
pub mod figs_sim;
pub mod figure;
pub mod json;

use streambal_baselines::{CoreBalancer, ReadjConfig, ReadjPartitioner};
use streambal_core::{BalanceParams, Partitioner, RebalanceStrategy};
use streambal_sim::source::ZipfSource;
use streambal_sim::{run_sim, SimConfig, SimReport};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-friendly: small key domains, few intervals.
    Quick,
    /// Near the paper's Tab. II defaults (minutes to hours).
    Full,
}

impl Scale {
    /// Reads `STREAMBAL_SCALE` (`quick`/`full`), defaulting to quick.
    pub fn from_env() -> Self {
        match std::env::var("STREAMBAL_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Picks between the quick and full variant of a parameter.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Tab. II defaults (bold entries), at the given scale.
#[derive(Debug, Clone, Copy)]
pub struct Defaults {
    /// Key-domain size `K`.
    pub k: usize,
    /// Zipf skew `z`.
    pub z: f64,
    /// Fluctuation rate `f`.
    pub f: f64,
    /// Imbalance tolerance `θmax`.
    pub theta_max: f64,
    /// Migration selection factor `β`.
    pub beta: f64,
    /// Routing-table bound `Amax`.
    pub table_max: usize,
    /// Downstream tasks `N_D`.
    pub nd: usize,
    /// Statistics window `w`.
    pub window: usize,
    /// Tuples per interval.
    pub tuples: u64,
    /// Simulated intervals per run.
    pub intervals: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Defaults {
    /// Defaults at `scale`.
    pub fn at(scale: Scale) -> Self {
        Defaults {
            k: scale.pick(20_000, 100_000),
            z: 0.85,
            f: 1.0,
            theta_max: 0.08,
            beta: 1.5,
            table_max: 3_000,
            nd: 10,
            window: scale.pick(5, 10),
            tuples: scale.pick(200_000, 1_000_000),
            intervals: scale.pick(10, 30),
            seed: 42,
        }
    }

    /// A [`BalanceParams`] from these defaults.
    pub fn params(&self) -> BalanceParams {
        BalanceParams {
            theta_max: self.theta_max,
            beta: self.beta,
            table_max: self.table_max,
        }
    }

    /// A fresh Zipf interval source from these defaults.
    pub fn source(&self) -> ZipfSource {
        ZipfSource::new(self.k, self.z, self.tuples, self.f, self.seed)
    }
}

/// Runs one simulator experiment with a core strategy.
pub fn run_core_sim(d: &Defaults, strategy: RebalanceStrategy) -> SimReport {
    let mut p = CoreBalancer::new(d.nd, d.window, strategy, d.params());
    let mut src = d.source();
    run_sim(
        &mut p,
        &mut src,
        &SimConfig {
            n_tasks: d.nd,
            intervals: d.intervals,
        },
    )
}

/// Runs Readj across a σ sweep and returns the best report (the paper:
/// "we run Readj with different σs and only report the best result").
/// Best = lowest post-rebalance θ, ties broken by migration cost.
pub fn run_readj_best(d: &Defaults, sigmas: &[f64]) -> SimReport {
    let mut best: Option<SimReport> = None;
    for &sigma in sigmas {
        let cfg = ReadjConfig {
            theta_max: d.theta_max,
            sigma,
            max_actions: 512,
        };
        let mut p = ReadjPartitioner::new(d.nd, d.window, cfg);
        let mut src = d.source();
        let report = run_sim(
            &mut p,
            &mut src,
            &SimConfig {
                n_tasks: d.nd,
                intervals: d.intervals,
            },
        );
        let better = match &best {
            None => true,
            Some(b) => {
                let (ra, rb) = (report.theta_after.mean(), b.theta_after.mean());
                ra < rb - 1e-9
                    || ((ra - rb).abs() <= 1e-9
                        && report.mig_fraction.mean() < b.mig_fraction.mean())
            }
        };
        if better {
            best = Some(report);
        }
    }
    best.expect("at least one sigma")
}

/// The σ sweep used throughout (paper: binary search; we grid).
pub const READJ_SIGMAS: [f64; 4] = [0.005, 0.02, 0.05, 0.2];

/// Formats a numeric row: label then fixed-width columns.
pub fn row(label: &str, values: &[f64], width: usize, precision: usize) -> String {
    let mut s = format!("{label:<22}");
    for v in values {
        s.push_str(&format!(" {v:>width$.precision$}"));
    }
    s
}

/// Formats a header row.
pub fn header(label: &str, cols: &[String], width: usize) -> String {
    let mut s = format!("{label:<22}");
    for c in cols {
        s.push_str(&format!(" {c:>width$}"));
    }
    s
}

/// Convenience: a boxed core-strategy partitioner.
pub fn core_partitioner(d: &Defaults, strategy: RebalanceStrategy) -> Box<dyn Partitioner> {
    Box::new(CoreBalancer::new(d.nd, d.window, strategy, d.params()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_quick() {
        // No env poking (tests run in parallel): just the picker.
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn defaults_reflect_table_ii() {
        let d = Defaults::at(Scale::Full);
        assert_eq!(d.k, 100_000);
        assert_eq!(d.z, 0.85);
        assert_eq!(d.theta_max, 0.08);
        assert_eq!(d.beta, 1.5);
        assert_eq!(d.table_max, 3_000);
        assert_eq!(d.nd, 10);
    }

    #[test]
    fn row_formatting() {
        let s = row("Mixed", &[1.5, 2.25], 8, 2);
        assert!(s.starts_with("Mixed"));
        assert!(s.contains("1.50"));
        assert!(s.contains("2.25"));
    }
}
