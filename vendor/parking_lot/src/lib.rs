//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin API slice it actually uses. `parking_lot::Mutex`
//! differs from `std::sync::Mutex` in that `lock()` returns the guard
//! directly (no poisoning); this shim recovers from poison instead, which
//! preserves those semantics for well-behaved callers.

use std::sync::PoisonError;

/// A mutex whose `lock` never returns a `Result` (poison-free semantics).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }
}
