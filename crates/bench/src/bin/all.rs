//! Runs every figure experiment and writes the outputs to
//! `bench_results/figNN.json` (machine-readable, diffable across PRs)
//! plus `bench_results/figNN.txt` (the text tables, also printed).
//! `STREAMBAL_SCALE=full` for paper-scale runs.

use std::fs;
use std::time::Instant;

use streambal_bench::figure::Figure;
use streambal_bench::{fig11, figs_runtime, figs_sim, Scale};

type FigureFn = Box<dyn Fn(Scale) -> Figure>;

fn main() {
    let scale = Scale::from_env();
    let dir = streambal_bench::figure::results_dir();
    fs::create_dir_all(dir).expect("create bench_results/");

    let figures: Vec<(&str, FigureFn)> = vec![
        ("fig07", Box::new(figs_sim::fig07)),
        ("fig08", Box::new(figs_sim::fig08)),
        ("fig09", Box::new(figs_sim::fig09)),
        ("fig10", Box::new(figs_sim::fig10)),
        ("fig11", Box::new(fig11::fig11)),
        ("fig12", Box::new(figs_sim::fig12)),
        ("fig13", Box::new(figs_runtime::fig13)),
        ("fig14", Box::new(figs_runtime::fig14)),
        ("fig15", Box::new(figs_runtime::fig15)),
        ("fig16", Box::new(figs_runtime::fig16)),
        ("fig17", Box::new(figs_sim::fig17)),
        ("fig18", Box::new(figs_sim::fig18)),
        ("fig19", Box::new(figs_sim::fig19)),
        ("fig20_21", Box::new(figs_sim::fig20_21)),
    ];

    for (name, run) in figures {
        let t0 = Instant::now();
        eprintln!(">>> {name} ...");
        let fig = run(scale);
        debug_assert_eq!(fig.name(), name);
        println!("{}", fig.to_text());
        fs::write(dir.join(format!("{name}.txt")), fig.to_text()).expect("write text result");
        fig.write_json(dir, scale).expect("write json result");
        eprintln!("<<< {name} done in {:.1}s", t0.elapsed().as_secs_f64());
    }
    eprintln!("all figures written to bench_results/ (.txt + .json)");
}
