//! Regenerates the paper's Fig. 13 (see EXPERIMENTS.md).
fn main() {
    let scale = streambal_bench::Scale::from_env();
    print!("{}", streambal_bench::figs_runtime::fig13(scale));
}
