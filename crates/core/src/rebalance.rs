//! The rebalance façade: strategy dispatch and the stateful [`Rebalancer`]
//! controller component.
//!
//! This is the module the engine talks to. At each interval boundary the
//! controller feeds the collected [`IntervalStats`] into
//! [`Rebalancer::end_interval`]; if any task violates `θmax`, the selected
//! strategy constructs a new assignment `F′`, the routing table is swapped,
//! and the resulting [`MigrationPlan`] is handed back for the engine to
//! execute with the pause → migrate → ack → resume protocol (Fig. 5).

use crate::key::{Key, TaskId};
use crate::load::{loads_of, needs_rebalance, LoadSummary};
use crate::migration::{migration_delta, MigrationPlan};
use crate::minmig::minmig_assign;
use crate::mintable::mintable_assign;
use crate::mixed::{mixed_assign, mixed_bf_assign};
use crate::routing::{AssignmentFn, RoutingTable};
use crate::simple::simple_assign;
use crate::stats::{IntervalStats, KeyRecord, StatsWindow};

/// Tuning knobs of the optimization problem (Eq. 3) plus the γ weight β.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceParams {
    /// Imbalance tolerance `θmax`; rebalance triggers when any task's
    /// balance indicator exceeds it. Paper default 0.08.
    pub theta_max: f64,
    /// The migration-selection factor β in `γ = c^β / S`. Paper default
    /// 1.5 (selected via the appendix's Figs. 20–21).
    pub beta: f64,
    /// Routing-table bound `Amax`. Paper default 3000.
    pub table_max: usize,
}

impl Default for BalanceParams {
    fn default() -> Self {
        BalanceParams {
            theta_max: 0.08,
            beta: 1.5,
            table_max: 3_000,
        }
    }
}

/// Which §III algorithm constructs `F′`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RebalanceStrategy {
    /// Algorithm 2 — minimal routing table, expensive migrations.
    MinTable,
    /// Algorithm 3 — minimal migrations, unbounded table growth.
    MinMig,
    /// Algorithm 4 — the paper's production algorithm.
    Mixed,
    /// Brute-force Mixed: optimal cleaning depth by exhaustive trial.
    MixedBF,
    /// Appendix Algorithm 5 — LPT from scratch; theory baseline.
    Simple,
}

impl RebalanceStrategy {
    /// Human-readable name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            RebalanceStrategy::MinTable => "MinTable",
            RebalanceStrategy::MinMig => "MinMig",
            RebalanceStrategy::Mixed => "Mixed",
            RebalanceStrategy::MixedBF => "MixedBF",
            RebalanceStrategy::Simple => "Simple",
        }
    }
}

/// A single rebalance decision's input: the flattened key records (cost
/// from the last interval, state from the window, current + hash
/// destinations) and the task count.
#[derive(Debug, Clone)]
pub struct RebalanceInput {
    /// Downstream parallelism `N_D`.
    pub n_tasks: usize,
    /// One record per live key.
    pub records: Vec<KeyRecord>,
}

impl RebalanceInput {
    /// Load summary under the *current* assignment.
    pub fn current_loads(&self) -> LoadSummary {
        loads_of(&self.records, self.n_tasks)
    }

    /// Total state bytes held across all keys (denominator of the
    /// migration-cost percentage).
    pub fn total_state(&self) -> u64 {
        self.records.iter().map(|r| r.mem).sum()
    }
}

/// Everything a rebalance decision produces.
#[derive(Debug, Clone)]
pub struct RebalanceOutcome {
    /// The new routing table `A′` (entries where `F′(k) ≠ h(k)`).
    pub table: RoutingTable,
    /// The migration plan `Δ(F, F′)` with per-key state sizes.
    pub plan: MigrationPlan,
    /// Estimated post-migration loads.
    pub loads: LoadSummary,
    /// Worst balance indicator after rebalance (estimated).
    pub achieved_theta: f64,
    /// Fraction of total state migrated, the paper's "migration cost %".
    pub migration_fraction: f64,
}

/// Builds the outcome artifacts (routing table, migration plan, load
/// summary) from a raw assignment vector parallel to `input.records`.
///
/// Public so that external strategies (e.g. the Readj baseline) can emit
/// the same outcome type as the built-in algorithms.
pub fn outcome_from_assignment(input: &RebalanceInput, assign: &[TaskId]) -> RebalanceOutcome {
    debug_assert_eq!(assign.len(), input.records.len());
    let mut table = RoutingTable::new();
    let mut loads = vec![0u64; input.n_tasks];
    for (r, &d) in input.records.iter().zip(assign) {
        loads[d.index()] += r.cost;
        if d != r.hash_dest {
            table.insert(r.key, d);
        }
    }
    // Index once for the Δ lookup instead of scanning per key.
    let pos: streambal_hashring::FxHashMap<Key, usize> = input
        .records
        .iter()
        .enumerate()
        .map(|(i, r)| (r.key, i))
        .collect();
    let plan = migration_delta(&input.records, |k| assign[pos[&k]]);
    let loads = LoadSummary::new(loads);
    let achieved_theta = loads.max_theta();
    let migration_fraction = plan.cost_fraction(input.total_state());
    RebalanceOutcome {
        table,
        plan,
        loads,
        achieved_theta,
        migration_fraction,
    }
}

/// Runs one rebalance with the chosen strategy. Pure function of its
/// inputs; the stateful wrapper is [`Rebalancer`].
pub fn rebalance(
    input: &RebalanceInput,
    strategy: RebalanceStrategy,
    params: &BalanceParams,
) -> RebalanceOutcome {
    let assign = match strategy {
        RebalanceStrategy::MinTable => {
            mintable_assign(&input.records, input.n_tasks, params.theta_max)
        }
        RebalanceStrategy::MinMig => {
            minmig_assign(&input.records, input.n_tasks, params.theta_max, params.beta)
        }
        RebalanceStrategy::Mixed => {
            mixed_assign(
                &input.records,
                input.n_tasks,
                params.theta_max,
                params.beta,
                params.table_max,
            )
            .assign
        }
        RebalanceStrategy::MixedBF => {
            mixed_bf_assign(
                &input.records,
                input.n_tasks,
                params.theta_max,
                params.beta,
                params.table_max,
            )
            .assign
        }
        RebalanceStrategy::Simple => simple_assign(&input.records, input.n_tasks),
    };
    outcome_from_assignment(input, &assign)
}

/// When the controller may fire a rebalance, beyond the θmax condition.
///
/// The paper triggers whenever imbalance is detected at an interval end;
/// production controllers usually add damping so that a single noisy
/// interval (or a migration's own transient) does not cause thrash. Both
/// knobs default to the paper's behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerPolicy {
    /// Minimum intervals between consecutive rebalances (0 = none).
    pub cooldown: usize,
    /// Require this many *consecutive* violating intervals before firing
    /// (1 = fire on first violation, the paper's behaviour).
    pub consecutive: usize,
}

impl Default for TriggerPolicy {
    fn default() -> Self {
        TriggerPolicy {
            cooldown: 0,
            consecutive: 1,
        }
    }
}

/// The stateful controller-side component: owns the assignment function
/// (routing table + hash ring) and the statistics window, decides when to
/// trigger, and applies accepted plans to the table.
#[derive(Debug)]
pub struct Rebalancer {
    assignment: AssignmentFn,
    window: StatsWindow,
    params: BalanceParams,
    strategy: RebalanceStrategy,
    rebalances: usize,
    trigger: TriggerPolicy,
    intervals_since_rebalance: usize,
    consecutive_violations: usize,
    last_install_was_delta: bool,
}

impl Rebalancer {
    /// Creates a rebalancer for `n_tasks` downstream instances keeping `w`
    /// intervals of state.
    pub fn new(
        n_tasks: usize,
        window: usize,
        strategy: RebalanceStrategy,
        params: BalanceParams,
    ) -> Self {
        Rebalancer {
            assignment: AssignmentFn::hash_only(n_tasks),
            window: StatsWindow::new(window),
            params,
            strategy,
            rebalances: 0,
            trigger: TriggerPolicy::default(),
            intervals_since_rebalance: usize::MAX,
            consecutive_violations: 0,
            last_install_was_delta: false,
        }
    }

    /// Replaces the trigger damping policy.
    pub fn with_trigger_policy(mut self, trigger: TriggerPolicy) -> Self {
        self.trigger = trigger;
        self
    }

    /// Routes one tuple key under the current `F` — the upstream router's
    /// per-tuple operation.
    #[inline]
    pub fn route(&self, key: Key) -> TaskId {
        self.assignment.route(key)
    }

    /// Routes a batch of keys under the current `F` (see
    /// [`AssignmentFn::route_batch`]).
    pub fn route_batch(&self, keys: &[Key], out: &mut Vec<TaskId>) {
        self.assignment.route_batch(keys, out);
    }

    /// The live assignment function.
    pub fn assignment(&self) -> &AssignmentFn {
        &self.assignment
    }

    /// The active parameters.
    pub fn params(&self) -> &BalanceParams {
        &self.params
    }

    /// A worker slot died without draining: re-pin its explicit entries
    /// onto survivors (see [`AssignmentFn::repin_dead`]) and return the
    /// applied moves.
    pub fn reroute_dead(
        &mut self,
        dead: TaskId,
        is_dead: &dyn Fn(usize) -> bool,
    ) -> Vec<(Key, TaskId)> {
        self.assignment.repin_dead(dead, is_dead)
    }

    /// Applies an explicit move list to the live assignment (the aborted
    /// -migration rollback path; see [`AssignmentFn::apply_delta`]).
    pub fn apply_moves(&mut self, moves: &[(Key, TaskId)]) {
        self.assignment.apply_delta(moves.iter().copied());
    }

    /// How many rebalances have fired so far.
    pub fn rebalances(&self) -> usize {
        self.rebalances
    }

    /// Whether the most recent rebalance was installed as an incremental
    /// delta (`O(churn)`) rather than a full table swap (see
    /// [`AssignmentFn::install_rebalance`]). Drivers use this to ship
    /// sources a matching move-list view instead of the whole table.
    pub fn last_install_was_delta(&self) -> bool {
        self.last_install_was_delta
    }

    /// Adds a downstream instance (scale-out, Fig. 15). The next
    /// `end_interval` sees the new task in its load vector and rebalances
    /// onto it.
    pub fn add_task(&mut self) -> TaskId {
        self.assignment.add_task()
    }

    /// Scale-out that preserves physical state placement: keys in `live`
    /// whose hash destination would churn onto the new ring slot get
    /// pinned (table entries to their old location), so routing stays
    /// truthful to where state actually sits. The next `end_interval`
    /// then migrates keys onto the empty instance with a proper plan.
    pub fn scale_out(&mut self, live: impl IntoIterator<Item = Key>) -> TaskId {
        let live: Vec<Key> = live.into_iter().collect();
        self.assignment.add_task_pinned(&live)
    }

    /// Scale-out with a pre-placement plan: instead of pinning the ring
    /// churn away (which leaves the new instance empty until the next
    /// rebalance migrates keys onto it), lets churned state-bearing keys
    /// follow the grown ring and returns them as `(key, old_holder)`
    /// moves for the caller to migrate inside the scale-out quiescence
    /// window (see `AssignmentFn::add_task_with_moves`).
    ///
    /// The plan covers the union of the caller's `live` keys and every
    /// key in this rebalancer's statistics window
    /// ([`StatsWindow::union_keys`]) — exactly the set whose placement
    /// the plan must keep truthful, however thin a keyspace slice the
    /// last single (possibly blurred) round observed.
    pub fn scale_out_plan(
        &mut self,
        live: impl IntoIterator<Item = Key>,
    ) -> (TaskId, Vec<(Key, TaskId)>) {
        let live = self.window.union_keys(live);
        self.assignment.add_task_with_moves(&live)
    }

    /// Scale-in (the inverse of [`Rebalancer::scale_out`]): retires the
    /// highest-numbered instance, dropping its explicit table entries and
    /// shrinking the ring consistently, with `live` keys pinned against
    /// survivor churn (see `AssignmentFn::remove_task_pinned`). The
    /// victim's physical state must be migrated by the caller before the
    /// instance disappears; subsequent `end_interval` calls see the
    /// shrunk load vector.
    ///
    /// # Panics
    /// Panics if `victim` is not the last task or only one task remains.
    pub fn scale_in(&mut self, victim: TaskId, live: impl IntoIterator<Item = Key>) {
        assert_eq!(
            victim.index(),
            self.assignment.n_tasks() - 1,
            "scale-in retires the highest-numbered task"
        );
        let live: Vec<Key> = live.into_iter().collect();
        self.assignment.remove_task_pinned(&live);
    }

    /// Flags `key` as hot and salts it across `replicas` (see
    /// [`AssignmentFn::set_split`]). While split, the key is owned by the
    /// split layer: it is excluded from rebalance inputs (its "current"
    /// placement rotates per tuple, so whole-key moves are meaningless
    /// for it) and the rebalance algorithms balance the remainder.
    pub fn split_key(&mut self, key: Key, replicas: &[TaskId]) -> bool {
        self.assignment.set_split(key, replicas)
    }

    /// Dissolves `key`'s split, returning the replica set that was
    /// installed (see [`AssignmentFn::clear_split`]).
    pub fn unsplit_key(&mut self, key: Key) -> Option<Vec<TaskId>> {
        self.assignment.clear_split(key)
    }

    /// The currently split keys with their replica sets, sorted by key.
    pub fn splits(&self) -> Vec<(Key, Vec<TaskId>)> {
        self.assignment.splits()
    }

    /// Builds the rebalance input from the current window and assignment.
    /// Split keys are excluded: their routing rotates over replicas, so
    /// they have no single "current" placement for a plan to move, and
    /// their load is the split layer's problem, not the rebalancer's.
    pub fn build_input(&self) -> RebalanceInput {
        let assignment = &self.assignment;
        let mut records = self.window.records(|k| {
            if assignment.split_replicas(k).is_some() {
                // Placeholder, filtered below — routing a split key here
                // would advance its rotation cursor as a side effect.
                let h = assignment.hash_route(k);
                (h, h)
            } else {
                (assignment.route(k), assignment.hash_route(k))
            }
        });
        if assignment.has_splits() {
            records.retain(|r| assignment.split_replicas(r.key).is_none());
        }
        RebalanceInput {
            n_tasks: assignment.n_tasks(),
            records,
        }
    }

    /// Ends an interval: ingests the stats, evaluates the trigger, and —
    /// when imbalance exceeds `θmax` — constructs and applies `F′`.
    ///
    /// Returns the outcome when a rebalance fired (its
    /// [`MigrationPlan`] must then be executed by the engine *before*
    /// routing resumes for affected keys), or `None` when balanced.
    pub fn end_interval(&mut self, stats: IntervalStats) -> Option<RebalanceOutcome> {
        self.window.push(stats);
        self.intervals_since_rebalance = self.intervals_since_rebalance.saturating_add(1);
        let input = self.build_input();
        if input.records.is_empty() {
            return None;
        }
        let summary = input.current_loads();
        if !needs_rebalance(&summary, self.params.theta_max) {
            self.consecutive_violations = 0;
            return None;
        }
        self.consecutive_violations += 1;
        if self.consecutive_violations < self.trigger.consecutive
            || self.intervals_since_rebalance <= self.trigger.cooldown
        {
            return None; // damped
        }
        let outcome = rebalance(&input, self.strategy, &self.params);
        // O(churn) delta install, with an occasional staleness resync —
        // never the old O(table) clone-and-swap per rebalance.
        self.last_install_was_delta = self
            .assignment
            .install_rebalance(&outcome.table, outcome.plan.moves());
        self.rebalances += 1;
        self.intervals_since_rebalance = 0;
        self.consecutive_violations = 0;
        Some(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_interval(n_keys: u64, hot_cost: u64) -> IntervalStats {
        let mut iv = IntervalStats::new();
        for k in 0..n_keys {
            let cost = if k == 0 { hot_cost } else { 1 };
            iv.observe(Key(k), 1, cost, cost);
        }
        iv
    }

    #[test]
    fn balanced_stream_never_triggers() {
        let mut rb = Rebalancer::new(
            4,
            2,
            RebalanceStrategy::Mixed,
            BalanceParams {
                theta_max: 0.5,
                ..BalanceParams::default()
            },
        );
        // Uniform keys, plenty of them: hash spreads well within θ=0.5.
        let mut iv = IntervalStats::new();
        for k in 0..10_000u64 {
            iv.observe(Key(k), 1, 1, 1);
        }
        assert!(rb.end_interval(iv).is_none());
        assert_eq!(rb.rebalances(), 0);
    }

    #[test]
    fn split_keys_are_excluded_from_rebalance_input() {
        let mut rb = Rebalancer::new(4, 1, RebalanceStrategy::Mixed, BalanceParams::default());
        assert!(rb.split_key(Key(0), &[TaskId(0), TaskId(1)]));
        let outcome = rb.end_interval(skewed_interval(500, 100_000));
        // Whatever the remainder does, no plan may move the split key —
        // its "current" placement rotates and whole-key moves are
        // meaningless for it.
        if let Some(o) = &outcome {
            assert!(o.plan.moves().iter().all(|m| m.key != Key(0)));
        }
        let input = rb.build_input();
        assert_eq!(input.records.len(), 499, "split key excluded");
        assert!(input.records.iter().all(|r| r.key != Key(0)));
        // Unsplit hands back the replica set and the key re-enters.
        assert_eq!(rb.unsplit_key(Key(0)), Some(vec![TaskId(0), TaskId(1)]));
        assert_eq!(rb.build_input().records.len(), 500);
        assert_eq!(rb.splits(), vec![]);
    }

    #[test]
    fn skewed_stream_triggers_and_balances() {
        let mut rb = Rebalancer::new(4, 2, RebalanceStrategy::Mixed, BalanceParams::default());
        let before = {
            rb.window.push(skewed_interval(1000, 5_000));
            let input = rb.build_input();
            input.current_loads().max_theta()
        };
        assert!(before > 0.08, "hash routing must be skewed here");
        let outcome = rb
            .end_interval(skewed_interval(1000, 5_000))
            .expect("must trigger");
        assert!(
            outcome.achieved_theta < before,
            "θ {} → {}",
            before,
            outcome.achieved_theta
        );
        assert!(!outcome.plan.is_empty());
        assert_eq!(rb.rebalances(), 1);
        // The table was applied: routing now honours it.
        for (k, d) in outcome.table.iter() {
            assert_eq!(rb.route(k), d);
        }
    }

    #[test]
    fn empty_interval_is_noop() {
        let mut rb = Rebalancer::new(2, 1, RebalanceStrategy::Mixed, BalanceParams::default());
        assert!(rb.end_interval(IntervalStats::new()).is_none());
    }

    #[test]
    fn all_strategies_produce_consistent_outcomes() {
        let mut records = Vec::new();
        for i in 0..200u64 {
            records.push(KeyRecord {
                key: Key(i),
                cost: 1 + (i % 13),
                mem: 1 + (i % 7),
                current: TaskId((i % 3) as u32),
                hash_dest: TaskId((i % 3) as u32),
            });
        }
        // Make task 0 heavy.
        for r in records.iter_mut().take(40) {
            r.current = TaskId(0);
            r.hash_dest = TaskId(0);
        }
        let input = RebalanceInput {
            n_tasks: 3,
            records,
        };
        let params = BalanceParams::default();
        for strategy in [
            RebalanceStrategy::MinTable,
            RebalanceStrategy::MinMig,
            RebalanceStrategy::Mixed,
            RebalanceStrategy::MixedBF,
            RebalanceStrategy::Simple,
        ] {
            let out = rebalance(&input, strategy, &params);
            // Table entries must disagree with hash (else they'd be
            // redundant).
            for (k, d) in out.table.iter() {
                let rec = input.records.iter().find(|r| r.key == k).unwrap();
                assert_ne!(d, rec.hash_dest, "{}: redundant entry", strategy.name());
            }
            // Plan cost fraction within [0,1].
            assert!(
                (0.0..=1.0).contains(&out.migration_fraction),
                "{}: fraction {}",
                strategy.name(),
                out.migration_fraction
            );
            // Load conservation: total load invariant.
            let total_before: u64 = input.records.iter().map(|r| r.cost).sum();
            let total_after: u64 = out.loads.loads.iter().sum();
            assert_eq!(total_before, total_after, "{}", strategy.name());
        }
    }

    #[test]
    fn scale_out_adds_task_and_next_interval_uses_it() {
        let mut rb = Rebalancer::new(
            2,
            1,
            RebalanceStrategy::Mixed,
            BalanceParams {
                theta_max: 0.05,
                ..BalanceParams::default()
            },
        );
        // Fill two tasks evenly-ish.
        let mut iv = IntervalStats::new();
        for k in 0..1000u64 {
            iv.observe(Key(k), 1, 10, 10);
        }
        let _ = rb.end_interval(iv.clone());
        let new = rb.add_task();
        assert_eq!(new, TaskId(2));
        // New task has zero load ⇒ θ(new) = 1 > θmax ⇒ triggers, and the
        // plan ships keys onto the new task.
        let outcome = rb.end_interval(iv).expect("scale-out must trigger");
        let onto_new = outcome.plan.moves_to(new).count();
        assert!(onto_new > 0, "keys must move to the new instance");
        assert!(outcome.achieved_theta < 0.2);
    }

    #[test]
    fn scale_in_retires_last_task_and_rebalance_avoids_it() {
        let mut rb = Rebalancer::new(
            3,
            1,
            RebalanceStrategy::Mixed,
            BalanceParams {
                theta_max: 0.05,
                ..BalanceParams::default()
            },
        );
        let mut iv = IntervalStats::new();
        for k in 0..3_000u64 {
            iv.observe(Key(k), 1, 10, 10);
        }
        let _ = rb.end_interval(iv.clone());
        let live: Vec<Key> = (0..3_000u64).map(Key).collect();
        rb.scale_in(TaskId(2), live.iter().copied());
        assert_eq!(rb.assignment().n_tasks(), 2);
        for &k in &live {
            assert!(rb.route(k).index() < 2, "key routed to retired task");
        }
        // The next interval rebalances (if at all) over two tasks only.
        if let Some(out) = rb.end_interval(iv) {
            assert_eq!(out.loads.loads.len(), 2);
            for mv in out.plan.moves() {
                assert!(mv.to.index() < 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "highest-numbered task")]
    fn scale_in_rejects_non_tail_victim() {
        let mut rb = Rebalancer::new(3, 1, RebalanceStrategy::Mixed, BalanceParams::default());
        rb.scale_in(TaskId(0), std::iter::empty());
    }

    #[test]
    fn trigger_policy_consecutive_damping() {
        let mut rb = Rebalancer::new(4, 2, RebalanceStrategy::Mixed, BalanceParams::default())
            .with_trigger_policy(TriggerPolicy {
                cooldown: 0,
                consecutive: 3,
            });
        // Two violating intervals: damped. Third: fires.
        assert!(rb.end_interval(skewed_interval(1000, 5_000)).is_none());
        assert!(rb.end_interval(skewed_interval(1000, 5_000)).is_none());
        assert!(rb.end_interval(skewed_interval(1000, 5_000)).is_some());
        assert_eq!(rb.rebalances(), 1);
    }

    #[test]
    fn trigger_policy_cooldown() {
        let mut rb = Rebalancer::new(4, 1, RebalanceStrategy::Mixed, BalanceParams::default())
            .with_trigger_policy(TriggerPolicy {
                cooldown: 2,
                consecutive: 1,
            });
        // First violation fires immediately (no previous rebalance).
        assert!(rb.end_interval(skewed_interval(1000, 5_000)).is_some());
        // Window w=1 forgets the balanced table's effect... keep feeding
        // the same skew: violations persist but cooldown suppresses.
        let fired: Vec<bool> = (0..4)
            .map(|_| rb.end_interval(skewed_interval(1000, 9_999)).is_some())
            .collect();
        // At most intervals 3.. can fire (cooldown 2 after interval 0).
        assert!(!fired[0] && !fired[1], "cooldown must suppress: {fired:?}");
    }

    #[test]
    fn violation_streak_resets_on_balanced_interval() {
        // θmax = 0.5: hash-routing 10k uniform keys stays well within
        // bounds (ring variance ~10%), while the hot-key interval violates.
        let mut rb = Rebalancer::new(
            4,
            1,
            RebalanceStrategy::Mixed,
            BalanceParams {
                theta_max: 0.5,
                ..BalanceParams::default()
            },
        )
        .with_trigger_policy(TriggerPolicy {
            cooldown: 0,
            consecutive: 2,
        });
        assert!(rb.end_interval(skewed_interval(1000, 5_000)).is_none());
        // A balanced interval breaks the streak.
        let mut balanced = IntervalStats::new();
        for k in 0..10_000u64 {
            balanced.observe(Key(k), 1, 1, 1);
        }
        assert!(rb.end_interval(balanced).is_none());
        // One more violation: streak restarts at 1 — still damped.
        assert!(rb.end_interval(skewed_interval(1000, 5_000)).is_none());
        assert_eq!(rb.rebalances(), 0);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(RebalanceStrategy::Mixed.name(), "Mixed");
        assert_eq!(RebalanceStrategy::MixedBF.name(), "MixedBF");
    }

    #[test]
    fn default_params_match_paper() {
        let p = BalanceParams::default();
        assert_eq!(p.theta_max, 0.08);
        assert_eq!(p.beta, 1.5);
        assert_eq!(p.table_max, 3_000);
    }
}
