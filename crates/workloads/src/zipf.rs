//! Zipf-distributed synthetic workload with controlled fluctuation.
//!
//! Reproduces the paper's synthetic generator: per interval, tuples over an
//! integer key domain `K` follow a Zipf distribution with skew `z`; across
//! intervals, the generator "keeps swapping frequencies between keys from
//! different task instances until the change on workload is significant
//! enough, i.e. `|Lᵢ(d) − Lᵢ₋₁(d)| / L̄ ≥ f`" — the fluctuation-rate knob
//! `f` of Tab. II.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use streambal_core::{IntervalStats, Key, TaskId};
use streambal_hashring::mix64;

/// How a key's per-interval tuple count translates into computation cost
/// and state bytes.
///
/// The paper measures `cᵢ(k)` and `sᵢ(k)` empirically and makes no
/// correlation assumption; the synthetic workloads use a linear model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// CPU units per tuple.
    pub cost_per_tuple: u64,
    /// State bytes per tuple (the window keeps `w` intervals of these).
    pub state_per_tuple: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cost_per_tuple: 1,
            state_per_tuple: 8,
        }
    }
}

/// A plain Zipf(`z`) sampler over ranks `0..k` (rank 0 most popular),
/// built from the inverse-CDF table.
#[derive(Debug, Clone)]
pub struct ZipfGen {
    cum: Vec<f64>,
}

impl ZipfGen {
    /// Builds the sampler. `z = 0` is uniform; the paper sweeps `z` up to
    /// 1.0 with default 0.85.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize, z: f64) -> Self {
        assert!(k > 0, "key domain must be non-empty");
        let mut cum = Vec::with_capacity(k);
        let mut acc = 0.0f64;
        for i in 1..=k {
            acc += 1.0 / (i as f64).powf(z);
            cum.push(acc);
        }
        let total = acc;
        for c in &mut cum {
            *c /= total;
        }
        ZipfGen { cum }
    }

    /// Samples a rank.
    #[inline]
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cum.partition_point(|&c| c < u).min(self.cum.len() - 1)
    }

    /// Expected tuple count of `rank` out of `total` tuples.
    pub fn expected_count(&self, rank: usize, total: u64) -> f64 {
        let lo = if rank == 0 { 0.0 } else { self.cum[rank - 1] };
        (self.cum[rank] - lo) * total as f64
    }

    /// Deterministic per-key expected frequencies summing to ≈ `total`.
    pub fn expected_freqs(&self, total: u64) -> Vec<u64> {
        (0..self.cum.len())
            .map(|r| self.expected_count(r, total).round() as u64)
            .collect()
    }
}

/// The paper's synthetic interval workload: Zipf base distribution plus
/// the fluctuation process.
#[derive(Debug, Clone)]
pub struct FluctuatingWorkload {
    /// Tuple count per key for the *current* interval, indexed by key id.
    freqs: Vec<u64>,
    cost: CostModel,
    f: f64,
    rng: StdRng,
    interval: u64,
}

impl FluctuatingWorkload {
    /// Creates the workload: `k` keys, skew `z`, `tuples` per interval,
    /// fluctuation rate `f`, deterministic under `seed`.
    ///
    /// Key ids are a pseudo-random permutation of popularity ranks (so the
    /// hot keys are scattered over the hash space, as real topic ids are).
    pub fn new(k: usize, z: f64, tuples: u64, f: f64, seed: u64) -> Self {
        let gen = ZipfGen::new(k, z);
        let by_rank = gen.expected_freqs(tuples);
        // Permute ranks onto key ids deterministically.
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_unstable_by_key(|&i| mix64(i as u64 ^ seed));
        let mut freqs = vec![0u64; k];
        for (rank, &key_id) in order.iter().enumerate() {
            freqs[key_id] = by_rank[rank];
        }
        FluctuatingWorkload {
            freqs,
            cost: CostModel::default(),
            f,
            rng: StdRng::seed_from_u64(seed),
            interval: 0,
        }
    }

    /// Replaces the cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Key-domain size.
    pub fn n_keys(&self) -> usize {
        self.freqs.len()
    }

    /// Current interval index.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Per-key tuple counts of the current interval.
    pub fn freqs(&self) -> &[u64] {
        &self.freqs
    }

    /// Advances to the next interval, swapping key frequencies between
    /// keys on *different* destinations (per `dest`) until some task's
    /// load shift reaches `f · L̄` — the paper's fluctuation process.
    ///
    /// Swaps pair the hottest not-yet-swapped keys with the coldest keys
    /// of a receiving task, so the target shift is reached with few swaps
    /// even for `f = 2` (uniform random pairs would random-walk and never
    /// get there). With `f = 0` the distribution is static.
    pub fn advance(&mut self, n_tasks: usize, mut dest: impl FnMut(Key) -> TaskId) {
        self.interval += 1;
        if self.f <= 0.0 || self.freqs.len() < 2 || n_tasks < 2 {
            return;
        }
        let key_dest: Vec<TaskId> = (0..self.freqs.len()).map(|i| dest(Key(i as u64))).collect();
        let total: u64 = self.freqs.iter().sum();
        let mean = total as f64 / n_tasks as f64;
        if mean == 0.0 {
            return;
        }
        let target = (self.f * mean).ceil() as i64;

        // One receiving task per interval (rotated pseudo-randomly):
        // donor keys elsewhere swap frequencies with its coldest keys.
        let db = self.rng.gen_range(0..n_tasks);
        // Donors: keys not on db, descending frequency. Cold pool: keys on
        // db, ascending frequency.
        let mut donors: Vec<u32> = (0..self.freqs.len() as u32)
            .filter(|&i| key_dest[i as usize].index() != db)
            .collect();
        donors.sort_unstable_by_key(|&i| std::cmp::Reverse(self.freqs[i as usize]));
        let mut cold: Vec<u32> = (0..self.freqs.len() as u32)
            .filter(|&i| key_dest[i as usize].index() == db)
            .collect();
        cold.sort_unstable_by_key(|&i| self.freqs[i as usize]);

        // Greedy coin-change: walk donors in descending size, taking every
        // swap that fits in the remaining budget. This reaches the target
        // within the granularity of the smallest donor, for any f — a
        // single head-key swap would overshoot small targets by an order
        // of magnitude.
        let mut remaining = target;
        let mut ci = 0usize; // cursor into the (ascending) cold pool
        let mut fallback: Option<u32> = None; // smallest overshooting donor
        for a in donors {
            if remaining <= 0 || ci >= cold.len() {
                break;
            }
            let b = cold[ci];
            let delta = self.freqs[a as usize] as i64 - self.freqs[b as usize] as i64;
            if delta <= 0 {
                // Donors are descending: no later donor beats this cold key.
                break;
            }
            if delta <= remaining {
                self.freqs.swap(a as usize, b as usize);
                remaining -= delta;
                ci += 1;
            } else {
                fallback = Some(a); // last seen = smallest overshooter
            }
        }
        if remaining > 0 && ci < cold.len() {
            // Nothing smaller fits: perform the smallest overshooting swap
            // so the interval still fluctuates by ≥ f·L̄ (the paper's
            // threshold is a lower bound).
            if let Some(a) = fallback {
                self.freqs.swap(a as usize, cold[ci] as usize);
            }
        }
    }

    /// The current interval as aggregated statistics (simulator input).
    pub fn interval_stats(&self) -> IntervalStats {
        let mut iv = IntervalStats::new();
        for (i, &f) in self.freqs.iter().enumerate() {
            if f > 0 {
                iv.observe(
                    Key(i as u64),
                    f,
                    f * self.cost.cost_per_tuple,
                    f * self.cost.state_per_tuple,
                );
            }
        }
        iv
    }

    /// Materializes the interval as a concrete tuple sequence (runtime
    /// input): every key repeated `freq` times, deterministically
    /// interleaved.
    pub fn tuples(&mut self) -> Vec<Key> {
        let total: u64 = self.freqs.iter().sum();
        let mut out = Vec::with_capacity(total as usize);
        for (i, &f) in self.freqs.iter().enumerate() {
            for _ in 0..f {
                out.push(Key(i as u64));
            }
        }
        // Fisher-Yates with the workload's own RNG: deterministic.
        for i in (1..out.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            out.swap(i, j);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_uniform_when_z_zero() {
        let g = ZipfGen::new(100, 0.0);
        let freqs = g.expected_freqs(100_000);
        for &f in &freqs {
            assert!((f as i64 - 1000).abs() <= 1, "uniform expected, got {f}");
        }
    }

    #[test]
    fn zipf_head_dominates_at_high_skew() {
        let g = ZipfGen::new(1000, 1.0);
        let freqs = g.expected_freqs(100_000);
        assert!(freqs[0] > freqs[999] * 100, "rank 0 must dwarf the tail");
        // Monotone non-increasing.
        for w in freqs.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn zipf_sampling_matches_expectation() {
        let g = ZipfGen::new(50, 0.85);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u64; 50];
        let n = 200_000;
        for _ in 0..n {
            counts[g.sample(&mut rng)] += 1;
        }
        for rank in [0usize, 1, 10] {
            let expect = g.expected_count(rank, n);
            let got = counts[rank] as f64;
            assert!(
                (got - expect).abs() / expect < 0.1,
                "rank {rank}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn freqs_sum_is_close_to_requested() {
        let w = FluctuatingWorkload::new(10_000, 0.85, 100_000, 0.0, 42);
        let total: u64 = w.freqs().iter().sum();
        assert!(
            (total as i64 - 100_000).unsigned_abs() < 6_000,
            "total {total}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = FluctuatingWorkload::new(1000, 0.85, 10_000, 0.5, 9);
        let b = FluctuatingWorkload::new(1000, 0.85, 10_000, 0.5, 9);
        assert_eq!(a.freqs(), b.freqs());
    }

    #[test]
    fn advance_moves_load_proportionally_to_f() {
        let n_tasks = 4usize;
        let dest = |k: Key| TaskId::from((k.raw() % n_tasks as u64) as usize);
        let loads = |w: &FluctuatingWorkload| {
            let mut l = vec![0u64; n_tasks];
            for (i, &f) in w.freqs().iter().enumerate() {
                l[dest(Key(i as u64)).index()] += f;
            }
            l
        };
        for f in [0.2f64, 0.8] {
            let mut w = FluctuatingWorkload::new(5000, 0.85, 200_000, f, 3);
            let before = loads(&w);
            let mean = before.iter().sum::<u64>() as f64 / n_tasks as f64;
            w.advance(n_tasks, dest);
            let after = loads(&w);
            let max_shift = before
                .iter()
                .zip(&after)
                .map(|(&b, &a)| (b as i64 - a as i64).unsigned_abs())
                .max()
                .unwrap();
            assert!(
                max_shift as f64 >= f * mean,
                "f={f}: shift {max_shift} < target {}",
                f * mean
            );
        }
    }

    #[test]
    fn advance_with_zero_f_is_static() {
        let mut w = FluctuatingWorkload::new(1000, 0.85, 10_000, 0.0, 5);
        let before = w.freqs().to_vec();
        w.advance(4, |k| TaskId::from((k.raw() % 4) as usize));
        assert_eq!(w.freqs(), &before[..]);
        assert_eq!(w.interval(), 1);
    }

    #[test]
    fn interval_stats_match_freqs() {
        let w = FluctuatingWorkload::new(100, 0.85, 1_000, 0.0, 1).with_cost_model(CostModel {
            cost_per_tuple: 2,
            state_per_tuple: 16,
        });
        let iv = w.interval_stats();
        let hot = (0..100).max_by_key(|&i| w.freqs()[i as usize]).unwrap();
        let s = iv.get(Key(hot as u64)).unwrap();
        assert_eq!(s.cost, s.freq * 2);
        assert_eq!(s.mem, s.freq * 16);
    }

    #[test]
    fn tuples_expand_freqs_exactly() {
        let mut w = FluctuatingWorkload::new(50, 0.9, 2_000, 0.0, 11);
        let expect: u64 = w.freqs().iter().sum();
        let tuples = w.tuples();
        assert_eq!(tuples.len() as u64, expect);
        let mut counts = vec![0u64; 50];
        for t in &tuples {
            counts[t.raw() as usize] += 1;
        }
        assert_eq!(&counts[..], w.freqs());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_keys_panics() {
        ZipfGen::new(0, 0.85);
    }
}
