// Fixture: the data-plane shapes L007 accepts — batch-granularity
// recorder calls, the fault injector's ledger `record` (a control-plane
// call on a non-trace receiver), annotated sites, and test code.

fn drain(recorder: &mut ThreadRecorder, batch: &[Tuple]) {
    recorder.count_batch(batch.len() as u64);
}

fn close(recorder: &mut ThreadRecorder, interval: u64) {
    recorder.close_interval(interval);
}

fn ledger(injector: &FaultInjector, event: FaultEvent) {
    injector.record(event);
}

fn annotated(tracer: &mut Tracer, op: OpLabel) {
    // lint: allow(trace, reason = "one event per protocol op, not per
    // tuple — this site fires at control-plane rate")
    tracer.record(op);
}

#[cfg(test)]
mod tests {
    #[test]
    fn per_event_recording_is_fine_in_tests() {
        let mut tracer = Tracer::default();
        tracer.record(1);
    }
}
