//! Chaos bench: the measured cost of worker failure and protocol
//! rollback under deterministic fault injection.
//!
//! Two scenarios, each against a fault-free baseline on a byte-identical
//! tuple feed (the skewed fluctuating workload that drives migrations
//! every interval):
//!
//! * **worker loss** — a worker is killed at a planned interval
//!   boundary. Measured: the tuples irrecoverably lost (held window
//!   state + in-flight messages, all per-key accounted), the throughput
//!   the degraded topology sustains on survivors, and — with an
//!   elasticity decision scheduled after the death — the revive path
//!   re-provisioning the dead slot. Acceptance: the accounting
//!   invariant `fed == observed + lost` holds per key, and the
//!   degradation is bounded (survivors keep processing; loss is a
//!   sliver of the feed, not an interval's worth).
//! * **rollback** — two workers are stalled long past the op deadline
//!   with channels deep enough that the source never blocks on them, so
//!   an in-flight migration exhausts its retry and is *aborted*: routing
//!   rolled back, collected state re-installed at its origin, the
//!   source resumed under the pre-op view, and the stalled workers'
//!   late state transfers absorbed as stale epochs. Measured: the wall
//!   overhead of the abort/rollback path vs. the healthy run and the
//!   retry/abort/absorb event counts. Acceptance: rollback is
//!   *lossless* — exact per-key counts, `lost_tuples` empty.
//!
//! Results print as a table and land in `bench_results/chaos.json`
//! (`--test` smoke runs shrink the workload and write
//! `chaos.smoke.json` so noisy numbers never clobber the committed
//! ones). Each scenario's flight-recorder trace is exported under
//! `traces/` (`chaos_kill` and `chaos_rollback`, as `tracecat` JSONL
//! plus Chrome `trace_event` JSON; smoke runs write untracked `.smoke.`
//! variants), and the spans' disruption windows are priced into the
//! JSON next to the throughput numbers they explain.

use std::time::Duration;

use streambal_baselines::CoreBalancer;
use streambal_bench::json::{write_json, Json};
use streambal_core::{BalanceParams, Key, Partitioner, RebalanceStrategy, TaskId};
use streambal_elastic::FixedSchedule;
use streambal_hashring::FxHashMap;
use streambal_runtime::{
    CtlKind, Engine, EngineConfig, EngineReport, FaultEvent, FaultPlan, FaultSpec, Outcome,
    TraceLog, Tuple, WordCountOp,
};
use streambal_workloads::FluctuatingWorkload;

const N_WORKERS: usize = 4;
const KEYS: usize = 600;
const ZIPF: f64 = 1.0;
const FLUCTUATION: f64 = 0.6;
const SEED: u64 = 4242;
const INTERVALS: usize = 8;
const SPIN: u32 = 50;

/// The interval whose stats request kills the victim.
const KILL_AT: u64 = 2;
/// The interval whose elasticity decision revives the dead slot.
const REVIVE_AT: u64 = 5;

fn make_intervals(tuples: u64) -> Vec<Vec<Key>> {
    let mut w = FluctuatingWorkload::new(KEYS, ZIPF, tuples, FLUCTUATION, SEED);
    (0..INTERVALS)
        .map(|i| {
            if i > 0 {
                w.advance(N_WORKERS, |k| TaskId::from(k.raw() as usize % N_WORKERS));
            }
            w.tuples()
        })
        .collect()
}

fn reference_counts(intervals: &[Vec<Key>]) -> FxHashMap<Key, u64> {
    let mut m = FxHashMap::default();
    for iv in intervals {
        for &k in iv {
            *m.entry(k).or_insert(0) += 1;
        }
    }
    m
}

fn mixed_balancer() -> Box<dyn Partitioner> {
    Box::new(CoreBalancer::new(
        N_WORKERS,
        100,
        RebalanceStrategy::Mixed,
        BalanceParams {
            theta_max: 0.05,
            ..BalanceParams::default()
        },
    ))
}

fn run_once(label: &str, config: EngineConfig, intervals: &[Vec<Key>]) -> EngineReport {
    let feed: Vec<Vec<Key>> = intervals.to_vec();
    let report = Engine::run(
        config,
        mixed_balancer(),
        |_| Box::new(WordCountOp::new()),
        move |iv| {
            feed.get(iv as usize)
                .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
        },
        None,
    );
    assert!(
        report.protocol_errors.is_empty(),
        "{label}: protocol errors: {:?}",
        report.protocol_errors
    );
    report
}

/// The accounting invariant: per key, surviving state plus accounted
/// loss equals what was fed. Returns the total accounted loss.
fn assert_accounted(label: &str, report: &EngineReport, expect: &FxHashMap<Key, u64>) -> u64 {
    let mut got: FxHashMap<Key, u64> = FxHashMap::default();
    for (k, blob) in &report.final_states {
        let n: u64 = WordCountOp::decode(blob).iter().map(|&(_, c)| c).sum();
        *got.entry(*k).or_insert(0) += n;
    }
    let mut lost_total = 0u64;
    for &(k, n) in &report.lost_tuples {
        *got.entry(k).or_insert(0) += n;
        lost_total += n;
    }
    for (k, &e) in expect {
        let g = got.get(k).copied().unwrap_or(0);
        assert_eq!(g, e, "{label}: key {k:?} unaccounted: fed {e}, got {g}");
    }
    lost_total
}

fn count_events(report: &EngineReport, pred: impl Fn(&FaultEvent) -> bool) -> u64 {
    report.faults.iter().filter(|f| pred(f)).count() as u64
}

/// Protocol-span metrics from a run's flight-recorder trace: how many
/// ops ran, how they ended, and the disruption-window price (span open
/// to close — the stretch the affected keys sat paused).
fn span_metrics(report: &EngineReport) -> Json {
    let spans = report.trace.span_summaries();
    let completed = spans
        .iter()
        .filter(|s| s.outcome == Some(Outcome::Completed))
        .count() as u64;
    let aborted = spans
        .iter()
        .filter(|s| s.outcome == Some(Outcome::Aborted))
        .count() as u64;
    let windows: Vec<u64> = spans.iter().map(|s| s.disruption_us()).collect();
    let max = windows.iter().copied().max().unwrap_or(0);
    let mean = if windows.is_empty() {
        0.0
    } else {
        windows.iter().sum::<u64>() as f64 / windows.len() as f64
    };
    Json::obj([
        ("spans_total", Json::Int(spans.len() as u64)),
        ("spans_completed", Json::Int(completed)),
        ("spans_aborted", Json::Int(aborted)),
        ("disruption_window_us_max", Json::Int(max)),
        ("disruption_window_us_mean", Json::Num(mean)),
    ])
}

/// Writes one run's trace as committed artifacts: JSONL (the `tracecat`
/// input) plus Chrome `trace_event` JSON. Smoke runs write to separate
/// `.smoke.` paths so noisy ad-hoc runs never clobber the committed
/// traces.
fn write_trace(name: &str, smoke: bool, trace: &TraceLog) {
    let dir = streambal_bench::figure::traces_dir();
    let tag = if smoke { ".smoke" } else { "" };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("failed to create {}: {e}", dir.display());
        return;
    }
    for (ext, body) in [
        ("jsonl", trace.to_jsonl()),
        ("json", trace.to_chrome_json()),
    ] {
        let path = dir.join(format!("{name}{tag}.trace.{ext}"));
        match std::fs::write(&path, body) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

/// Scenario 1: a worker death at a planned interval, with and without a
/// later revive decision; a fault-free baseline for the degradation
/// ratio. Also returns the kill run's report, whose trace main exports
/// as the committed `chaos_kill` artifact.
fn worker_loss_scenario(intervals: &[Vec<Key>], reps: usize) -> (Json, EngineReport) {
    let expect = reference_counts(intervals);
    let total: u64 = intervals.iter().map(|v| v.len() as u64).sum();
    let base_config = || EngineConfig {
        n_workers: N_WORKERS,
        max_workers: N_WORKERS,
        spin_work: SPIN,
        window: 100, // retain all state: exact accounting validation
        ..EngineConfig::default()
    };
    let kill_plan = FaultPlan::new(vec![FaultSpec::KillWorker {
        worker: 1,
        at_interval: KILL_AT,
    }]);

    // Fault-free baseline: best-of-reps throughput.
    let healthy = (0..reps)
        .map(|_| run_once("chaos/healthy", base_config(), intervals))
        .max_by(|a, b| a.mean_throughput.total_cmp(&b.mean_throughput))
        .expect("reps >= 1");
    assert_eq!(healthy.processed, total, "healthy run lost tuples");
    assert_accounted("chaos/healthy", &healthy, &expect);
    assert!(healthy.faults.is_empty(), "healthy run recorded faults");

    // The kill, no re-provisioning: the run ends degraded. Loss varies
    // with what was in flight at the kill; report the spread.
    let mut lost_range = (u64::MAX, 0u64);
    let mut kill_best: Option<EngineReport> = None;
    for _ in 0..reps {
        let r = run_once(
            "chaos/kill",
            EngineConfig {
                fault_plan: kill_plan.clone(),
                ..base_config()
            },
            intervals,
        );
        let lost = assert_accounted("chaos/kill", &r, &expect);
        assert!(lost > 0, "a mid-run kill must lose the held window state");
        lost_range = (lost_range.0.min(lost), lost_range.1.max(lost));
        if kill_best
            .as_ref()
            .is_none_or(|b| r.mean_throughput > b.mean_throughput)
        {
            kill_best = Some(r);
        }
    }
    let kill = kill_best.expect("reps >= 1");
    assert!(
        kill.faults.contains(&FaultEvent::WorkerDead { worker: 1 }),
        "kill did not fire: {:?}",
        kill.faults
    );

    // The kill plus a revive decision: the dead slot is re-provisioned
    // REVIVE_AT - KILL_AT intervals after the death.
    let revive = run_once(
        "chaos/revive",
        EngineConfig {
            fault_plan: kill_plan.clone(),
            elasticity: Box::new(FixedSchedule::scale_out_at(REVIVE_AT)),
            ..base_config()
        },
        intervals,
    );
    let revive_lost = assert_accounted("chaos/revive", &revive, &expect);
    assert!(
        revive
            .faults
            .contains(&FaultEvent::SlotRevived { worker: 1 }),
        "revive did not fire: {:?}",
        revive.faults
    );

    let ratio = kill.mean_throughput / healthy.mean_throughput;
    println!("  healthy        mean {:>9.0} t/s", healthy.mean_throughput);
    println!(
        "  kill w1@{KILL_AT}      mean {:>9.0} t/s  ratio {ratio:.3}  lost {}..{} of {total} tuples",
        kill.mean_throughput, lost_range.0, lost_range.1,
    );
    println!(
        "  + revive@{REVIVE_AT}    mean {:>9.0} t/s  degraded window {} intervals  lost {revive_lost}",
        revive.mean_throughput,
        REVIVE_AT - KILL_AT,
    );
    let doc = Json::obj([
        ("kill_interval", Json::Int(KILL_AT)),
        ("revive_interval", Json::Int(REVIVE_AT)),
        ("fed_tuples", Json::Int(total)),
        (
            "healthy_mean_tuples_per_sec",
            Json::Num(healthy.mean_throughput),
        ),
        ("kill_mean_tuples_per_sec", Json::Num(kill.mean_throughput)),
        ("degraded_throughput_ratio", Json::Num(ratio)),
        ("lost_tuples_min", Json::Int(lost_range.0)),
        ("lost_tuples_max", Json::Int(lost_range.1)),
        (
            "lost_fraction_max",
            Json::Num(lost_range.1 as f64 / total as f64),
        ),
        (
            "revive_mean_tuples_per_sec",
            Json::Num(revive.mean_throughput),
        ),
        ("revive_lost_tuples", Json::Int(revive_lost)),
        (
            // How long the topology ran a worker short: the revive is
            // scheduled, so this is the plan's recovery window, and the
            // SlotRevived assertion above proves it was honored.
            "recovery_window_intervals",
            Json::Int(REVIVE_AT - KILL_AT),
        ),
        ("spans", span_metrics(&kill)),
        ("reps", Json::Int(reps as u64)),
    ]);
    (doc, kill)
}

/// Scenario 2: an aborted migration. Stalling two workers past the op
/// deadline (with channels deep enough that the source never blocks on
/// the sleeping workers) wedges any migration touching them: the
/// controller retries once, aborts, rolls routing back, and re-installs
/// collected state. The stalled workers wake into a closed epoch and
/// their late extractions are absorbed/re-homed. All of it must be
/// lossless. Also returns the stalled run's report for the committed
/// `chaos_rollback` trace artifact.
fn rollback_scenario(intervals: &[Vec<Key>], reps: usize) -> (Json, EngineReport) {
    let expect = reference_counts(intervals);
    let total: u64 = intervals.iter().map(|v| v.len() as u64).sum();
    let config = |plan: FaultPlan| EngineConfig {
        n_workers: N_WORKERS,
        max_workers: N_WORKERS,
        spin_work: SPIN,
        window: 100,
        // Deep channels: the stalled workers' queues must absorb the
        // feed so the *source* keeps pacing intervals forward — the op
        // deadline's interval clock is what expires the wedged op.
        channel_capacity: 1 << 16,
        fault_plan: plan,
        op_deadline_intervals: 1,
        op_deadline: Duration::from_millis(200),
        round_deadline_intervals: 1,
        round_deadline: Duration::from_millis(200),
        ..EngineConfig::default()
    };
    let stall_plan = FaultPlan::new(vec![
        FaultSpec::StallWorker {
            worker: 1,
            at_interval: 1,
            ms: 1_200,
        },
        FaultSpec::StallWorker {
            worker: 2,
            at_interval: 1,
            ms: 1_200,
        },
    ]);

    let healthy = (0..reps)
        .map(|_| {
            run_once(
                "chaos/rollback-healthy",
                config(FaultPlan::none()),
                intervals,
            )
        })
        .min_by_key(|r| r.wall)
        .expect("reps >= 1");
    assert_eq!(healthy.processed, total, "healthy run lost tuples");

    let mut stalled_best: Option<EngineReport> = None;
    for _ in 0..reps {
        let r = run_once("chaos/rollback", config(stall_plan.clone()), intervals);
        assert!(
            r.lost_tuples.is_empty(),
            "rollback must be lossless, lost: {:?}",
            r.lost_tuples
        );
        assert_eq!(r.processed, total, "rollback run lost tuples");
        assert_accounted("chaos/rollback", &r, &expect);
        if stalled_best.as_ref().is_none_or(|b| r.wall < b.wall) {
            stalled_best = Some(r);
        }
    }
    let stalled = stalled_best.expect("reps >= 1");

    let retries = count_events(&stalled, |f| matches!(f, FaultEvent::OpRetried { .. }));
    let aborts = count_events(&stalled, |f| matches!(f, FaultEvent::OpAborted { .. }));
    let absorbed = count_events(&stalled, |f| {
        matches!(f, FaultEvent::StaleEpochAbsorbed { .. })
    });
    let timed_out_rounds =
        count_events(&stalled, |f| matches!(f, FaultEvent::RoundTimedOut { .. }));
    let drops = count_events(&stalled, |f| {
        matches!(
            f,
            FaultEvent::InjectedDrop {
                kind: CtlKind::PauseAck,
                ..
            }
        )
    });
    let _ = drops; // stall plans drop nothing; kept for symmetry when tuning
    let overhead = stalled.wall.as_secs_f64() / healthy.wall.as_secs_f64();
    println!("  healthy        wall {:>7.3}s", healthy.wall.as_secs_f64());
    println!(
        "  stall w1,w2    wall {:>7.3}s  overhead {overhead:.2}x  \
         retries {retries}  aborts {aborts}  stale absorbed {absorbed}  rounds timed out {timed_out_rounds}",
        stalled.wall.as_secs_f64(),
    );
    if aborts == 0 {
        println!(
            "  note: no abort fired this run (migrations dodged the stalled workers); \
             rollback cost reflects retries only"
        );
    }
    let doc = Json::obj([
        // String echo, not a numeric key: the stall length is a plan
        // parameter, and a numeric `*_ms` key would gate as wall time.
        ("stall_plan", Json::str("w1+w2 sleep 1200ms at interval 1")),
        ("fed_tuples", Json::Int(total)),
        ("healthy_wall_s", Json::Num(healthy.wall.as_secs_f64())),
        ("stalled_wall_s", Json::Num(stalled.wall.as_secs_f64())),
        ("rollback_wall_overhead", Json::Num(overhead)),
        ("op_retries", Json::Int(retries)),
        ("op_aborts", Json::Int(aborts)),
        ("stale_epochs_absorbed", Json::Int(absorbed)),
        ("rounds_timed_out", Json::Int(timed_out_rounds)),
        ("rollback_lost_tuples", Json::Int(0)),
        ("spans", span_metrics(&stalled)),
        ("reps", Json::Int(reps as u64)),
    ]);
    (doc, stalled)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (tuples, reps) = if smoke { (4_000, 1) } else { (20_000, 3) };
    let intervals = make_intervals(tuples);
    let total: u64 = intervals.iter().map(|v| v.len() as u64).sum();
    println!(
        "chaos: fluctuating zipf({ZIPF}) x{INTERVALS} intervals, {total} tuples/run, \
         {N_WORKERS} workers, spin {SPIN}, {reps} reps"
    );

    println!("\nworker loss (kill w1 at interval {KILL_AT}, revive at {REVIVE_AT}):");
    let (worker_loss, kill_report) = worker_loss_scenario(&intervals, reps);

    println!("\nrollback (stall w1+w2 past the op deadline):");
    let (rollback, rollback_report) = rollback_scenario(&intervals, reps);

    write_trace("chaos_kill", smoke, &kill_report.trace);
    write_trace("chaos_rollback", smoke, &rollback_report.trace);

    let doc = Json::obj([
        ("bench", Json::str("chaos")),
        ("workload", Json::str("fluctuating-zipf")),
        ("tuples_per_run", Json::Int(total)),
        ("n_workers", Json::Int(N_WORKERS as u64)),
        ("spin_work", Json::Int(SPIN as u64)),
        ("smoke", Json::Bool(smoke)),
        ("worker_loss", worker_loss),
        ("rollback", rollback),
    ]);
    let path = streambal_bench::figure::results_dir().join(if smoke {
        "chaos.smoke.json"
    } else {
        "chaos.json"
    });
    match write_json(&path, &doc) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
    }
}
