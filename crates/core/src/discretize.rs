//! Value discretization for the compact representation (paper §IV-B).
//!
//! The 6-dimensional vector space is `O(N_D³ · |v_c| · |v_S|)`; to keep
//! `|v_c|` and `|v_S|` small the raw cost/memory values are snapped to a
//! small set of *representative values*. The paper's scheme has two parts:
//!
//! 1. **HLHE** (half-linear-half-exponential) representative generation
//!    with degree `R = 2^r`: linear values `s·R, (s−1)·R, …, R` (where
//!    `s = ⌊max/R⌋`) followed by exponential values `R/2, R/4, …, 2, 1` —
//!    `m = r + s` representatives total.
//! 2. A **greedy holistic assignment** `φ`: processing values in
//!    non-increasing order, each value picks between its two bounding
//!    representatives the one that steers the *accumulated* deviation
//!    `δ = Σ (xᵢ − φ(xᵢ))` toward zero. Under skew (many small values,
//!    few large) the total deviation lands at ≈ 0 (Theorem 3) — unlike
//!    independent nearest-value rounding (Fig. 6a vs 6b).

/// Generates the HLHE representative values for inputs in `[1, max]`,
/// strictly decreasing. `r` is the degree of discretization (`R = 2^r`).
///
/// Returns an empty vector when `max == 0` (nothing to represent).
pub fn hlhe_representatives(max: u64, r: u32) -> Vec<u64> {
    if max == 0 {
        return Vec::new();
    }
    let big_r = 1u64 << r;
    let s = max / big_r;
    let mut reps = Vec::with_capacity(s as usize + r as usize);
    // Linear part: s·R down to R.
    for i in (1..=s).rev() {
        reps.push(i * big_r);
    }
    // Exponential part: R/2, R/4, …, 2, 1 (r values).
    let mut v = big_r / 2;
    while v >= 1 {
        reps.push(v);
        v /= 2;
    }
    // Degenerate domains (max < R): ensure at least the value 1 exists so
    // every positive input has a representative.
    if reps.is_empty() {
        reps.push(1);
    }
    reps
}

/// The greedy deviation-cancelling discretization `φ` (paper Fig. 6b).
///
/// Maps each input to a representative, returning the mapped values in the
/// *original* input order. Inputs of zero stay zero (a zero-cost key needs
/// no representation). All positive inputs are clamped to ≥ 1 by the HLHE
/// premise ("the smallest is at least 1 after normalization").
pub fn discretize(values: &[u64], r: u32) -> Vec<u64> {
    let max = values.iter().copied().max().unwrap_or(0);
    let reps = hlhe_representatives(max, r);
    if reps.is_empty() {
        return vec![0; values.len()];
    }
    // Process in non-increasing value order; ties keep input order so the
    // assignment is deterministic.
    let mut order: Vec<u32> = (0..values.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        values[b as usize]
            .cmp(&values[a as usize])
            .then_with(|| a.cmp(&b))
    });
    let mut out = vec![0u64; values.len()];
    let mut acc: i128 = 0; // accumulated deviation Σ (x − φ(x))
    let y1 = reps[0];
    for idx in order {
        let x = values[idx as usize];
        if x == 0 {
            continue;
        }
        let phi = if x >= y1 {
            y1
        } else {
            // Bounding pair: y_{j−1} > x ≥ y_j. reps is strictly
            // decreasing; partition_point gives first index with rep ≤ x.
            let j = reps.partition_point(|&y| y > x);
            debug_assert!(j > 0 && j < reps.len() || reps[j] <= x);
            let lower = reps[j.min(reps.len() - 1)];
            let upper = reps[j - 1];
            // Pick the candidate minimizing |acc + (x − y)|; ties take the
            // smaller representative (reproduces Fig. 6b exactly).
            let dev_low = (acc + (x as i128 - lower as i128)).abs();
            let dev_up = (acc + (x as i128 - upper as i128)).abs();
            if dev_up < dev_low {
                upper
            } else {
                lower
            }
        };
        acc += x as i128 - phi as i128;
        out[idx as usize] = phi;
    }
    out
}

/// The naive independent rounding `ξ` the paper compares against
/// (Fig. 6a): each value maps to its nearest representative, ties toward
/// the smaller. Same HLHE representative set, no deviation bookkeeping.
pub fn discretize_naive(values: &[u64], r: u32) -> Vec<u64> {
    let max = values.iter().copied().max().unwrap_or(0);
    let reps = hlhe_representatives(max, r);
    if reps.is_empty() {
        return vec![0; values.len()];
    }
    values
        .iter()
        .map(|&x| {
            if x == 0 {
                return 0;
            }
            if x >= reps[0] {
                return reps[0];
            }
            let j = reps.partition_point(|&y| y > x);
            let lower = reps[j.min(reps.len() - 1)];
            let upper = reps[j - 1];
            if upper - x < x - lower {
                upper
            } else {
                lower
            }
        })
        .collect()
}

/// Total signed deviation `δ = Σ (xᵢ − φ(xᵢ))` between originals and their
/// discretized images.
pub fn total_deviation(values: &[u64], mapped: &[u64]) -> i128 {
    values
        .iter()
        .zip(mapped)
        .map(|(&x, &y)| x as i128 - y as i128)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representatives_fig6_example() {
        // r = 2 ⇒ R = 4, max = 8 ⇒ s = 2 ⇒ linear {8, 4}, exp {2, 1}.
        assert_eq!(hlhe_representatives(8, 2), vec![8, 4, 2, 1]);
    }

    #[test]
    fn representatives_count_matches_formula() {
        // m = r + ⌊max/R⌋.
        for r in 0..6u32 {
            for max in [1u64, 7, 64, 1000] {
                let reps = hlhe_representatives(max, r);
                let s = max / (1 << r);
                let expect = (r as u64 + s).max(1);
                assert_eq!(reps.len() as u64, expect, "r={r} max={max}: reps {reps:?}");
            }
        }
    }

    #[test]
    fn representatives_strictly_decreasing_and_end_at_one() {
        let reps = hlhe_representatives(100, 3);
        for w in reps.windows(2) {
            assert!(w[0] > w[1]);
        }
        assert_eq!(*reps.last().unwrap(), 1);
    }

    #[test]
    fn fig6b_walkthrough_exact() {
        // The paper's running example: costs 8,6,3,2,2,1,1,1,1,1 with
        // r = 2. Expected deviations per Fig. 6b: 0, +2, −1, 0, 0, −1,
        // 0, 0, 0, 0 ⇒ φ = 8, 4, 4, 2, 2, 2, 1, 1, 1, 1 and |δ| = 0.
        let values = [8u64, 6, 3, 2, 2, 1, 1, 1, 1, 1];
        let mapped = discretize(&values, 2);
        assert_eq!(mapped, vec![8, 4, 4, 2, 2, 2, 1, 1, 1, 1]);
        assert_eq!(total_deviation(&values, &mapped), 0);
    }

    #[test]
    fn naive_fig6a_has_larger_deviation() {
        // With the paper's piecewise-constant-like independent rounding the
        // deviation accumulates; ours reproduces |δ|=0, naive must be
        // strictly worse on this input.
        let values = [8u64, 6, 3, 2, 2, 1, 1, 1, 1, 1];
        let naive = discretize_naive(&values, 2);
        let greedy = discretize(&values, 2);
        assert!(total_deviation(&values, &naive).abs() > total_deviation(&values, &greedy).abs());
    }

    #[test]
    fn zeros_pass_through() {
        let values = [0u64, 5, 0, 3];
        let mapped = discretize(&values, 1);
        assert_eq!(mapped[0], 0);
        assert_eq!(mapped[2], 0);
        assert!(mapped[1] > 0 && mapped[3] > 0);
    }

    #[test]
    fn empty_and_all_zero_inputs() {
        assert!(discretize(&[], 2).is_empty());
        assert_eq!(discretize(&[0, 0], 2), vec![0, 0]);
        assert!(hlhe_representatives(0, 3).is_empty());
    }

    #[test]
    fn theorem3_skewed_population_near_zero_deviation() {
        // Zipf-ish population: few large values, many small — the premise
        // of Theorem 3. Total deviation should be a vanishing fraction of
        // the total mass for every r.
        let mut values = Vec::new();
        for i in 1..=2000u64 {
            // ~ zipf: value ∝ 1/i, scaled.
            values.push((4000 / i).max(1));
        }
        let total: i128 = values.iter().map(|&v| v as i128).sum();
        for r in [0u32, 1, 2, 3, 5, 8] {
            let mapped = discretize(&values, r);
            let dev = total_deviation(&values, &mapped).abs();
            assert!(
                (dev as f64) < total as f64 * 0.005,
                "r={r}: |δ|={dev} vs total={total}"
            );
        }
    }

    #[test]
    fn greedy_beats_naive_on_random_skew() {
        // Deterministic pseudo-random skewed values.
        let values: Vec<u64> = (0..5000u64)
            .map(|i| {
                let h = streambal_hashring::mix64(i);
                // Skew: mostly small, occasionally large.
                if h % 100 < 90 {
                    1 + h % 8
                } else {
                    64 + h % 1000
                }
            })
            .collect();
        for r in [1u32, 2, 4] {
            let g = total_deviation(&values, &discretize(&values, r)).abs();
            let n = total_deviation(&values, &discretize_naive(&values, r)).abs();
            assert!(g <= n, "r={r}: greedy {g} > naive {n}");
        }
    }

    #[test]
    fn coarser_r_means_fewer_distinct_values() {
        let values: Vec<u64> = (1..=1000u64).collect();
        let distinct = |mapped: &[u64]| {
            let mut v: Vec<u64> = mapped.to_vec();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        let fine = distinct(&discretize(&values, 0));
        let coarse = distinct(&discretize(&values, 6));
        assert!(coarse < fine, "coarse {coarse} vs fine {fine}");
    }

    #[test]
    fn all_mapped_values_are_representatives() {
        let values: Vec<u64> = (1..=500u64).map(|i| i * 3 % 97 + 1).collect();
        let reps = hlhe_representatives(*values.iter().max().unwrap(), 3);
        for &m in &discretize(&values, 3) {
            assert!(reps.contains(&m), "{m} is not a representative");
        }
    }
}
