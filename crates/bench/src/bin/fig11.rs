//! Regenerates the paper's Fig. 11 (see EXPERIMENTS.md).
fn main() {
    let scale = streambal_bench::Scale::from_env();
    print!("{}", streambal_bench::fig11::fig11(scale));
}
