//! The wire tuple.

use streambal_core::Key;

/// Default tag for single-stream topologies.
pub const TAG_DEFAULT: u8 = 0;
/// Left stream of a co-join (e.g. TPC-H orders).
pub const TAG_LEFT: u8 = 1;
/// Right stream of a co-join (e.g. TPC-H lineitems).
pub const TAG_RIGHT: u8 = 2;
/// A partial-aggregate emission (PKG's partial/merge pattern).
pub const TAG_PARTIAL: u8 = 3;

/// A fixed-size key-value tuple.
///
/// `Copy` and 40 bytes: channel transfers never allocate. The two value
/// slots carry operator-specific payloads (e.g. `custkey`/`revenue` for
/// TPC-H lineitems); richer payloads live in operator state, not on the
/// wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tuple {
    /// The partitioning key.
    pub key: Key,
    /// Stream tag ([`TAG_DEFAULT`], [`TAG_LEFT`], …).
    pub tag: u8,
    /// Operator-specific payload.
    pub vals: [u64; 2],
    /// Microseconds since engine start at emission (latency stamping).
    pub emitted_us: u64,
}

impl Tuple {
    /// A bare keyed tuple (word-count style).
    pub fn keyed(key: Key) -> Self {
        Tuple {
            key,
            tag: TAG_DEFAULT,
            vals: [0, 0],
            emitted_us: 0,
        }
    }

    /// A tagged tuple with payload.
    pub fn tagged(key: Key, tag: u8, vals: [u64; 2]) -> Self {
        Tuple {
            key,
            tag,
            vals,
            emitted_us: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let t = Tuple::keyed(Key(5));
        assert_eq!(t.key, Key(5));
        assert_eq!(t.tag, TAG_DEFAULT);
        let j = Tuple::tagged(Key(1), TAG_LEFT, [7, 8]);
        assert_eq!(j.vals, [7, 8]);
        assert_eq!(j.tag, TAG_LEFT);
    }

    #[test]
    fn tuple_is_small() {
        // Keep the wire type within a cache line half; channels copy it.
        assert!(std::mem::size_of::<Tuple>() <= 40);
    }
}
