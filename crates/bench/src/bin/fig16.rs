//! Regenerates the paper's Fig. 16 (see EXPERIMENTS.md).
fn main() {
    let scale = streambal_bench::Scale::from_env();
    print!("{}", streambal_bench::figs_runtime::fig16(scale));
}
