//! String-key interning.
//!
//! Real workloads key tuples by strings (topic words in Social, stock
//! symbols in Stock). The engine routes on `u64` [`Key`]s, so sources
//! intern each string once and route on the dense id thereafter — the
//! router hot path never hashes strings.
//!
//! The interner is deliberately append-only: ids stay stable for the
//! lifetime of the stream, which the routing table and migration plans
//! rely on (a key's identity must never change while its state lives).

use streambal_hashring::FxHashMap;

use crate::key::Key;

/// Append-only two-way map between strings and dense [`Key`]s.
#[derive(Debug, Default, Clone)]
pub struct KeyInterner {
    by_name: FxHashMap<Box<str>, Key>,
    names: Vec<Box<str>>,
}

impl KeyInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        KeyInterner::default()
    }

    /// Interns `name`, returning its stable key (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Key {
        if let Some(&k) = self.by_name.get(name) {
            return k;
        }
        let k = Key(self.names.len() as u64);
        let owned: Box<str> = name.into();
        self.names.push(owned.clone());
        self.by_name.insert(owned, k);
        k
    }

    /// Looks up a key without interning.
    pub fn get(&self, name: &str) -> Option<Key> {
        self.by_name.get(name).copied()
    }

    /// Resolves a key back to its string, if it was interned here.
    pub fn resolve(&self, key: Key) -> Option<&str> {
        self.names.get(key.raw() as usize).map(|s| &**s)
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = KeyInterner::new();
        let a = i.intern("rustlang");
        let b = i.intern("rustlang");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let mut i = KeyInterner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_eq!(a, Key(0));
        assert_eq!(b, Key(1));
        // Re-interning later keeps the original id.
        i.intern("gamma");
        assert_eq!(i.intern("alpha"), Key(0));
    }

    #[test]
    fn two_way_resolution() {
        let mut i = KeyInterner::new();
        let k = i.intern("msft");
        assert_eq!(i.resolve(k), Some("msft"));
        assert_eq!(i.get("msft"), Some(k));
        assert_eq!(i.get("aapl"), None);
        assert_eq!(i.resolve(Key(99)), None);
    }

    #[test]
    fn many_keys() {
        let mut i = KeyInterner::new();
        for n in 0..10_000 {
            i.intern(&format!("word{n}"));
        }
        assert_eq!(i.len(), 10_000);
        assert_eq!(i.resolve(Key(1234)), Some("word1234"));
    }
}
