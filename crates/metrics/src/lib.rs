//! Lightweight measurement substrate for the `streambal` workspace.
//!
//! The paper reports five metric families (§V *Evaluation Metrics*):
//! workload skewness, migration cost, throughput, average plan-generation
//! time, and processing latency. This crate provides the raw instruments
//! those reports are built from, with no external dependencies beyond
//! `parking_lot`:
//!
//! * [`Counter`] / [`RateMeter`] — lock-free tuple and byte counting, with
//!   windowed rates for throughput timelines (Figs. 13–16).
//! * [`Histogram`] — a log-bucketed (HDR-flavoured) histogram for latency
//!   quantiles (Fig. 13b).
//! * [`Cdf`] — exact empirical CDFs for the skewness distribution plots
//!   (Fig. 7).
//! * [`TimeSeries`] — `(tick, value)` recording for the timeline figures
//!   (Figs. 15, 16).
//! * [`Stopwatch`] / [`OnlineStats`] — wall-time measurement and running
//!   mean/min/max for plan-generation times (Figs. 8a, 9a, 10a, 12a).

pub mod cdf;
pub mod counter;
pub mod histogram;
pub mod stats;
pub mod timeseries;

pub use cdf::Cdf;
pub use counter::{Counter, RateMeter};
pub use histogram::Histogram;
pub use stats::{OnlineStats, Stopwatch};
pub use timeseries::TimeSeries;
