//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Admissible element counts for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// A strategy yielding `Vec`s whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn vec_respects_size_forms() {
        let mut rng = case_rng(3);
        for _ in 0..200 {
            let fixed = vec(0u32..5, 4usize).generate(&mut rng);
            assert_eq!(fixed.len(), 4);
            let ranged = vec(0u32..5, 0..3).generate(&mut rng);
            assert!(ranged.len() < 3);
        }
    }
}
