//! Engine-based figures: 13 (throughput/latency vs f), 14 (real-workload
//! throughput), 15 (scale-out timeline), 16 (TPC-H Q5 timeline).
//!
//! All strategies within one figure consume byte-identical tuple
//! sequences (pre-generated per configuration), so differences are purely
//! due to routing and migration behaviour.

use streambal_baselines::{
    HashPartitioner, PkgPartitioner, ReadjConfig, ReadjPartitioner, ShufflePartitioner,
};
use streambal_core::{Key, Partitioner, RebalanceStrategy};
use streambal_elastic::FixedSchedule;
use streambal_hashring::FxHashMap;
use streambal_runtime::{
    CoJoinOp, Collector, Engine, EngineConfig, EngineReport, SumCollector, Tuple,
    WindowedSelfJoinOp, WordCountOp, TAG_LEFT, TAG_RIGHT,
};
use streambal_workloads::{
    FluctuatingWorkload, SocialWorkload, StockWorkload, TpchEvent, TpchGen, TpchParams,
};

use crate::figure::{Figure, Table};
use crate::{core_partitioner, Defaults, Scale};

/// Runtime experiment sizing.
#[derive(Debug, Clone, Copy)]
pub struct RtParams {
    /// Downstream workers.
    pub nd: usize,
    /// Tuples per interval.
    pub tuples: u64,
    /// Intervals.
    pub intervals: usize,
    /// Busy-work per tuple.
    pub spin: u32,
    /// State window.
    pub window: usize,
    /// Data-plane batch size (tuples per `TupleBatch` send).
    pub batch: usize,
}

impl RtParams {
    /// Sizing at `scale`.
    pub fn at(scale: Scale) -> Self {
        // spin is sized so the workers (not the source) are the
        // bottleneck — the engine must be CPU-saturated downstream for
        // imbalance to cost throughput, as in the paper's setup. The
        // worker count matches the sandbox's small core count: with more
        // workers than cores the OS scheduler time-shares and masks
        // imbalance (see EXPERIMENTS.md).
        RtParams {
            nd: 2,
            tuples: scale.pick(15_000, 60_000),
            intervals: scale.pick(6, 12),
            spin: scale.pick(6_000, 8_000),
            window: 5,
            batch: EngineConfig::default().batch_size,
        }
    }

    fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            n_workers: self.nd,
            max_workers: self.nd,
            spin_work: self.spin,
            window: self.window,
            batch_size: self.batch,
            ..EngineConfig::default()
        }
    }
}

/// The strategies compared in the runtime figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtStrategy {
    /// Plain hash ("Storm").
    Storm,
    /// Gedik's Readj at the given θmax.
    Readj,
    /// The paper's Mixed at the given θmax.
    Mixed,
    /// MinTable at the given θmax.
    MinTable,
    /// PKG two-choice with partial/merge.
    Pkg,
    /// Shuffle ("Ideal").
    Ideal,
}

impl RtStrategy {
    /// Figure-legend name.
    pub fn name(self) -> &'static str {
        match self {
            RtStrategy::Storm => "Storm",
            RtStrategy::Readj => "Readj",
            RtStrategy::Mixed => "Mixed",
            RtStrategy::MinTable => "MinTable",
            RtStrategy::Pkg => "PKG",
            RtStrategy::Ideal => "Ideal",
        }
    }

    fn partitioner(self, rt: &RtParams, theta: f64) -> Box<dyn Partitioner> {
        let d = Defaults {
            nd: rt.nd,
            window: rt.window,
            theta_max: theta,
            ..Defaults::at(Scale::Quick)
        };
        match self {
            RtStrategy::Storm => Box::new(HashPartitioner::new(rt.nd)),
            RtStrategy::Readj => Box::new(ReadjPartitioner::new(
                rt.nd,
                rt.window,
                ReadjConfig {
                    theta_max: theta,
                    sigma: 0.01,
                    max_actions: 512,
                },
            )),
            RtStrategy::Mixed => core_partitioner(&d, RebalanceStrategy::Mixed),
            RtStrategy::MinTable => core_partitioner(&d, RebalanceStrategy::MinTable),
            RtStrategy::Pkg => Box::new(PkgPartitioner::new(rt.nd)),
            RtStrategy::Ideal => Box::new(ShufflePartitioner::new(rt.nd)),
        }
    }
}

/// Runs a word-count topology over pre-generated keyed intervals.
pub fn run_wordcount(
    rt: &RtParams,
    strategy: RtStrategy,
    theta: f64,
    intervals: &[Vec<Key>],
    scale_out_at: Option<u64>,
) -> EngineReport {
    let feed: Vec<Vec<Key>> = intervals.to_vec();
    let mut config = rt.engine_config();
    if let Some(iv) = scale_out_at {
        config.max_workers = rt.nd + 1;
        config.elasticity = Box::new(FixedSchedule::scale_out_at(iv));
    }
    let pkg = strategy == RtStrategy::Pkg;
    Engine::run(
        config,
        strategy.partitioner(rt, theta),
        move |_| {
            if pkg {
                Box::new(WordCountOp::with_partial_emission(64))
            } else {
                Box::new(WordCountOp::new())
            }
        },
        move |iv| {
            feed.get(iv as usize)
                .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
        },
        pkg.then(|| Box::new(SumCollector::new()) as Box<dyn Collector>),
    )
}

/// Runs a windowed self-join topology (the Stock workload's shape).
pub fn run_selfjoin(
    rt: &RtParams,
    strategy: RtStrategy,
    theta: f64,
    intervals: &[Vec<Key>],
    scale_out_at: Option<u64>,
) -> EngineReport {
    let feed: Vec<Vec<Key>> = intervals.to_vec();
    let mut config = rt.engine_config();
    if let Some(iv) = scale_out_at {
        config.max_workers = rt.nd + 1;
        config.elasticity = Box::new(FixedSchedule::scale_out_at(iv));
    }
    Engine::run(
        config,
        strategy.partitioner(rt, theta),
        |_| Box::new(WindowedSelfJoinOp::new()),
        move |iv| {
            feed.get(iv as usize).map(|ks| {
                ks.iter()
                    .enumerate()
                    .map(|(i, &k)| Tuple::tagged(k, 0, [i as u64, 0]))
                    .collect()
            })
        },
        None,
    )
}

/// Pre-generates Zipf interval key sequences (identical across
/// strategies). The fluctuation reference assignment is the static hash
/// map, as the generator needs *some* destination oracle.
pub fn zipf_intervals(rt: &RtParams, k: usize, z: f64, f: f64, seed: u64) -> Vec<Vec<Key>> {
    let mut w = FluctuatingWorkload::new(k, z, rt.tuples, f, seed);
    let mut hash = HashPartitioner::new(rt.nd);
    let mut out = Vec::with_capacity(rt.intervals);
    for i in 0..rt.intervals {
        if i > 0 {
            w.advance(rt.nd, |key| hash.route(key));
        }
        out.push(w.tuples());
    }
    out
}

/// Pre-generates Social interval key sequences.
pub fn social_intervals(rt: &RtParams, scale: Scale, seed: u64) -> Vec<Vec<Key>> {
    let vocab = scale.pick(20_000, 180_000);
    let mut w = SocialWorkload::new(vocab, rt.tuples, 0.03, seed);
    let mut out = Vec::with_capacity(rt.intervals);
    for i in 0..rt.intervals {
        if i > 0 {
            w.advance();
        }
        out.push(w.tuples());
    }
    out
}

/// Pre-generates Stock interval key sequences. Bursts are few and large
/// so they land asymmetrically even at small worker counts (with many
/// small bursts, symmetry across 2 workers cancels the imbalance the
/// experiment needs).
pub fn stock_intervals(rt: &RtParams, seed: u64) -> Vec<Vec<Key>> {
    let mut w = StockWorkload::new(
        streambal_workloads::stock::PAPER_N_STOCKS,
        rt.tuples,
        3,
        60,
        seed,
    );
    let mut out = Vec::with_capacity(rt.intervals);
    for i in 0..rt.intervals {
        if i > 0 {
            w.advance();
        }
        out.push(w.tuples());
    }
    out
}

/// Fig. 13 — throughput and latency vs fluctuation rate `f`.
pub fn fig13(scale: Scale) -> Figure {
    let rt = RtParams::at(scale);
    let fs: Vec<f64> = scale.pick(vec![0.1, 0.9, 1.7], vec![0.1, 0.5, 0.9, 1.3, 1.7, 2.0]);
    let strategies = [
        RtStrategy::Storm,
        RtStrategy::Readj,
        RtStrategy::Mixed,
        RtStrategy::Ideal,
    ];
    let theta = 0.08;
    let k = scale.pick(5_000, 20_000);
    let mut thr: Vec<Vec<f64>> = vec![vec![]; strategies.len()];
    let mut lat: Vec<Vec<f64>> = vec![vec![]; strategies.len()];
    for &f in &fs {
        let intervals = zipf_intervals(&rt, k, 0.85, f, 1000 + (f * 10.0) as u64);
        for (i, &s) in strategies.iter().enumerate() {
            let r = run_wordcount(&rt, s, theta, &intervals, None);
            thr[i].push(r.mean_throughput / 1e3);
            lat[i].push(r.latency_us.mean() / 1e3);
        }
    }
    let cols: Vec<String> = fs.iter().map(|f| format!("f={f}")).collect();
    let mut fig = Figure::new("fig13");
    let mut a = Table::new(
        "Fig 13(a): throughput (10^3 tuples/s) vs f",
        "strategy",
        cols.clone(),
        9,
        1,
    );
    for (i, &s) in strategies.iter().enumerate() {
        a.row(s.name(), &thr[i]);
    }
    fig.push(a);
    let mut b = Table::new(
        "Fig 13(b): mean processing latency (ms) vs f",
        "strategy",
        cols,
        9,
        2,
    );
    for (i, &s) in strategies.iter().enumerate() {
        b.row(s.name(), &lat[i]);
    }
    fig.push(b);
    fig
}

/// Fig. 14 — throughput on the Social (word count) and Stock (self-join)
/// workloads across `θmax` settings.
pub fn fig14(scale: Scale) -> Figure {
    let rt = RtParams::at(scale);
    let thetas = [0.02, 0.08, 0.15, 0.3];
    let cols: Vec<String> = thetas.iter().map(|t| format!("θ={t}")).collect();
    let mut fig = Figure::new("fig14");

    let mut a = Table::new(
        "Fig 14(a): throughput (10^3 tuples/s) on Social data",
        "strategy",
        cols.clone(),
        9,
        1,
    );
    let social = social_intervals(&rt, scale, 7);
    for s in [
        RtStrategy::Storm,
        RtStrategy::Readj,
        RtStrategy::Mixed,
        RtStrategy::Pkg,
        RtStrategy::MinTable,
    ] {
        let mut vals = Vec::new();
        for &theta in &thetas {
            let r = run_wordcount(&rt, s, theta, &social, None);
            vals.push(r.mean_throughput / 1e3);
        }
        a.row(s.name(), &vals);
    }
    fig.push(a);

    let mut b = Table::new(
        "Fig 14(b): throughput (10^3 tuples/s) on Stock data (join: no PKG)",
        "strategy",
        cols,
        9,
        1,
    );
    let stock = stock_intervals(&rt, 9);
    for s in [
        RtStrategy::Storm,
        RtStrategy::Readj,
        RtStrategy::Mixed,
        RtStrategy::MinTable,
    ] {
        let mut vals = Vec::new();
        for &theta in &thetas {
            let r = run_selfjoin(&rt, s, theta, &stock, None);
            vals.push(r.mean_throughput / 1e3);
        }
        b.row(s.name(), &vals);
    }
    fig.push(b);
    fig
}

/// Fig. 15 — throughput timeline during scale-out (one worker added
/// mid-run) on Social and Stock.
pub fn fig15(scale: Scale) -> Figure {
    let mut rt = RtParams::at(scale);
    rt.intervals = scale.pick(8, 16);
    let add_at = (rt.intervals / 3) as u64;
    let mut fig = Figure::new("fig15");
    for (name, intervals, join) in [
        ("Social", social_intervals(&rt, scale, 21), false),
        ("Stock", stock_intervals(&rt, 22), true),
    ] {
        let cols: Vec<String> = (0..rt.intervals).map(|i| format!("iv{i}")).collect();
        let mut t = Table::new(
            format!(
                "Fig 15 ({name}): interval throughput (10^3 t/s), +1 worker after interval {add_at}"
            ),
            "strategy",
            cols,
            7,
            0,
        );
        let mut runs: Vec<(String, EngineReport)> = Vec::new();
        for &theta in &[0.1, 0.2] {
            for s in [RtStrategy::Mixed, RtStrategy::Readj] {
                let r = if join {
                    run_selfjoin(&rt, s, theta, &intervals, Some(add_at))
                } else {
                    run_wordcount(&rt, s, theta, &intervals, Some(add_at))
                };
                runs.push((format!("{} θ={theta}", s.name()), r));
            }
        }
        let storm = if join {
            run_selfjoin(&rt, RtStrategy::Storm, 0.1, &intervals, Some(add_at))
        } else {
            run_wordcount(&rt, RtStrategy::Storm, 0.1, &intervals, Some(add_at))
        };
        runs.push(("Storm".into(), storm));
        if !join {
            let pkg = run_wordcount(&rt, RtStrategy::Pkg, 0.1, &intervals, Some(add_at));
            runs.push(("PKG".into(), pkg));
        }
        for (label, r) in &runs {
            let vals: Vec<f64> = r
                .interval_throughput
                .points()
                .iter()
                .map(|&(_, v)| v / 1e3)
                .collect();
            t.row(label.clone(), &vals);
        }
        fig.push(t);
    }
    fig
}

/// The Q5 downstream aggregation: joins the dimension tables, filters one
/// region, sums revenue per nation.
pub struct Q5Collector {
    nation_of_customer: Vec<u8>,
    nation_of_supplier: Vec<u8>,
    region: u8,
    revenue: FxHashMap<u8, u64>,
}

impl Q5Collector {
    /// Builds from the generator's dimension tables.
    pub fn new(gen: &TpchGen, region: u8) -> Self {
        Q5Collector {
            nation_of_customer: (0..gen.params().customers)
                .map(|c| gen.nation_of_customer(c as u64))
                .collect(),
            nation_of_supplier: (0..gen.params().suppliers)
                .map(|s| gen.nation_of_supplier(s as u64))
                .collect(),
            region,
            revenue: FxHashMap::default(),
        }
    }
}

impl Collector for Q5Collector {
    fn collect(&mut self, tuple: &Tuple) {
        // Joined tuple: key = suppkey, vals = [revenue, custkey].
        let sn = self.nation_of_supplier[tuple.key.raw() as usize];
        let cn = self.nation_of_customer[tuple.vals[1] as usize];
        if sn == cn && streambal_workloads::tpch::REGION_OF_NATION[sn as usize] == self.region {
            *self.revenue.entry(sn).or_insert(0) += tuple.vals[0];
        }
    }

    fn result(&mut self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.revenue.iter().map(|(&n, &r)| (n as u64, r)).collect();
        v.sort_unstable();
        v
    }
}

/// Converts TPC-H events to wire tuples keyed by the stream-side join key.
pub fn tpch_tuples(events: &[TpchEvent]) -> Vec<Tuple> {
    events
        .iter()
        .map(|e| match *e {
            TpchEvent::Order {
                orderkey,
                custkey,
                orderdate,
            } => Tuple::tagged(Key(orderkey), TAG_LEFT, [custkey, orderdate as u64]),
            TpchEvent::Lineitem {
                orderkey,
                suppkey,
                revenue_cents,
            } => Tuple::tagged(Key(orderkey), TAG_RIGHT, [suppkey, revenue_cents]),
        })
        .collect()
}

/// Runs the Q5 pipeline (order⋈lineitem join workers + Q5 aggregation)
/// over pre-generated per-interval events.
pub fn run_q5(
    rt: &RtParams,
    strategy: RtStrategy,
    theta: f64,
    gen: &TpchGen,
    intervals: &[Vec<TpchEvent>],
    region: u8,
) -> EngineReport {
    let feed: Vec<Vec<Tuple>> = intervals.iter().map(|e| tpch_tuples(e)).collect();
    Engine::run(
        rt.engine_config(),
        strategy.partitioner(rt, theta),
        |_| Box::new(CoJoinOp::new()),
        move |iv| feed.get(iv as usize).cloned(),
        Some(Box::new(Q5Collector::new(gen, region))),
    )
}

/// Fig. 16 — TPC-H Q5 throughput timeline with a distribution change
/// every few intervals, for `θmax ∈ {0.1, 0.2}`.
pub fn fig16(scale: Scale) -> Figure {
    let mut rt = RtParams::at(scale);
    rt.intervals = scale.pick(9, 16);
    let region = 2; // ASIA
    let change_every = 3;
    let mut gen = TpchGen::new(TpchParams {
        customers: scale.pick(3_000, 15_000),
        suppliers: scale.pick(400, 1_000),
        orders_per_interval: scale.pick(4_000, 15_000),
        z: 0.8,
        max_lineitems: 7,
        seed: 5,
    });
    let mut intervals = Vec::with_capacity(rt.intervals);
    for i in 0..rt.intervals {
        if i > 0 && i % change_every == 0 {
            gen.reshuffle(); // the paper's 15-minute distribution change
        }
        intervals.push(gen.interval_events());
    }
    let mut fig = Figure::new("fig16");
    for &theta in &[0.1, 0.2] {
        let cols: Vec<String> = (0..rt.intervals).map(|i| format!("iv{i}")).collect();
        let mut t = Table::new(
            format!(
                "Fig 16 (θmax={theta}): Q5 interval throughput (10^3 t/s), reshuffle every {change_every} intervals"
            ),
            "strategy",
            cols,
            7,
            0,
        );
        for s in [
            RtStrategy::Mixed,
            RtStrategy::Readj,
            RtStrategy::Storm,
            RtStrategy::MinTable,
        ] {
            let r = run_q5(&rt, s, theta, &gen, &intervals, region);
            let vals: Vec<f64> = r
                .interval_throughput
                .points()
                .iter()
                .map(|&(_, v)| v / 1e3)
                .collect();
            t.row(s.name(), &vals);
        }
        fig.push(t);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_rt() -> RtParams {
        RtParams {
            nd: 3,
            tuples: 3_000,
            intervals: 3,
            spin: 50,
            window: 10,
            batch: 32,
        }
    }

    #[test]
    fn wordcount_runs_for_every_strategy() {
        let rt = tiny_rt();
        let intervals = zipf_intervals(&rt, 500, 0.9, 0.5, 3);
        for s in [
            RtStrategy::Storm,
            RtStrategy::Mixed,
            RtStrategy::Readj,
            RtStrategy::Pkg,
            RtStrategy::Ideal,
        ] {
            let r = run_wordcount(&rt, s, 0.1, &intervals, None);
            let expect: u64 = intervals.iter().map(|v| v.len() as u64).sum();
            assert_eq!(r.processed, expect, "{} lost tuples", s.name());
        }
    }

    #[test]
    fn q5_pipeline_matches_reference() {
        let rt = tiny_rt();
        let mut gen = TpchGen::new(TpchParams {
            customers: 300,
            suppliers: 60,
            orders_per_interval: 800,
            z: 0.8,
            max_lineitems: 5,
            seed: 17,
        });
        let intervals: Vec<Vec<TpchEvent>> =
            (0..rt.intervals).map(|_| gen.interval_events()).collect();
        let all: Vec<TpchEvent> = intervals.iter().flatten().copied().collect();
        let region = 2u8;
        let expect = gen.reference_q5(&all, region, 0, rt.intervals as u32);
        let r = run_q5(&rt, RtStrategy::Mixed, 0.05, &gen, &intervals, region);
        let got: std::collections::BTreeMap<u8, u64> = r
            .collector_result
            .iter()
            .map(|&(n, v)| (n as u8, v))
            .collect();
        assert_eq!(got, expect, "streaming Q5 must equal batch reference");
    }

    #[test]
    fn selfjoin_runs_with_migrations() {
        let rt = tiny_rt();
        let intervals = stock_intervals(&rt, 4);
        let r = run_selfjoin(&rt, RtStrategy::Mixed, 0.05, &intervals, None);
        let expect: u64 = intervals.iter().map(|v| v.len() as u64).sum();
        assert_eq!(r.processed, expect);
    }
}
