//! Round-robin shuffle — the "Ideal" bound of Fig. 13.
//!
//! Ignoring keys entirely yields perfect load spread, but breaks key
//! grouping: stateful aggregation is impossible. The paper plots it as the
//! theoretical throughput/latency limit that key-aware schemes approach.

use streambal_core::{IntervalStats, Key, RebalanceOutcome, TaskId};

use crate::{Partitioner, RoutingView};

/// Key-oblivious round-robin router.
#[derive(Debug)]
pub struct ShufflePartitioner {
    n_tasks: usize,
    next: usize,
}

impl ShufflePartitioner {
    /// Creates the shuffler over `n_tasks` instances.
    pub fn new(n_tasks: usize) -> Self {
        assert!(n_tasks > 0, "need at least one task");
        ShufflePartitioner { n_tasks, next: 0 }
    }
}

impl Partitioner for ShufflePartitioner {
    fn name(&self) -> String {
        "Ideal".into()
    }

    fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    #[inline]
    fn route(&mut self, _key: Key) -> TaskId {
        let d = self.next;
        self.next = (self.next + 1) % self.n_tasks;
        TaskId::from(d)
    }

    fn route_batch(&mut self, keys: &[Key], out: &mut Vec<TaskId>) {
        // Key-oblivious: emit the cursor sequence directly.
        out.clear();
        out.reserve(keys.len());
        let mut d = self.next;
        for _ in keys {
            out.push(TaskId::from(d));
            d = (d + 1) % self.n_tasks;
        }
        self.next = d;
    }

    fn end_interval(&mut self, _stats: IntervalStats) -> Option<RebalanceOutcome> {
        None
    }

    fn add_task(&mut self) -> TaskId {
        self.n_tasks += 1;
        TaskId::from(self.n_tasks - 1)
    }

    fn scale_in(&mut self, victim: TaskId, _live: &[Key]) {
        assert!(self.n_tasks > 1, "cannot scale in below one task");
        assert_eq!(
            victim.index(),
            self.n_tasks - 1,
            "scale-in retires the highest-numbered task"
        );
        self.n_tasks -= 1;
        self.next %= self.n_tasks;
    }

    fn routing_view(&self) -> RoutingView {
        RoutingView::RoundRobin {
            n_tasks: self.n_tasks,
        }
    }

    fn preserves_key_semantics(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_even_distribution() {
        let mut p = ShufflePartitioner::new(4);
        let mut counts = [0usize; 4];
        for k in 0..4000u64 {
            counts[p.route(Key(k % 3)).index()] += 1; // skewed keys, even spread
        }
        assert_eq!(counts, [1000; 4]);
    }

    #[test]
    fn scale_out() {
        let mut p = ShufflePartitioner::new(2);
        assert_eq!(p.add_task(), TaskId(2));
        assert_eq!(p.n_tasks(), 3);
        let hits: Vec<usize> = (0..3).map(|_| p.route(Key(0)).index()).collect();
        assert_eq!(hits, vec![0, 1, 2]);
    }

    #[test]
    fn scale_in_shrinks_the_cycle() {
        let mut p = ShufflePartitioner::new(3);
        p.route(Key(0));
        p.route(Key(0)); // cursor at 2 — about to point at the victim
        p.scale_in(TaskId(2), &[]);
        assert_eq!(p.n_tasks(), 2);
        let hits: Vec<usize> = (0..4).map(|_| p.route(Key(0)).index()).collect();
        assert_eq!(hits, vec![0, 1, 0, 1], "cursor wrapped into range");
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_tasks_panics() {
        ShufflePartitioner::new(0);
    }
}
