//! `tracecat` — the flight-recorder trace analyzer.
//!
//! ```text
//! tracecat <trace.jsonl>...           # per-span phase breakdowns, dip
//!                                     # attribution, text timeline
//! tracecat --check <trace.jsonl>...   # schema + span-integrity gate
//! ```
//!
//! Reads the JSONL export of [`streambal_trace::TraceLog::to_jsonl`] (one
//! JSON object per line, parsed with the hand-rolled reader in
//! `streambal_bench::json`) back into a [`TraceLog`] and reports:
//!
//! * **Spans** — one line per protocol op (id = epoch) with its outcome,
//!   total disruption window, and per-phase durations, so "where did the
//!   scale-out's 40 ms go" reads straight off the report.
//! * **Dip attribution** — each interval whose fed-tuple count dips below
//!   [`DIP_FRACTION`] × the run median is joined against the spans and
//!   faults overlapping its time window: the dip names its culprit.
//! * **Timeline** — the control-plane story in time order (span events,
//!   faults, marks, interval ends); data-plane flushes are summarized,
//!   not listed.
//!
//! `--check` validates every line against the schema and runs
//! [`TraceLog::check_integrity`], exiting nonzero on any violation — CI
//! runs it over the committed `traces/` artifacts so a malformed or
//! protocol-violating trace cannot land.

use std::process::ExitCode;

use streambal_bench::json::Json;
use streambal_trace::{EventKind, OpLabel, Outcome, Phase, ThreadLabel, TraceEvent, TraceLog};

/// An interval is a "dip" when its fed tuples fall below this fraction
/// of the run's median interval.
const DIP_FRACTION: f64 = 0.85;

fn usage() -> String {
    "usage: tracecat [--check] <trace.jsonl>...".to_string()
}

/// Field access helpers over the parsed line object. All failures carry
/// the field name so a schema error names its culprit.
fn get_u64(obj: &Json, key: &str) -> Result<u64, String> {
    match obj.get(key) {
        Some(Json::Int(v)) => Ok(*v),
        _ => Err(format!("missing or non-integer field '{key}'")),
    }
}

fn get_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

/// A float field; the writer renders non-finite values as `null`, which
/// the parser hands back as NaN — accepted here.
fn get_f64(obj: &Json, key: &str) -> Result<f64, String> {
    match obj.get(key) {
        Some(Json::Num(v)) => Ok(*v),
        Some(Json::Int(v)) => Ok(*v as f64),
        _ => Err(format!("missing or non-numeric field '{key}'")),
    }
}

fn get_u64_arr(obj: &Json, key: &str) -> Result<Vec<u64>, String> {
    let Some(Json::Arr(items)) = obj.get(key) else {
        return Err(format!("missing or non-array field '{key}'"));
    };
    items
        .iter()
        .map(|v| match v {
            Json::Int(x) => Ok(*x),
            _ => Err(format!("non-integer element in '{key}'")),
        })
        .collect()
}

/// Parses one JSONL line back into a [`TraceEvent`].
fn parse_event(line: &str) -> Result<TraceEvent, String> {
    let obj = Json::parse(line).map_err(|e| e.to_string())?;
    let at_us = get_u64(&obj, "at_us")?;
    let seq = get_u64(&obj, "seq")?;
    let thread_name = get_str(&obj, "thread")?;
    let thread = ThreadLabel::from_name(thread_name)
        .ok_or_else(|| format!("unknown thread '{thread_name}'"))?;
    let kind_name = get_str(&obj, "kind")?;
    let kind = match kind_name {
        "span_open" => {
            let op_name = get_str(&obj, "op")?;
            EventKind::SpanOpen {
                span: get_u64(&obj, "span")?,
                op: OpLabel::from_name(op_name).ok_or_else(|| format!("unknown op '{op_name}'"))?,
            }
        }
        "span_phase" => {
            let phase_name = get_str(&obj, "phase")?;
            EventKind::SpanPhase {
                span: get_u64(&obj, "span")?,
                phase: Phase::from_name(phase_name)
                    .ok_or_else(|| format!("unknown phase '{phase_name}'"))?,
            }
        }
        "span_close" => {
            let outcome_name = get_str(&obj, "outcome")?;
            EventKind::SpanClose {
                span: get_u64(&obj, "span")?,
                outcome: Outcome::from_name(outcome_name)
                    .ok_or_else(|| format!("unknown outcome '{outcome_name}'"))?,
            }
        }
        "fault" => EventKind::Fault {
            detail: get_str(&obj, "detail")?.to_string(),
        },
        "snapshot" => EventKind::Snapshot {
            interval: get_u64(&obj, "interval")?,
            loads: get_u64_arr(&obj, "loads")?,
            queues: get_u64_arr(&obj, "queues")?,
            mean_latency_us: get_f64(&obj, "mean_latency_us")?,
            p99_latency_us: get_f64(&obj, "p99_latency_us")?,
        },
        "router_snapshot" => EventKind::RouterSnapshot {
            interval: get_u64(&obj, "interval")?,
            table_entries: get_u64(&obj, "table_entries")?,
            table_tombstones: get_u64(&obj, "table_tombstones")?,
            pool_buffers: get_u64(&obj, "pool_buffers")?,
        },
        "data_flush" => EventKind::DataFlush {
            interval: get_u64(&obj, "interval")?,
            tuples: get_u64(&obj, "tuples")?,
            batches: get_u64(&obj, "batches")?,
        },
        "interval_end" => EventKind::IntervalEnd {
            interval: get_u64(&obj, "interval")?,
            tuples: get_u64(&obj, "tuples")?,
        },
        "mark" => EventKind::Mark {
            label: get_str(&obj, "label")?.to_string(),
        },
        other => return Err(format!("unknown kind '{other}'")),
    };
    Ok(TraceEvent {
        at_us,
        seq,
        thread,
        kind,
    })
}

/// Parses a whole JSONL document; schema errors are collected per line
/// (1-based), not short-circuited, so `--check` reports them all.
fn parse_log(text: &str) -> Result<TraceLog, Vec<String>> {
    let mut events = Vec::new();
    let mut problems = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_event(line) {
            Ok(e) => events.push(e),
            Err(e) => problems.push(format!("line {}: {e}", i + 1)),
        }
    }
    if problems.is_empty() {
        events.sort_by_key(|e| (e.at_us, e.thread.tid(), e.seq));
        Ok(TraceLog { events })
    } else {
        Err(problems)
    }
}

/// `(interval, fed tuples, end stamp)` rows from the source's
/// `IntervalEnd` events, in interval order.
fn interval_rows(log: &TraceLog) -> Vec<(u64, u64, u64)> {
    let mut rows: Vec<(u64, u64, u64)> = log
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::IntervalEnd { interval, tuples } => Some((interval, tuples, e.at_us)),
            _ => None,
        })
        .collect();
    rows.sort_unstable();
    rows
}

fn median(mut xs: Vec<u64>) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn ms(us: u64) -> f64 {
    us as f64 / 1000.0
}

/// The default report for one parsed trace.
fn report(path: &str, log: &TraceLog) {
    let spans = log.span_summaries();
    let last_us = log.events.iter().map(|e| e.at_us).max().unwrap_or(0);
    let n_faults = log
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Fault { .. }))
        .count();
    println!(
        "== {path}: {} events, {} spans, {} faults, {:.1} ms",
        log.events.len(),
        spans.len(),
        n_faults,
        ms(last_us)
    );

    // Spans: outcome, disruption window, and where it went.
    if spans.is_empty() {
        println!("  spans: none (steady run)");
    } else {
        println!("  spans:");
        for s in &spans {
            let outcome = s.outcome.map_or("UNCLOSED", |o| o.as_str());
            let mut phases = String::new();
            for (phase, dur) in s.phase_durations() {
                if !phases.is_empty() {
                    phases.push_str(", ");
                }
                phases.push_str(&format!("{} {:.1}ms", phase.as_str(), ms(dur)));
            }
            println!(
                "    span {:>3} {:<9} {:<9} at {:>8.1}ms disruption {:>7.1}ms  [{phases}]",
                s.span,
                s.op.as_str(),
                outcome,
                ms(s.open_us),
                ms(s.disruption_us())
            );
        }
    }

    // Dip attribution: intervals whose fed-tuple count falls below
    // DIP_FRACTION of the median, joined against overlapping spans and
    // faults in the interval's time window.
    let rows = interval_rows(log);
    let med = median(rows.iter().map(|&(_, t, _)| t).collect());
    let threshold = (med as f64 * DIP_FRACTION) as u64;
    let mut dips = 0;
    println!(
        "  throughput: {} intervals, median {med} tuples",
        rows.len()
    );
    let mut win_start = 0u64;
    for &(interval, tuples, end_us) in &rows {
        if tuples < threshold {
            dips += 1;
            let mut culprits: Vec<String> = Vec::new();
            for s in &spans {
                if s.open_us < end_us && s.close_us > win_start {
                    culprits.push(format!(
                        "span {} ({} {})",
                        s.span,
                        s.op.as_str(),
                        s.outcome.map_or("unclosed", |o| o.as_str())
                    ));
                }
            }
            for e in &log.events {
                if let EventKind::Fault { detail } = &e.kind {
                    if e.at_us >= win_start && e.at_us < end_us {
                        culprits.push(format!("fault[{}] {detail}", e.seq));
                    }
                }
            }
            let why = if culprits.is_empty() {
                "no overlapping span or fault (external)".to_string()
            } else {
                culprits.join("; ")
            };
            println!(
                "    DIP interval {interval}: {tuples} tuples \
                 ({:.0}% of median) — {why}",
                tuples as f64 / med.max(1) as f64 * 100.0
            );
        }
        win_start = end_us;
    }
    if dips == 0 {
        println!("    no dips below {:.0}% of median", DIP_FRACTION * 100.0);
    }

    // Timeline: the control-plane story; data-plane flushes summarized.
    let n_flushes = log
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::DataFlush { .. }))
        .count();
    println!("  timeline ({n_flushes} data flushes omitted):");
    for e in &log.events {
        let line = match &e.kind {
            EventKind::SpanOpen { span, op } => format!("span {span} open ({})", op.as_str()),
            EventKind::SpanPhase { span, phase } => {
                format!("span {span} → {}", phase.as_str())
            }
            EventKind::SpanClose { span, outcome } => {
                format!("span {span} close ({})", outcome.as_str())
            }
            EventKind::Fault { detail } => format!("fault[{}]: {detail}", e.seq),
            EventKind::IntervalEnd { interval, tuples } => {
                format!("interval {interval} fed ({tuples} tuples)")
            }
            EventKind::Mark { label } => format!("mark: {label}"),
            EventKind::Snapshot { .. }
            | EventKind::RouterSnapshot { .. }
            | EventKind::DataFlush { .. } => continue,
        };
        println!("    {:>9.1}ms {:<10} {line}", ms(e.at_us), e.thread.name());
    }
}

/// `--check`: schema already validated by the caller's parse; run span
/// integrity and basic sanity. Returns problems; empty = clean.
fn check(log: &TraceLog) -> Vec<String> {
    let mut problems = log.check_integrity();
    if log.events.is_empty() {
        problems.push("trace is empty".to_string());
    }
    for s in &log.span_summaries() {
        if s.outcome.is_none() {
            problems.push(format!("span {}: no close recorded", s.span));
        }
    }
    problems
}

fn main() -> ExitCode {
    let mut check_mode = false;
    let mut paths: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--check" => check_mode = true,
            "--help" | "-h" => {
                eprintln!("{}", usage());
                return ExitCode::from(1);
            }
            _ => paths.push(a),
        }
    }
    if paths.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::from(1);
    }

    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        let log = match parse_log(&text) {
            Ok(log) => log,
            Err(problems) => {
                for p in &problems {
                    eprintln!("{path}: {p}");
                }
                failed = true;
                continue;
            }
        };
        if check_mode {
            let problems = check(&log);
            if problems.is_empty() {
                println!(
                    "ok {path}: {} events, {} spans clean",
                    log.events.len(),
                    log.span_summaries().len()
                );
            } else {
                for p in &problems {
                    eprintln!("{path}: {p}");
                }
                failed = true;
            }
        } else {
            report(path, &log);
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streambal_trace::TraceSink;

    fn sample_log() -> TraceLog {
        let sink = TraceSink::new(true);
        let mut ctl = sink.recorder(ThreadLabel::Controller);
        let mut src = sink.recorder(ThreadLabel::Source);
        let mut w0 = sink.recorder(ThreadLabel::Worker(0));
        src.interval_end(0, 1000);
        w0.count_batch(1000);
        w0.close_interval(0);
        ctl.span_open(1, OpLabel::ScaleOut);
        ctl.span_phase(1, Phase::Plan);
        ctl.span_phase(1, Phase::Pause);
        ctl.span_phase(1, Phase::Install);
        ctl.span_phase(1, Phase::Resume);
        ctl.span_close(1, Outcome::Completed);
        ctl.snapshot(0, vec![600, 400], vec![2, 1], 15.0, 42.5);
        src.router_snapshot(0, 12, 2, 4);
        sink.fault(0, "injected kill: worker \"1\"".to_string());
        src.interval_end(1, 400);
        ctl.mark("teardown");
        drop((ctl, src, w0));
        sink.take_log()
    }

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let log = sample_log();
        let parsed = parse_log(&log.to_jsonl()).expect("round trip");
        assert_eq!(parsed, log);
    }

    #[test]
    fn parse_rejects_schema_violations() {
        assert!(parse_event("not json").is_err());
        // Wrong types and unknown enum values all name their field.
        let e = parse_event(r#"{"at_us":"x","seq":0,"thread":"source","kind":"mark","label":"a"}"#)
            .unwrap_err();
        assert!(e.contains("at_us"), "{e}");
        let e = parse_event(r#"{"at_us":1,"seq":0,"thread":"nobody","kind":"mark","label":"a"}"#)
            .unwrap_err();
        assert!(e.contains("nobody"), "{e}");
        let e = parse_event(r#"{"at_us":1,"seq":0,"thread":"source","kind":"wat"}"#).unwrap_err();
        assert!(e.contains("wat"), "{e}");
        let e = parse_event(
            r#"{"at_us":1,"seq":0,"thread":"controller","kind":"span_open","span":1,"op":"x"}"#,
        )
        .unwrap_err();
        assert!(e.contains("unknown op"), "{e}");
    }

    #[test]
    fn parse_log_reports_all_bad_lines_with_numbers() {
        let text = "garbage\n\n{\"at_us\":1,\"seq\":0,\"thread\":\"source\",\
                    \"kind\":\"mark\",\"label\":\"ok\"}\nmore garbage\n";
        let problems = parse_log(text).unwrap_err();
        assert_eq!(problems.len(), 2);
        assert!(problems[0].starts_with("line 1:"), "{}", problems[0]);
        assert!(problems[1].starts_with("line 4:"), "{}", problems[1]);
    }

    #[test]
    fn check_accepts_clean_and_rejects_unclosed_spans() {
        assert_eq!(check(&sample_log()), Vec::<String>::new());

        let sink = TraceSink::new(true);
        let mut ctl = sink.recorder(ThreadLabel::Controller);
        ctl.span_open(7, OpLabel::Rebalance);
        drop(ctl);
        let problems = check(&sink.take_log());
        assert!(
            problems.iter().any(|p| p.contains("span 7")),
            "{problems:?}"
        );
    }

    #[test]
    fn split_spans_round_trip_and_attribute_dips() {
        // A hot-key split / unsplit cycle as the engine records it: a
        // split span (pause → install → resume, no state moved) during
        // a dipped interval, and the consolidating unsplit span after.
        let sink = TraceSink::new(true);
        let mut ctl = sink.recorder(ThreadLabel::Controller);
        let mut src = sink.recorder(ThreadLabel::Source);
        src.interval_end(0, 1000);
        // Real (if tiny) wall-clock gaps: the overlap join below uses
        // strict inequalities, degenerate when every event lands in the
        // same microsecond.
        std::thread::sleep(std::time::Duration::from_millis(2));
        ctl.span_open(1, OpLabel::Split);
        ctl.span_phase(1, Phase::Pause);
        ctl.span_phase(1, Phase::Install);
        ctl.span_phase(1, Phase::Resume);
        ctl.span_close(1, Outcome::Completed);
        std::thread::sleep(std::time::Duration::from_millis(2));
        src.interval_end(1, 300);
        ctl.span_open(2, OpLabel::Unsplit);
        ctl.span_phase(2, Phase::Pause);
        ctl.span_phase(2, Phase::QuiesceWait);
        ctl.span_phase(2, Phase::StateOut);
        ctl.span_phase(2, Phase::Install);
        ctl.span_phase(2, Phase::Resume);
        ctl.span_close(2, Outcome::Completed);
        src.interval_end(2, 1000);
        drop((ctl, src));
        let log = sink.take_log();

        // The split/unsplit op names survive the jsonl round trip and
        // the log passes `--check` integrity.
        let parsed = parse_log(&log.to_jsonl()).expect("round trip");
        assert_eq!(parsed, log);
        assert_eq!(check(&log), Vec::<String>::new());
        let spans = log.span_summaries();
        assert_eq!(
            spans.iter().map(|s| s.op).collect::<Vec<_>>(),
            vec![OpLabel::Split, OpLabel::Unsplit]
        );

        // The dipped interval 1 overlaps the split span's window — the
        // same join `report` prints as the dip's culprit.
        let rows = interval_rows(&log);
        let (win_start, win_end) = (rows[0].2, rows[1].2);
        assert!(rows[1].1 < (median(vec![1000, 300, 1000]) as f64 * DIP_FRACTION) as u64);
        let split_span = &spans[0];
        assert!(
            split_span.open_us < win_end && split_span.close_us > win_start,
            "split span must land in the dipped interval's window"
        );
    }

    #[test]
    fn dip_detection_finds_the_short_interval() {
        let log = sample_log();
        let rows = interval_rows(&log);
        assert_eq!(rows.len(), 2);
        let med = median(rows.iter().map(|&(_, t, _)| t).collect());
        assert_eq!(med, 1000);
        // Interval 1 fed 400 < 850 = 0.85 × median: a dip.
        assert!(rows[1].1 < (med as f64 * DIP_FRACTION) as u64);
    }
}
