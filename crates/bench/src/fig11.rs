//! Fig. 11 — the compact representation and discretization experiment.
//!
//! (a) plan-generation time vs the discretization degree `R`, including
//!     the "original key space" reference point (plain Mixed over all
//!     keys); (b) the load-estimation error the discretization introduces,
//!     for several `θmax` (paper: under 1% everywhere).

use streambal_core::{compact::compact_mixed, rebalance, RebalanceInput, RebalanceStrategy};
use streambal_metrics::Stopwatch;

use crate::figure::{Figure, Table};
use crate::{Defaults, Scale};

/// Builds a skewed rebalance input at defaults scale (hash-routed Zipf
/// interval).
pub fn skewed_input(d: &Defaults) -> RebalanceInput {
    use streambal_core::Partitioner;
    let mut src = d.source();
    let mut hash = streambal_baselines::HashPartitioner::new(d.nd);
    let stats = streambal_sim::source::IntervalSource::next_interval(&mut src, d.nd, &mut |k| {
        hash.route(k)
    });
    let records = stats
        .iter()
        .map(|(k, s)| {
            let dest = hash.route(k);
            streambal_core::KeyRecord {
                key: k,
                cost: s.cost,
                mem: s.mem,
                current: dest,
                hash_dest: dest,
            }
        })
        .collect();
    RebalanceInput {
        n_tasks: d.nd,
        records,
    }
}

/// Runs the Fig. 11 experiment.
pub fn fig11(scale: Scale) -> Figure {
    let mut d = Defaults::at(scale);
    d.k = scale.pick(30_000, 200_000);
    d.tuples = scale.pick(300_000, 2_000_000);
    let input = skewed_input(&d);
    let rs: Vec<u32> = vec![0, 1, 2, 3, 4, 5, 6, 7, 8]; // R = 2^r → 1..256
    let mut fig = Figure::new("fig11");

    // (a) generation time. The paper's controller receives pre-aggregated
    // compact records from the workers (§IV), so its plan latency is the
    // solve time over records; build/materialize are shown separately.
    let reps = scale.pick(3, 5);
    let mut cols: Vec<String> = rs.iter().map(|r| format!("R={}", 1u64 << r)).collect();
    cols.push("orig".into());
    let mut a = Table::new(
        "Fig 11(a): plan-generation time (ms) vs R (plus original key space)",
        "",
        cols,
        9,
        2,
    );
    let mut solve = Vec::new();
    let mut build = Vec::new();
    let mut materialize = Vec::new();
    let mut n_records = Vec::new();
    for &r in &rs {
        let (mut s, mut b, mut m) = (0.0, 0.0, 0.0);
        let mut last = None;
        for _ in 0..reps {
            let c = compact_mixed(&input, &d.params(), r);
            s += c.solve_time.as_secs_f64() * 1e3;
            b += c.build_time.as_secs_f64() * 1e3;
            m += c.materialize_time.as_secs_f64() * 1e3;
            last = Some(c);
        }
        solve.push(s / reps as f64);
        build.push(b / reps as f64);
        materialize.push(m / reps as f64);
        n_records.push(last.unwrap().n_records as f64);
    }
    let watch = Stopwatch::start();
    for _ in 0..reps {
        let _ = rebalance(&input, RebalanceStrategy::Mixed, &d.params());
    }
    let orig = watch.elapsed_ms() / reps as f64;
    solve.push(orig);
    build.push(0.0);
    materialize.push(0.0);
    a.row("plan time (ms)", &solve);
    a.row("  +build (worker)", &build);
    a.row("  +materialize", &materialize);
    n_records.push(input.records.len() as f64);
    a.row_prec("working set", &n_records, 0);
    fig.push(a);

    // (b) estimation error.
    let thetas = [0.0, 0.02, 0.08, 0.15];
    let mut b = Table::new(
        "Fig 11(b): load-estimation error (%) vs R",
        "θmax \\ R",
        rs.iter().map(|r| format!("{}", 1u64 << r)).collect(),
        9,
        4,
    );
    for &theta in &thetas {
        let mut params = d.params();
        params.theta_max = theta;
        let mut vals = Vec::new();
        for &r in &rs {
            let c = compact_mixed(&input, &params, r);
            vals.push(c.estimation_error * 100.0);
        }
        b.row(format!("θmax={theta}"), &vals);
    }
    fig.push(b);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_faster_than_original_at_coarse_r() {
        let mut d = Defaults::at(Scale::Quick);
        d.k = 20_000;
        d.tuples = 200_000;
        let input = skewed_input(&d);
        // Working set shrinks with coarser discretization.
        let fine = compact_mixed(&input, &d.params(), 0);
        let coarse = compact_mixed(&input, &d.params(), 6);
        assert!(coarse.n_records < fine.n_records);
        assert!(coarse.n_records < input.records.len() / 10);
    }

    #[test]
    fn estimation_error_below_two_percent() {
        // The paper reports < 1%; we allow 2% across the R sweep at quick
        // scale.
        let mut d = Defaults::at(Scale::Quick);
        d.k = 10_000;
        d.tuples = 100_000;
        let input = skewed_input(&d);
        for r in [1u32, 4, 8] {
            let c = compact_mixed(&input, &d.params(), r);
            assert!(
                c.estimation_error < 0.02,
                "R=2^{r}: error {}",
                c.estimation_error
            );
        }
    }
}
