//! The merge stage — the downstream half of the two-stage pipeline.
//!
//! The engine's topology is a two-stage seam: a **keyed stage** (the
//! worker threads running an [`Operator`] over per-key windowed state)
//! feeding a **merge stage** over a second channel plane. The plane
//! reuses the pooled, tuple-weighted `TupleBatch` machinery of the
//! source plane: workers accumulate emissions into pooled `Vec<Tuple>`
//! buffers and ship them over one bounded, tuple-weighted channel
//! (`EngineConfig::collector_capacity` — a full merge stage
//! backpressures the keyed stage exactly like a full worker channel
//! backpressures the source), and the merge stage recycles drained
//! buffers to the source's free list in groups.
//!
//! The merge stage is what makes **hot-key splitting** exact. When a
//! key is split, its tuples round-robin across replica slots and each
//! replica accumulates a *partial* aggregate; nothing on the keyed
//! stage ever sees the key's total. Replicas emit their partials as
//! `TAG_PARTIAL` tuples (count deltas for `WordCountOp`'s
//! partial-emission mode, window contributions for the join ops), and
//! the merge stage's [`Collector`] folds them per key — the only place
//! a split key's stream is reunified. The consistency argument is the
//! FIFO-per-channel one restated downstream (see the crate docs'
//! "Hot-key splitting" section): each replica's partials arrive on the
//! merge plane in emission order, merging is commutative and
//! associative (sums per key), so any interleaving of replica partials
//! folds to the same totals the unsplit operator would have produced.
//!
//! For runs without a collector the keyed stage's final states merge at
//! shutdown instead (`EngineReport::final_states` sums blobs per key),
//! which is the same fold executed once at the end.

use crossbeam::channel::{Receiver, Sender};
use streambal_trace::ThreadRecorder;

use crate::operator::Collector;
use crate::tuple::Tuple;

/// How many drained batch buffers the merge stage accumulates before
/// recycling them to the source's pool in one channel send.
const RECYCLE_GROUP: usize = 8;

/// The merge-stage runner: drains emission batches from the keyed
/// stage, folds them through a [`Collector`], and recycles the buffers.
///
/// Owns the downstream end of the second channel plane. The engine
/// spawns [`MergeStage::run`] on its own thread; the returned rows land
/// in `EngineReport::collector_result`.
pub struct MergeStage {
    collector: Box<dyn Collector>,
    rx: Receiver<Vec<Tuple>>,
    pool: Sender<Vec<Vec<Tuple>>>,
    rec: ThreadRecorder,
}

impl MergeStage {
    /// Builds the stage around its collector, inbound plane, and the
    /// source's buffer-recycle channel.
    pub fn new(
        collector: Box<dyn Collector>,
        rx: Receiver<Vec<Tuple>>,
        pool: Sender<Vec<Vec<Tuple>>>,
        rec: ThreadRecorder,
    ) -> Self {
        MergeStage {
            collector,
            rx,
            pool,
            rec,
        }
    }

    /// Drains the plane to disconnection and returns the merged result
    /// rows. Buffer recycling is best-effort: at teardown the source is
    /// already gone and the pool send failing is expected.
    pub fn run(mut self) -> Vec<(u64, u64)> {
        let mut returns: Vec<Vec<Tuple>> = Vec::new();
        while let Ok(mut batch) = self.rx.recv() {
            for t in &batch {
                self.collector.collect(t);
            }
            batch.clear();
            returns.push(batch);
            if returns.len() >= RECYCLE_GROUP {
                let _ = self.pool.send(std::mem::take(&mut returns));
            }
        }
        self.rec.mark("collector-done");
        self.collector.result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::SumCollector;
    use crate::tuple::TAG_PARTIAL;
    use crossbeam::channel::unbounded;
    use streambal_core::Key;
    use streambal_trace::{ThreadLabel, TraceSink};

    /// The stage folds split-key partials from multiple "replicas" into
    /// one total per key and recycles drained buffers to the pool.
    #[test]
    fn merges_replica_partials_and_recycles_buffers() {
        let (tx, rx) = unbounded::<Vec<Tuple>>();
        let (pool_tx, pool_rx) = unbounded::<Vec<Vec<Tuple>>>();
        let sink = TraceSink::new(false);
        let stage = MergeStage::new(
            Box::new(SumCollector::new()),
            rx,
            pool_tx,
            sink.recorder(ThreadLabel::Collector),
        );
        // Two replicas of split key 7 emit partials interleaved with an
        // unsplit key 9; enough batches to trip one recycle group.
        for i in 0..RECYCLE_GROUP + 1 {
            let replica_delta = (i as u64) + 1;
            tx.send(vec![
                Tuple::tagged(Key(7), TAG_PARTIAL, [replica_delta, 0]),
                Tuple::tagged(Key(7), TAG_PARTIAL, [replica_delta, 0]),
                Tuple::tagged(Key(9), TAG_PARTIAL, [1, 0]),
            ])
            .unwrap();
        }
        drop(tx);
        let rows = stage.run();
        let n = (RECYCLE_GROUP + 1) as u64;
        // Σ 2·(i+1) for i in 0..n, and n ones for key 9.
        assert_eq!(rows, vec![(7, n * (n + 1)), (9, n)]);
        let mut recycled = 0usize;
        while let Ok(group) = pool_rx.try_recv() {
            recycled += group.len();
        }
        assert_eq!(recycled, RECYCLE_GROUP, "one full recycle group");
    }
}
