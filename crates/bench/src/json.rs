//! Minimal hand-rolled JSON emission for machine-readable bench output.
//!
//! The sandbox has no serde, and the data is small (a handful of bench
//! measurements per run), so this is a tiny value tree with a pretty
//! printer — just enough for `bench_results/*.json` files that are stable
//! under `diff` across PRs. Not a parser; writing only.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A JSON value. Object fields keep insertion order so output is
/// deterministic and diffs stay minimal.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string (escaped on render).
    Str(String),
    /// A finite float; non-finite values render as `null` (JSON has no
    /// NaN/∞), which keeps a single bad measurement from corrupting the
    /// whole file.
    Num(f64),
    /// An unsigned integer, rendered exactly (no float rounding).
    Int(u64),
    /// A boolean.
    Bool(bool),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, depth: usize) {
        match self {
            Json::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // `Display` for f64 is the shortest round-trip form.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Arr(items) => render_block(out, depth, '[', ']', items.len(), |out, i| {
                items[i].render(out, depth + 1);
            }),
            Json::Obj(fields) => render_block(out, depth, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                out.push('"');
                escape_into(k, out);
                out.push_str("\": ");
                v.render(out, depth + 1);
            }),
        }
    }
}

/// Renders a `[...]`/`{...}` block: empty inline, otherwise one element
/// per line at `depth + 1` indentation.
fn render_block(
    out: &mut String,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut elem: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        out.push('\n');
        for _ in 0..(depth + 1) * 2 {
            out.push(' ');
        }
        elem(out, i);
        if i + 1 < len {
            out.push(',');
        }
    }
    out.push('\n');
    for _ in 0..depth * 2 {
        out.push(' ');
    }
    out.push(close);
}

/// Escapes `s` per RFC 8259 (quotes, backslash, control characters).
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Writes `value` pretty-printed to `path`, creating parent directories.
pub fn write_json(path: impl AsRef<Path>, value: &Json) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, value.to_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::str("a\"b\\c\nd").to_pretty(), "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(Json::Num(1.5).to_pretty(), "1.5\n");
        assert_eq!(Json::Num(f64::NAN).to_pretty(), "null\n");
        assert_eq!(Json::Int(u64::MAX).to_pretty(), "18446744073709551615\n");
        assert_eq!(Json::Bool(true).to_pretty(), "true\n");
        assert_eq!(Json::Str("\u{1}".into()).to_pretty(), "\"\\u0001\"\n");
    }

    #[test]
    fn renders_nested_pretty() {
        let v = Json::obj([
            ("name", Json::str("routing")),
            ("empty", Json::Arr(vec![])),
            (
                "rows",
                Json::Arr(vec![Json::obj([("ns", Json::Num(2.25))])]),
            ),
        ]);
        let expect = "{\n  \"name\": \"routing\",\n  \"empty\": [],\n  \"rows\": [\n    {\n      \"ns\": 2.25\n    }\n  ]\n}\n";
        assert_eq!(v.to_pretty(), expect);
    }

    #[test]
    fn write_json_creates_parents() {
        let dir = std::env::temp_dir().join("streambal_json_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.json");
        write_json(&path, &Json::Int(7)).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "7\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
