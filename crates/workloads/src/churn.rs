//! Adversarial key-churn workload: a **fresh hot set every interval**.
//!
//! The Zipf generator's fluctuation process swaps frequencies between
//! existing keys, so a routing table that pins the hot keys keeps paying
//! off across intervals. This generator is the adversary for that
//! assumption — and the natural stressor for elasticity decisions: each
//! interval, a brand-new, disjoint set of keys receives a fixed share of
//! the volume, so last interval's table entries (and last interval's
//! per-key statistics) say *nothing* about the coming interval. Skew
//! persists, but never on the same keys twice. Volume can additionally
//! ramp per interval (`with_volume_schedule`), producing the
//! variance-heavy load shape scale-out/scale-in policies must track.
//!
//! The third adversary is the skew taxonomy's scenario B
//! (`with_dominant_burst`): **one fixed key** carries an adjustable
//! fraction of the total volume for a burst window of intervals. A key
//! hotter than one worker's capacity defeats whole-key migration by
//! construction — no placement helps — which is exactly the scenario
//! hot-key splitting exists for, so this shape drives the split
//! benchmarks and the `SplitPolicy` tests.
//!
//! Deterministic given a seed, like every generator in this crate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use streambal_core::{IntervalStats, Key};
use streambal_hashring::mix64;

/// Key-churn generator: `hot_n` fresh hot keys per interval carrying
/// `hot_share` of the interval's tuples, the rest spread uniformly over
/// the whole domain.
#[derive(Debug, Clone)]
pub struct ChurnWorkload {
    k: usize,
    tuples: u64,
    hot_n: usize,
    hot_share: f64,
    /// Per-interval volume multipliers (cycled); empty = flat volume.
    volume: Vec<f64>,
    /// Scenario-B dominant key: `(key, share, from, until)` — `key`
    /// takes `share` of the total volume in intervals `from..until`.
    dominant: Option<(Key, f64, u64, u64)>,
    interval: u64,
    rng: StdRng,
    /// Current interval's hot keys (disjoint from the previous set).
    hot: Vec<Key>,
    prev_hot: Vec<Key>,
}

impl ChurnWorkload {
    /// Creates the generator: `k` keys in the domain, `tuples` per
    /// interval at volume 1.0, `hot_n` fresh hot keys per interval
    /// holding `hot_share` of the volume.
    ///
    /// # Panics
    /// Panics unless `0 < 2·hot_n ≤ k` (two disjoint hot sets must fit)
    /// and `0 ≤ hot_share ≤ 1`.
    pub fn new(k: usize, tuples: u64, hot_n: usize, hot_share: f64, seed: u64) -> Self {
        assert!(
            hot_n > 0 && 2 * hot_n <= k,
            "need room for disjoint hot sets"
        );
        assert!((0.0..=1.0).contains(&hot_share), "hot_share is a fraction");
        let mut w = ChurnWorkload {
            k,
            tuples,
            hot_n,
            hot_share,
            volume: Vec::new(),
            dominant: None,
            interval: 0,
            rng: StdRng::seed_from_u64(seed ^ 0xC0FF_EE00),
            hot: Vec::new(),
            prev_hot: Vec::new(),
        };
        w.pick_hot_set();
        w
    }

    /// Sets a per-interval volume multiplier schedule (cycled when the
    /// run is longer) — e.g. `[1.0, 1.0, 4.0, 4.0, 1.0]` for a burst.
    pub fn with_volume_schedule(mut self, volume: impl Into<Vec<f64>>) -> Self {
        self.volume = volume.into();
        self
    }

    /// Skew-taxonomy scenario B: the single key `key` carries `share`
    /// of the total volume during intervals `from..until` (half-open);
    /// hot set and cold tail split the remainder in their usual
    /// proportions. Pick `key` outside the churn domain (`≥ k`) for an
    /// exactly attributable burst — a domain key would additionally
    /// draw its ordinary hot/cold mass.
    ///
    /// # Panics
    /// Panics unless `0 ≤ share ≤ 1` and `from < until`.
    pub fn with_dominant_burst(mut self, key: Key, share: f64, from: u64, until: u64) -> Self {
        assert!((0.0..=1.0).contains(&share), "share is a fraction");
        assert!(from < until, "empty burst window");
        self.dominant = Some((key, share, from, until));
        self
    }

    /// The scenario-B dominant key, if configured.
    pub fn dominant_key(&self) -> Option<Key> {
        self.dominant.map(|(k, ..)| k)
    }

    /// Whether the current interval is inside the dominant-key burst
    /// window.
    pub fn in_burst(&self) -> bool {
        self.dominant
            .is_some_and(|(_, _, from, until)| (from..until).contains(&self.interval))
    }

    /// Current interval index.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// This interval's hot keys (fresh every interval, disjoint from the
    /// previous interval's).
    pub fn hot_keys(&self) -> &[Key] {
        &self.hot
    }

    /// This interval's total tuple count (volume schedule applied).
    pub fn interval_tuples(&self) -> u64 {
        if self.volume.is_empty() {
            return self.tuples;
        }
        let m = self.volume[self.interval as usize % self.volume.len()];
        (self.tuples as f64 * m).round() as u64
    }

    /// Advances to the next interval, discarding the old hot set and
    /// drawing a fresh one disjoint from it.
    pub fn advance(&mut self) {
        self.interval += 1;
        self.pick_hot_set();
    }

    fn pick_hot_set(&mut self) {
        self.prev_hot = std::mem::take(&mut self.hot);
        // Rejection-sample distinct keys outside the previous hot set.
        // 2·hot_n ≤ k bounds the rejection rate; the scan over prev_hot
        // and the growing set is O(hot_n²) with hot_n ≪ k — fine for the
        // few-hundred-key hot sets this models.
        while self.hot.len() < self.hot_n {
            let cand = Key(mix64(self.rng.gen::<u64>()) % self.k as u64);
            if self.prev_hot.contains(&cand) || self.hot.contains(&cand) {
                continue;
            }
            self.hot.push(cand);
        }
    }

    /// Per-key tuple counts of the current interval: `(key, freq)` with
    /// zero-frequency keys omitted.
    fn freqs(&self) -> Vec<(Key, u64)> {
        let total = self.interval_tuples();
        // The dominant burst takes its share off the top; hot set and
        // cold tail split the exact remainder, so every interval's
        // frequencies sum to `interval_tuples()` to the tuple.
        let dom_total = if self.in_burst() {
            let (_, share, ..) = self.dominant.unwrap();
            (total as f64 * share).round() as u64
        } else {
            0
        };
        let total = total - dom_total;
        let hot_total = (total as f64 * self.hot_share).round() as u64;
        let cold_total = total - hot_total;
        let mut out: Vec<(Key, u64)> = Vec::with_capacity(self.hot_n + self.k + 1);
        if dom_total > 0 {
            let (key, ..) = self.dominant.unwrap();
            out.push((key, dom_total));
        }
        let per_hot = hot_total / self.hot_n as u64;
        let mut rem = hot_total - per_hot * self.hot_n as u64;
        for &h in &self.hot {
            let extra = u64::from(rem > 0);
            rem -= extra;
            out.push((h, per_hot + extra));
        }
        // Cold tail: uniform over the whole domain (hot keys may also
        // receive cold mass — irrelevant at hot_share ≫ 1/k).
        let per_cold = cold_total / self.k as u64;
        let cold_rem = cold_total - per_cold * self.k as u64;
        for i in 0..self.k {
            let f = per_cold + u64::from((i as u64) < cold_rem);
            if f > 0 {
                out.push((Key(i as u64), f));
            }
        }
        out
    }

    /// The current interval as aggregated statistics (simulator input):
    /// cost 1 and state 8 bytes per tuple, like the Zipf default.
    pub fn interval_stats(&self) -> IntervalStats {
        let mut iv = IntervalStats::new();
        for (k, f) in self.freqs() {
            iv.observe(k, f, f, f * 8);
        }
        iv
    }

    /// Materializes the interval as a concrete tuple sequence (runtime
    /// input), deterministically shuffled.
    pub fn tuples(&mut self) -> Vec<Key> {
        let mut out = Vec::with_capacity(self.interval_tuples() as usize);
        for (k, f) in self.freqs() {
            for _ in 0..f {
                out.push(k);
            }
        }
        for i in (1..out.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            out.swap(i, j);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_sets_are_fresh_and_disjoint_every_interval() {
        let mut w = ChurnWorkload::new(10_000, 50_000, 50, 0.8, 7);
        for _ in 0..10 {
            let prev: Vec<Key> = w.hot_keys().to_vec();
            w.advance();
            let now = w.hot_keys();
            assert_eq!(now.len(), 50);
            for k in now {
                assert!(!prev.contains(k), "hot key {k:?} survived the churn");
            }
        }
    }

    #[test]
    fn hot_share_is_respected() {
        let w = ChurnWorkload::new(10_000, 100_000, 100, 0.7, 3);
        let stats = w.interval_stats();
        let hot: u64 = w
            .hot_keys()
            .iter()
            .map(|&k| stats.get(k).unwrap().freq)
            .sum();
        let total: u64 = stats.iter().map(|(_, s)| s.freq).sum();
        // Hot keys may also draw cold mass, so ≥ the configured share and
        // within the cold tail's contribution of it.
        let share = hot as f64 / total as f64;
        assert!((0.69..=0.72).contains(&share), "hot share {share}");
        assert!(
            (total as i64 - 100_000).unsigned_abs() < 200,
            "total {total}"
        );
    }

    #[test]
    fn volume_schedule_cycles() {
        let mut w = ChurnWorkload::new(1_000, 10_000, 10, 0.5, 1).with_volume_schedule([1.0, 4.0]);
        assert_eq!(w.interval_tuples(), 10_000);
        w.advance();
        assert_eq!(w.interval_tuples(), 40_000);
        w.advance();
        assert_eq!(w.interval_tuples(), 10_000, "schedule cycles");
    }

    #[test]
    fn tuples_match_stats() {
        let mut w = ChurnWorkload::new(500, 5_000, 20, 0.9, 11);
        let stats = w.interval_stats();
        let tuples = w.tuples();
        assert_eq!(
            tuples.len() as u64,
            stats.iter().map(|(_, s)| s.freq).sum::<u64>()
        );
        let mut counts = streambal_hashring::FxHashMap::<Key, u64>::default();
        for &t in &tuples {
            *counts.entry(t).or_insert(0) += 1;
        }
        for (k, s) in stats.iter() {
            assert_eq!(counts.get(&k), Some(&s.freq), "key {k:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = ChurnWorkload::new(2_000, 10_000, 30, 0.8, 42);
        let mut b = ChurnWorkload::new(2_000, 10_000, 30, 0.8, 42);
        for _ in 0..3 {
            assert_eq!(a.hot_keys(), b.hot_keys());
            assert_eq!(a.tuples(), b.tuples());
            a.advance();
            b.advance();
        }
    }

    #[test]
    #[should_panic(expected = "disjoint hot sets")]
    fn oversized_hot_set_panics() {
        ChurnWorkload::new(10, 100, 6, 0.5, 1);
    }

    /// Scenario B volume attribution is exact to the tuple: inside the
    /// burst window the dominant key holds exactly its share of the
    /// total, outside it receives nothing, and every interval's
    /// frequencies still sum to `interval_tuples()`.
    #[test]
    fn dominant_burst_attribution_is_exact() {
        let dom = Key(5_000); // outside the churn domain
        let mut w =
            ChurnWorkload::new(1_000, 10_000, 10, 0.5, 9).with_dominant_burst(dom, 0.6, 2, 4);
        assert_eq!(w.dominant_key(), Some(dom));
        for interval in 0..6u64 {
            let stats = w.interval_stats();
            let total: u64 = stats.iter().map(|(_, s)| s.freq).sum();
            assert_eq!(total, w.interval_tuples(), "interval {interval} total");
            let got = stats.get(dom).map_or(0, |s| s.freq);
            if (2..4).contains(&interval) {
                assert!(w.in_burst());
                assert_eq!(got, 6_000, "dominant share exact during burst");
            } else {
                assert!(!w.in_burst());
                assert_eq!(got, 0, "no dominant mass outside the window");
            }
            // The materialized tuple stream attributes identically.
            let tuples = w.tuples();
            assert_eq!(tuples.len() as u64, total);
            assert_eq!(tuples.iter().filter(|&&k| k == dom).count() as u64, got);
            w.advance();
        }
    }

    /// The dominant share applies to the *scheduled* volume: a burst
    /// that coincides with a volume ramp takes its fraction of the
    /// ramped total.
    #[test]
    fn dominant_burst_composes_with_volume_schedule() {
        let dom = Key(9_999);
        let mut w = ChurnWorkload::new(1_000, 10_000, 10, 0.5, 13)
            .with_volume_schedule([1.0, 1.0, 4.0])
            .with_dominant_burst(dom, 0.6, 2, 3);
        w.advance();
        w.advance();
        assert_eq!(w.interval_tuples(), 40_000);
        let stats = w.interval_stats();
        assert_eq!(stats.get(dom).unwrap().freq, 24_000);
        let total: u64 = stats.iter().map(|(_, s)| s.freq).sum();
        assert_eq!(total, 40_000);
    }
}
