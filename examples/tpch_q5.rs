//! TPC-H Q5 as a continuous query (paper Fig. 16): an orders ⋈ lineitems
//! stream join partitioned by orderkey, followed by dimension joins and a
//! per-nation revenue aggregation, with abrupt foreign-key distribution
//! changes mid-run. Validates the streaming result against a batch
//! reference.
//!
//! ```text
//! cargo run --release --example tpch_q5
//! ```

use streambal::baselines::CoreBalancer;
use streambal::core::{BalanceParams, Key, RebalanceStrategy};
use streambal::hashring::FxHashMap;
use streambal::runtime::{CoJoinOp, Collector, Engine, EngineConfig, Tuple, TAG_LEFT, TAG_RIGHT};
use streambal::workloads::tpch::{REGION_NAMES, REGION_OF_NATION};
use streambal::workloads::{TpchEvent, TpchGen, TpchParams};

/// Downstream Q5 aggregation: same-nation customer/supplier pairs within
/// the chosen region, revenue summed per nation.
struct Q5Collector {
    nation_of_customer: Vec<u8>,
    nation_of_supplier: Vec<u8>,
    region: u8,
    revenue: FxHashMap<u8, u64>,
}

impl Collector for Q5Collector {
    fn collect(&mut self, t: &Tuple) {
        // Joined tuples: key = suppkey, vals = [revenue, custkey].
        let sn = self.nation_of_supplier[t.key.raw() as usize];
        let cn = self.nation_of_customer[t.vals[1] as usize];
        if sn == cn && REGION_OF_NATION[sn as usize] == self.region {
            *self.revenue.entry(sn).or_insert(0) += t.vals[0];
        }
    }

    fn result(&mut self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.revenue.iter().map(|(&n, &r)| (n as u64, r)).collect();
        v.sort_unstable();
        v
    }
}

fn main() {
    let region = 2u8; // ASIA
    let n_intervals = 6u32;
    let mut gen = TpchGen::new(TpchParams {
        customers: 2_000,
        suppliers: 300,
        orders_per_interval: 3_000,
        z: 0.8,
        max_lineitems: 7,
        seed: 11,
    });

    // Pre-generate the event stream; reshuffle the hot customers midway
    // (the paper's 15-minute distribution change with f = 1).
    let mut intervals: Vec<Vec<TpchEvent>> = Vec::new();
    for i in 0..n_intervals {
        if i == n_intervals / 2 {
            gen.reshuffle();
        }
        intervals.push(gen.interval_events());
    }
    let all: Vec<TpchEvent> = intervals.iter().flatten().copied().collect();
    let reference = gen.reference_q5(&all, region, 0, n_intervals);

    let collector = Q5Collector {
        nation_of_customer: (0..gen.params().customers)
            .map(|c| gen.nation_of_customer(c as u64))
            .collect(),
        nation_of_supplier: (0..gen.params().suppliers)
            .map(|s| gen.nation_of_supplier(s as u64))
            .collect(),
        region,
        revenue: FxHashMap::default(),
    };

    let feed: Vec<Vec<Tuple>> = intervals
        .iter()
        .map(|events| {
            events
                .iter()
                .map(|e| match *e {
                    TpchEvent::Order {
                        orderkey,
                        custkey,
                        orderdate,
                    } => Tuple::tagged(Key(orderkey), TAG_LEFT, [custkey, orderdate as u64]),
                    TpchEvent::Lineitem {
                        orderkey,
                        suppkey,
                        revenue_cents,
                    } => Tuple::tagged(Key(orderkey), TAG_RIGHT, [suppkey, revenue_cents]),
                })
                .collect()
        })
        .collect();

    let report = Engine::run(
        EngineConfig {
            n_workers: 4,
            max_workers: 4,
            spin_work: 300,
            window: 20, // retain all orders for this short run
            ..EngineConfig::default()
        },
        Box::new(CoreBalancer::new(
            4,
            20,
            RebalanceStrategy::Mixed,
            BalanceParams {
                theta_max: 0.1,
                ..BalanceParams::default()
            },
        )),
        |_| Box::new(CoJoinOp::new()),
        move |iv| feed.get(iv as usize).cloned(),
        Some(Box::new(collector)),
    );

    println!(
        "Q5 over {} events, region {}: {} rebalances, {} keys migrated\n",
        all.len(),
        REGION_NAMES[region as usize],
        report.rebalances,
        report.migrated_keys
    );
    println!(
        "{:<10} {:>16} {:>16}",
        "nation", "streaming ¢", "reference ¢"
    );
    let mut ok = true;
    for &(nation, revenue) in &report.collector_result {
        let expect = reference.get(&(nation as u8)).copied().unwrap_or(0);
        println!("{nation:<10} {revenue:>16} {expect:>16}");
        ok &= revenue == expect;
    }
    assert!(ok, "streaming Q5 must match the batch reference");
    println!("\n✔ streaming result matches the batch reference exactly");
    println!("  (state migration under the Fig. 5 protocol lost nothing)");
}
