//! Synthetic **Social** workload (microblog feed).
//!
//! The paper's first real dataset: 5 days of microblog feeds, >5 M tuples,
//! 180 K topic words as keys, run under a word-count topology. Its
//! signature property: "the word frequency in Social data usually changes
//! slowly" — popularity drifts, no sharp bursts.
//!
//! We reproduce that process synthetically (the original feed is not
//! available): a Zipf(≈1) vocabulary whose rank permutation *rotates
//! gradually* — each interval, a fraction `drift` of adjacent rank pairs
//! swap, so hot words cool down and mid-tail words heat up over hours, the
//! way trending topics behave.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use streambal_core::{IntervalStats, Key};
use streambal_hashring::mix64;

use crate::zipf::{CostModel, ZipfGen};

/// The slow-drift topic-word workload.
#[derive(Debug, Clone)]
pub struct SocialWorkload {
    /// `rank_of_key[key] = popularity rank` (0 = hottest).
    rank_of_key: Vec<u32>,
    /// Expected tuple count per rank.
    count_of_rank: Vec<u64>,
    cost: CostModel,
    drift: f64,
    rng: StdRng,
    interval: u64,
}

impl SocialWorkload {
    /// Paper-scale defaults: 180 K words, ~1 M tuples per day-interval,
    /// gentle drift.
    pub fn paper_scale(seed: u64) -> Self {
        Self::new(180_000, 1_000_000, 0.02, seed)
    }

    /// Creates the workload: `vocab` words, `tuples` per interval, and a
    /// `drift ∈ [0,1]` fraction of rank pairs swapped per interval.
    pub fn new(vocab: usize, tuples: u64, drift: f64, seed: u64) -> Self {
        assert!(vocab >= 2, "vocabulary must hold at least two words");
        let gen = ZipfGen::new(vocab, 1.0);
        let count_of_rank = gen.expected_freqs(tuples);
        // Deterministic random permutation of ranks onto word ids.
        let mut order: Vec<usize> = (0..vocab).collect();
        order.sort_unstable_by_key(|&i| mix64(i as u64 ^ seed));
        let mut rank_of_key = vec![0u32; vocab];
        for (rank, &key_id) in order.iter().enumerate() {
            rank_of_key[key_id] = rank as u32;
        }
        SocialWorkload {
            rank_of_key,
            count_of_rank,
            cost: CostModel::default(),
            drift: drift.clamp(0.0, 1.0),
            rng: StdRng::seed_from_u64(seed ^ 0x50C1A1),
            interval: 0,
        }
    }

    /// Replaces the cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.rank_of_key.len()
    }

    /// Current interval index.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Tuple count of a word in the current interval.
    pub fn freq(&self, key: Key) -> u64 {
        self.count_of_rank[self.rank_of_key[key.raw() as usize] as usize]
    }

    /// Advances one interval: swaps `drift · vocab` random *adjacent-rank*
    /// word pairs — popularity shifts but never jumps, matching the
    /// paper's "changes slowly" characterization.
    pub fn advance(&mut self) {
        self.interval += 1;
        let vocab = self.rank_of_key.len();
        let swaps = (self.drift * vocab as f64) as usize;
        // rank → key inverse map for adjacent swapping.
        let mut key_of_rank = vec![0u32; vocab];
        for (key, &rank) in self.rank_of_key.iter().enumerate() {
            key_of_rank[rank as usize] = key as u32;
        }
        for _ in 0..swaps {
            let r = self.rng.gen_range(0..vocab - 1);
            let (ka, kb) = (key_of_rank[r], key_of_rank[r + 1]);
            key_of_rank.swap(r, r + 1);
            self.rank_of_key.swap(ka as usize, kb as usize);
        }
    }

    /// The current interval as aggregated statistics.
    pub fn interval_stats(&self) -> IntervalStats {
        let mut iv = IntervalStats::new();
        for (key, &rank) in self.rank_of_key.iter().enumerate() {
            let f = self.count_of_rank[rank as usize];
            if f > 0 {
                iv.observe(
                    Key(key as u64),
                    f,
                    f * self.cost.cost_per_tuple,
                    f * self.cost.state_per_tuple,
                );
            }
        }
        iv
    }

    /// Materializes the interval's tuples (word occurrences), shuffled.
    pub fn tuples(&mut self) -> Vec<Key> {
        let mut out = Vec::new();
        for (key, &rank) in self.rank_of_key.iter().enumerate() {
            for _ in 0..self.count_of_rank[rank as usize] {
                out.push(Key(key as u64));
            }
        }
        for i in (1..out.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            out.swap(i, j);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_word_exists_and_dominates() {
        let w = SocialWorkload::new(1000, 100_000, 0.02, 1);
        let hottest = (0..1000u64).map(|k| w.freq(Key(k))).max().unwrap();
        let total: u64 = (0..1000u64).map(|k| w.freq(Key(k))).sum();
        assert!(hottest as f64 > total as f64 * 0.05, "Zipf(1) head");
    }

    #[test]
    fn drift_changes_distribution_slowly() {
        let mut w = SocialWorkload::new(2000, 50_000, 0.05, 3);
        let before: Vec<u64> = (0..2000u64).map(|k| w.freq(Key(k))).collect();
        w.advance();
        let after: Vec<u64> = (0..2000u64).map(|k| w.freq(Key(k))).collect();
        let changed = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        assert!(changed > 0, "drift must change something");
        // Adjacent-rank swaps: total tuple mass is conserved...
        assert_eq!(
            before.iter().sum::<u64>(),
            after.iter().sum::<u64>(),
            "mass conserved"
        );
        // ...and per-key change is gradual (bounded by one rank step per
        // swap): no key's frequency may explode in one interval.
        for (k, (&b, &a)) in before.iter().zip(&after).enumerate() {
            if b > 100 {
                let ratio = a as f64 / b as f64;
                assert!((0.2..5.0).contains(&ratio), "key {k} jumped {b} → {a}");
            }
        }
    }

    #[test]
    fn long_run_drift_reshuffles_popularity() {
        let mut w = SocialWorkload::new(500, 50_000, 0.2, 7);
        let hot_before: u64 = (0..500u64).max_by_key(|&k| w.freq(Key(k))).unwrap();
        for _ in 0..300 {
            w.advance();
        }
        let rank_now = w.rank_of_key[hot_before as usize];
        assert!(rank_now > 0, "after many intervals the old #1 should sink");
    }

    #[test]
    fn stats_and_tuples_agree() {
        let mut w = SocialWorkload::new(200, 5_000, 0.0, 5);
        let iv = w.interval_stats();
        let tuples = w.tuples();
        let total_stats: u64 = iv.iter().map(|(_, s)| s.freq).sum();
        assert_eq!(tuples.len() as u64, total_stats);
    }

    #[test]
    fn deterministic() {
        let a = SocialWorkload::new(100, 1000, 0.1, 9).interval_stats();
        let b = SocialWorkload::new(100, 1000, 0.1, 9).interval_stats();
        assert_eq!(a.len(), b.len());
        for (k, s) in a.iter() {
            assert_eq!(b.get(k), Some(s));
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_vocab_panics() {
        SocialWorkload::new(1, 100, 0.1, 1);
    }
}
