//! Consistent hash ring with virtual nodes.
//!
//! The paper's baseline assignment `h(k)` is consistent hashing: keys and
//! (virtual copies of) task instances are mapped onto a `u64` circle, and a
//! key is owned by the first instance point at or after it clockwise.
//! Virtual nodes smooth the per-instance arc length so that, for a uniform
//! key population, instance loads concentrate around the mean.
//!
//! Consistency is the property the Fig. 15 scale-out experiment relies on:
//! adding one instance only claims keys from existing arcs — every key
//! either keeps its owner or moves to the *new* instance, so the hash-side
//! churn of a scale-out is `≈ K / (n+1)` instead of `≈ K`.

use crate::fx::mix64_seeded;

/// Number of virtual points placed on the ring per slot, by default.
///
/// Arc-length variation scales like `1/√vnodes`; 256 vnodes keeps the
/// per-slot ownership deviation around 6% while a lookup's binary search
/// stays cache-friendly. Residual imbalance is expected — the paper's
/// premise is that hashing alone cannot balance skewed key populations.
pub const DEFAULT_VNODES: usize = 256;

/// A consistent hash ring mapping `u64` keys to slot indices `0..n`.
///
/// Slots model downstream task instances. The ring is immutable-by-value:
/// [`HashRing::add_slot`] grows it in place (used by scale-out), and cloning
/// is cheap enough for snapshotting a routing epoch.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted ring points: (position, slot).
    points: Vec<(u64, u32)>,
    slots: usize,
    vnodes: usize,
}

impl HashRing {
    /// Builds a ring with `slots` instances and [`DEFAULT_VNODES`] virtual
    /// points each.
    ///
    /// # Panics
    /// Panics if `slots == 0`.
    pub fn new(slots: usize) -> Self {
        Self::with_vnodes(slots, DEFAULT_VNODES)
    }

    /// Builds a ring with an explicit virtual-node count (≥ 1).
    ///
    /// # Panics
    /// Panics if `slots == 0` or `vnodes == 0`.
    pub fn with_vnodes(slots: usize, vnodes: usize) -> Self {
        assert!(slots > 0, "ring needs at least one slot");
        assert!(vnodes > 0, "ring needs at least one vnode per slot");
        let mut ring = HashRing {
            points: Vec::with_capacity(slots * vnodes),
            slots: 0,
            vnodes,
        };
        for _ in 0..slots {
            ring.add_slot();
        }
        ring
    }

    /// Number of slots (task instances) on the ring.
    #[inline]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of virtual points per slot.
    #[inline]
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Adds one slot (scale-out), returning its index.
    ///
    /// Existing keys either keep their slot or move to the new slot —
    /// never between old slots (the consistency property, asserted by
    /// tests).
    pub fn add_slot(&mut self) -> usize {
        let slot = self.slots as u32;
        for v in 0..self.vnodes {
            let pos = mix64_seeded((slot as u64) << 32 | v as u64, 0x5851_F42D_4C95_7F2D);
            let at = self.points.partition_point(|&(p, _)| p < pos);
            self.points.insert(at, (pos, slot));
        }
        self.slots += 1;
        self.slots - 1
    }

    /// Removes the most recently added slot (scale-in), returning its
    /// former index. The exact inverse of [`HashRing::add_slot`]: only the
    /// removed slot's virtual points leave the ring, so every key it owned
    /// redistributes to surviving slots and every other key keeps its
    /// owner — the consistency property scale-in relies on, mirrored from
    /// scale-out.
    ///
    /// # Panics
    /// Panics if the ring has only one slot (a ring must own the circle).
    pub fn remove_slot(&mut self) -> usize {
        assert!(self.slots > 1, "cannot remove the last ring slot");
        let slot = (self.slots - 1) as u32;
        self.points.retain(|&(_, s)| s != slot);
        self.slots -= 1;
        slot as usize
    }

    /// Maps a key to its owning slot.
    #[inline]
    pub fn slot_of(&self, key: u64) -> usize {
        debug_assert!(!self.points.is_empty());
        let pos = mix64_seeded(key, 0x2545_F491_4F6C_DD1D);
        let idx = self.points.partition_point(|&(p, _)| p < pos);
        // Wrap around the circle.
        let idx = if idx == self.points.len() { 0 } else { idx };
        self.points[idx].1 as usize
    }

    /// Fraction of the ring circle owned by each slot, for diagnostics and
    /// balance tests.
    pub fn arc_ownership(&self) -> Vec<f64> {
        let mut arcs = vec![0.0f64; self.slots];
        if self.points.is_empty() {
            return arcs;
        }
        for w in self.points.windows(2) {
            let (p0, _) = w[0];
            let (p1, owner) = w[1];
            arcs[owner as usize] += (p1 - p0) as f64;
        }
        // Wrap-around arc: from the last point to the first.
        let (last, _) = *self.points.last().unwrap();
        let (first, owner) = self.points[0];
        arcs[owner as usize] += (u64::MAX - last) as f64 + first as f64;
        let total: f64 = arcs.iter().sum();
        for a in &mut arcs {
            *a /= total;
        }
        arcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_in_range_and_deterministic() {
        let ring = HashRing::new(10);
        for key in 0..10_000u64 {
            let s = ring.slot_of(key);
            assert!(s < 10);
            assert_eq!(s, ring.slot_of(key));
        }
    }

    #[test]
    fn uniform_keys_spread_within_tolerance() {
        let ring = HashRing::new(8);
        let n_keys = 200_000u64;
        let mut counts = [0usize; 8];
        for key in 0..n_keys {
            counts[ring.slot_of(key)] += 1;
        }
        let expect = n_keys as f64 / 8.0;
        for (slot, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.2, "slot {slot}: {c} vs {expect} (dev {dev:.3})");
        }
    }

    #[test]
    fn scale_out_only_moves_keys_to_new_slot() {
        let mut ring = HashRing::new(6);
        let before: Vec<usize> = (0..50_000u64).map(|k| ring.slot_of(k)).collect();
        let new_slot = ring.add_slot();
        assert_eq!(new_slot, 6);
        let mut moved = 0usize;
        for (k, &old) in before.iter().enumerate() {
            let now = ring.slot_of(k as u64);
            if now != old {
                assert_eq!(now, new_slot, "key {k} moved {old}→{now}, not to new slot");
                moved += 1;
            }
        }
        // Expected churn ≈ K/(n+1) = 50_000/7 ≈ 7_143; allow wide slack.
        let expect = 50_000.0 / 7.0;
        assert!(
            (moved as f64) < expect * 1.5 && (moved as f64) > expect * 0.5,
            "moved {moved}, expected ≈ {expect}"
        );
    }

    #[test]
    fn remove_slot_is_the_inverse_of_add_slot() {
        let mut ring = HashRing::new(6);
        let before: Vec<usize> = (0..50_000u64).map(|k| ring.slot_of(k)).collect();
        ring.add_slot();
        assert_eq!(ring.remove_slot(), 6);
        assert_eq!(ring.slots(), 6);
        let after: Vec<usize> = (0..50_000u64).map(|k| ring.slot_of(k)).collect();
        assert_eq!(before, after, "add then remove must restore ownership");
    }

    #[test]
    fn remove_slot_only_moves_the_victims_keys() {
        let mut ring = HashRing::new(7);
        let before: Vec<usize> = (0..50_000u64).map(|k| ring.slot_of(k)).collect();
        let victim = ring.remove_slot();
        assert_eq!(victim, 6);
        for (k, &old) in before.iter().enumerate() {
            let now = ring.slot_of(k as u64);
            if old == victim {
                assert_ne!(now, victim, "key {k} still owned by removed slot");
            } else {
                assert_eq!(now, old, "key {k} moved {old}→{now} without cause");
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot remove the last ring slot")]
    fn remove_last_slot_panics() {
        HashRing::new(1).remove_slot();
    }

    #[test]
    fn arc_ownership_sums_to_one_and_is_balanced() {
        let ring = HashRing::new(12);
        let arcs = ring.arc_ownership();
        let sum: f64 = arcs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for (slot, &a) in arcs.iter().enumerate() {
            assert!(
                (a - 1.0 / 12.0).abs() < 0.05,
                "slot {slot} owns {a:.4} of the ring"
            );
        }
    }

    #[test]
    fn single_slot_owns_everything() {
        let ring = HashRing::new(1);
        for key in 0..1000u64 {
            assert_eq!(ring.slot_of(key), 0);
        }
        assert!((ring.arc_ownership()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        HashRing::new(0);
    }

    #[test]
    fn vnode_count_respected() {
        let ring = HashRing::with_vnodes(4, 16);
        assert_eq!(ring.vnodes(), 16);
        assert_eq!(ring.slots(), 4);
    }
}
