//! Scaled-down TPC-H `DBGen`-like generator and the continuous Q5 input.
//!
//! The paper generates 1 GB of TPC-H data with Zipf skew (`z = 0.8`) on
//! the foreign keys and runs Q5 as a continuous query over sliding windows
//! (Fig. 16), triggering a distribution change every 15 minutes with
//! `f = 1`. Q5 joins `customer ⋈ orders ⋈ lineitem ⋈ supplier ⋈ nation ⋈
//! region`, filters one region, and aggregates revenue per nation.
//!
//! Here the dimension tables (region, nation, customer, supplier) are
//! generated up front and treated as broadcast state; the fact streams
//! (orders, lineitems) arrive as [`TpchEvent`]s. The stream-side join key
//! is `orderkey` (orders ⋈ lineitems), whose fan-out is heavy-tailed — the
//! skew that stalls the intermediate join operator in the paper's Fig. 16
//! discussion. Foreign keys `custkey`/`suppkey` are Zipf(`z`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use streambal_hashring::mix64;

use crate::zipf::ZipfGen;

/// TPC-H's five regions.
pub const REGION_NAMES: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// TPC-H's 25 nations (abridged naming, same cardinality and region map).
pub const N_NATIONS: usize = 25;

/// `region_of_nation[n]` per the TPC-H specification's nation table.
pub const REGION_OF_NATION: [u8; N_NATIONS] = [
    0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 2, 2, 4, 0, 4, 0, 3, 2, 3, 3, 1, 2, 3, 1,
];

/// Generator sizing and skew parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpchParams {
    /// Number of customers (TPC-H SF·150 000; scaled down here).
    pub customers: usize,
    /// Number of suppliers (TPC-H SF·10 000).
    pub suppliers: usize,
    /// Orders generated per interval.
    pub orders_per_interval: usize,
    /// Zipf skew on the foreign keys (paper: 0.8).
    pub z: f64,
    /// Maximum lineitems per order (TPC-H: 7); the fan-out is
    /// heavy-tailed up to this bound.
    pub max_lineitems: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchParams {
    fn default() -> Self {
        TpchParams {
            customers: 15_000,
            suppliers: 1_000,
            orders_per_interval: 5_000,
            z: 0.8,
            max_lineitems: 7,
            seed: 3735928559,
        }
    }
}

/// One stream event of the continuous Q5 pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpchEvent {
    /// An order header.
    Order {
        /// Join key toward lineitems.
        orderkey: u64,
        /// Foreign key into the customer dimension (Zipf-skewed).
        custkey: u64,
        /// Order date as an interval index (drives window filtering).
        orderdate: u32,
    },
    /// An order line.
    Lineitem {
        /// Join key toward its order.
        orderkey: u64,
        /// Foreign key into the supplier dimension (Zipf-skewed).
        suppkey: u64,
        /// `extendedprice · (1 − discount)` in cents.
        revenue_cents: u64,
    },
}

impl TpchEvent {
    /// The stream-side join key (orderkey) — the partitioning key of the
    /// Q5 join operator.
    pub fn join_key(&self) -> u64 {
        match *self {
            TpchEvent::Order { orderkey, .. } | TpchEvent::Lineitem { orderkey, .. } => orderkey,
        }
    }
}

/// The DBGen-like generator.
#[derive(Debug, Clone)]
pub struct TpchGen {
    params: TpchParams,
    nation_of_customer: Vec<u8>,
    nation_of_supplier: Vec<u8>,
    zipf_cust: ZipfGen,
    zipf_supp: ZipfGen,
    /// Permutations mapping Zipf rank → entity id; reshuffled on
    /// distribution changes.
    cust_of_rank: Vec<u32>,
    supp_of_rank: Vec<u32>,
    next_orderkey: u64,
    interval: u32,
    rng: StdRng,
}

impl TpchGen {
    /// Creates the generator and its dimension tables.
    pub fn new(params: TpchParams) -> Self {
        assert!(params.customers > 0 && params.suppliers > 0);
        assert!(params.max_lineitems >= 1);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let nation_of_customer = (0..params.customers)
            .map(|_| rng.gen_range(0..N_NATIONS) as u8)
            .collect();
        let nation_of_supplier = (0..params.suppliers)
            .map(|_| rng.gen_range(0..N_NATIONS) as u8)
            .collect();
        let mut g = TpchGen {
            zipf_cust: ZipfGen::new(params.customers, params.z),
            zipf_supp: ZipfGen::new(params.suppliers, params.z),
            cust_of_rank: (0..params.customers as u32).collect(),
            supp_of_rank: (0..params.suppliers as u32).collect(),
            nation_of_customer,
            nation_of_supplier,
            next_orderkey: 1,
            interval: 0,
            rng,
            params,
        };
        g.reshuffle(); // initial random rank permutation
        g
    }

    /// The generator parameters.
    pub fn params(&self) -> &TpchParams {
        &self.params
    }

    /// Current interval index (the `orderdate` stamped on new orders).
    pub fn interval(&self) -> u32 {
        self.interval
    }

    /// Nation of a customer (dimension lookup).
    pub fn nation_of_customer(&self, custkey: u64) -> u8 {
        self.nation_of_customer[custkey as usize]
    }

    /// Nation of a supplier (dimension lookup).
    pub fn nation_of_supplier(&self, suppkey: u64) -> u8 {
        self.nation_of_supplier[suppkey as usize]
    }

    /// Region of a nation (dimension lookup).
    pub fn region_of_nation(&self, nation: u8) -> u8 {
        REGION_OF_NATION[nation as usize]
    }

    /// Re-permutes the Zipf rank → entity maps: the paper's "distribution
    /// change every 15 minutes with f = 1". Hot customers/suppliers swap
    /// identities abruptly.
    pub fn reshuffle(&mut self) {
        let salt: u64 = self.rng.gen();
        self.cust_of_rank
            .sort_unstable_by_key(|&c| mix64(c as u64 ^ salt));
        self.supp_of_rank
            .sort_unstable_by_key(|&s| mix64(s as u64 ^ salt.rotate_left(17)));
    }

    /// Generates one interval's event stream: orders with their lineitems,
    /// `orderdate` = current interval. Advances the interval counter.
    pub fn interval_events(&mut self) -> Vec<TpchEvent> {
        let mut out = Vec::with_capacity(self.params.orders_per_interval * 3);
        for _ in 0..self.params.orders_per_interval {
            let orderkey = self.next_orderkey;
            self.next_orderkey += 1;
            let cust_rank = self.zipf_cust.sample(&mut self.rng);
            let custkey = self.cust_of_rank[cust_rank] as u64;
            out.push(TpchEvent::Order {
                orderkey,
                custkey,
                orderdate: self.interval,
            });
            // Heavy-tailed lineitem fan-out: hot orders (low rank) carry
            // more lines.
            let n_lines = 1 + self
                .rng
                .gen_range(0..self.params.max_lineitems)
                .min(self.params.max_lineitems - 1);
            for _ in 0..n_lines {
                let supp_rank = self.zipf_supp.sample(&mut self.rng);
                let suppkey = self.supp_of_rank[supp_rank] as u64;
                let price = self.rng.gen_range(10_000..1_000_000_u64);
                let discount = self.rng.gen_range(0..=10u64); // 0–10 %
                out.push(TpchEvent::Lineitem {
                    orderkey,
                    suppkey,
                    revenue_cents: price * (100 - discount) / 100,
                });
            }
        }
        self.interval += 1;
        out
    }

    /// Reference (batch) Q5 over a window of events: revenue per nation,
    /// restricted to `region`, for orders with
    /// `orderdate ∈ [from, to)` and matching `c_nationkey = s_nationkey`.
    /// Used to validate the streaming pipeline's output.
    pub fn reference_q5(
        &self,
        events: &[TpchEvent],
        region: u8,
        from: u32,
        to: u32,
    ) -> std::collections::BTreeMap<u8, u64> {
        use std::collections::BTreeMap;
        let mut orders: BTreeMap<u64, (u64, u32)> = BTreeMap::new();
        for e in events {
            if let TpchEvent::Order {
                orderkey,
                custkey,
                orderdate,
            } = *e
            {
                orders.insert(orderkey, (custkey, orderdate));
            }
        }
        let mut revenue: BTreeMap<u8, u64> = BTreeMap::new();
        for e in events {
            if let TpchEvent::Lineitem {
                orderkey,
                suppkey,
                revenue_cents,
            } = *e
            {
                let Some(&(custkey, orderdate)) = orders.get(&orderkey) else {
                    continue;
                };
                if orderdate < from || orderdate >= to {
                    continue;
                }
                let c_nation = self.nation_of_customer(custkey);
                let s_nation = self.nation_of_supplier(suppkey);
                if c_nation != s_nation {
                    continue; // Q5: customer and supplier in same nation
                }
                if self.region_of_nation(s_nation) != region {
                    continue;
                }
                *revenue.entry(s_nation).or_insert(0) += revenue_cents;
            }
        }
        revenue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small() -> TpchGen {
        TpchGen::new(TpchParams {
            customers: 500,
            suppliers: 100,
            orders_per_interval: 1000,
            z: 0.8,
            max_lineitems: 7,
            seed: 42,
        })
    }

    #[test]
    fn region_map_covers_all_regions() {
        let mut seen = [false; 5];
        for &r in &REGION_OF_NATION {
            seen[r as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "every region has nations");
        assert_eq!(REGION_OF_NATION.len(), 25);
    }

    #[test]
    fn orders_precede_their_lineitems() {
        let mut g = small();
        let events = g.interval_events();
        let mut seen_orders = std::collections::HashSet::new();
        for e in &events {
            match *e {
                TpchEvent::Order { orderkey, .. } => {
                    seen_orders.insert(orderkey);
                }
                TpchEvent::Lineitem { orderkey, .. } => {
                    assert!(seen_orders.contains(&orderkey), "lineitem before its order");
                }
            }
        }
    }

    #[test]
    fn custkeys_are_zipf_skewed() {
        let mut g = small();
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..5 {
            for e in g.interval_events() {
                if let TpchEvent::Order { custkey, .. } = e {
                    *counts.entry(custkey).or_insert(0) += 1;
                }
            }
        }
        let max = *counts.values().max().unwrap();
        let total: u64 = counts.values().sum();
        let mean = total as f64 / counts.len() as f64;
        assert!(max as f64 > mean * 5.0, "hot customer {max} vs mean {mean}");
    }

    #[test]
    fn reshuffle_changes_hot_customers() {
        let mut g = small();
        let hot_of = |events: &[TpchEvent]| {
            let mut counts: HashMap<u64, u64> = HashMap::new();
            for e in events {
                if let TpchEvent::Order { custkey, .. } = *e {
                    *counts.entry(custkey).or_insert(0) += 1;
                }
            }
            counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0
        };
        let before = hot_of(&g.interval_events());
        g.reshuffle();
        let after = hot_of(&g.interval_events());
        // With 500 customers the odds the same one stays #1 are tiny; use
        // a few reshuffles to make flakiness negligible.
        if before == after {
            g.reshuffle();
            let third = hot_of(&g.interval_events());
            assert_ne!(before, third, "reshuffle must rotate the hot set");
        }
    }

    #[test]
    fn reference_q5_filters_correctly() {
        let mut g = small();
        let events = g.interval_events();
        for region in 0..5u8 {
            let rev = g.reference_q5(&events, region, 0, 1);
            for (&nation, &r) in &rev {
                assert_eq!(g.region_of_nation(nation), region);
                assert!(r > 0);
            }
        }
        // Window exclusion: an empty window yields nothing.
        assert!(g.reference_q5(&events, 2, 5, 9).is_empty());
    }

    #[test]
    fn revenue_cents_positive_and_bounded() {
        let mut g = small();
        for e in g.interval_events() {
            if let TpchEvent::Lineitem { revenue_cents, .. } = e {
                assert!((9_000..=1_000_000).contains(&revenue_cents));
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = small().interval_events();
        let b = small().interval_events();
        assert_eq!(a, b);
    }

    #[test]
    fn join_key_accessor() {
        let o = TpchEvent::Order {
            orderkey: 7,
            custkey: 1,
            orderdate: 0,
        };
        let l = TpchEvent::Lineitem {
            orderkey: 7,
            suppkey: 2,
            revenue_cents: 100,
        };
        assert_eq!(o.join_key(), 7);
        assert_eq!(l.join_key(), 7);
    }
}
