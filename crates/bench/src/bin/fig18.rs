//! Regenerates the paper's Fig. 18 (see EXPERIMENTS.md): prints the text
//! tables and writes `bench_results/fig18.json`.
fn main() {
    let scale = streambal_bench::Scale::from_env();
    streambal_bench::figure::emit(&streambal_bench::figs_sim::fig18(scale), scale);
}
