//! The Mixed algorithm (paper §III-C, Algorithm 4) and its brute-force
//! variant MixedBF.
//!
//! Mixed interpolates between MinMig (`n = 0` keys cleaned) and MinTable
//! (`n = N_A`, everything cleaned): Phase I moves back the `n`
//! smallest-state table entries (criteria η = smallest `Sᵢ(k, w)` first, so
//! the forced move-backs are the cheapest possible migrations), then
//! Phases II–III run MinMig-style with the γ criteria. The trial loop
//! grows `n` until the resulting table fits `Amax`.
//!
//! Algorithm 4's line 10 literally sets `n ← N_{A′} − Amax` each trial,
//! which can oscillate; we use the monotone variant
//! `n ← min(N_A, n + max(1, N_{A′} − Amax))` which terminates after at most
//! `N_A` trials and degenerates to MinTable exactly as the paper describes
//! (see DESIGN.md deviations).

use crate::key::TaskId;
use crate::llfd::{llfd, Arena, Criteria};
use crate::stats::KeyRecord;

/// Result of one Mixed/MixedBF run with its trial diagnostics.
#[derive(Debug, Clone)]
pub struct MixedResult {
    /// New assignment, parallel to the input records.
    pub assign: Vec<TaskId>,
    /// Number of Phase-I move-backs in the accepted trial.
    pub cleaned: usize,
    /// Trials executed before accepting.
    pub trials: usize,
    /// Size of the resulting routing table (`F′(k) ≠ h(k)` count).
    pub table_len: usize,
}

/// The Phase-I cleaning order η. The paper uses smallest windowed memory
/// first (forced move-backs are the cheapest migrations); the alternatives
/// exist for ablation studies quantifying that choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EtaOrder {
    /// Paper: smallest `Sᵢ(k, w)` first.
    #[default]
    SmallestMem,
    /// Ablation: largest state first (worst-case move-backs).
    LargestMem,
    /// Ablation: key order (arbitrary but deterministic).
    KeyOrder,
}

/// Indices of current table entries (`F(k) ≠ h(k)`), sorted by η.
fn table_entries_by_eta(records: &[KeyRecord], order: EtaOrder) -> Vec<u32> {
    let mut idxs: Vec<u32> = (0..records.len() as u32)
        .filter(|&i| records[i as usize].in_table())
        .collect();
    idxs.sort_unstable_by(|&a, &b| {
        let (ra, rb) = (&records[a as usize], &records[b as usize]);
        match order {
            EtaOrder::SmallestMem => ra.mem.cmp(&rb.mem).then_with(|| ra.key.cmp(&rb.key)),
            EtaOrder::LargestMem => rb.mem.cmp(&ra.mem).then_with(|| ra.key.cmp(&rb.key)),
            EtaOrder::KeyOrder => ra.key.cmp(&rb.key),
        }
    });
    idxs
}

fn table_len_of(records: &[KeyRecord], assign: &[TaskId]) -> usize {
    records
        .iter()
        .zip(assign)
        .filter(|(r, &d)| d != r.hash_dest)
        .count()
}

/// One trial: move back the first `n` η-ordered table entries, then run
/// Phases II–III.
fn trial(
    records: &[KeyRecord],
    n_tasks: usize,
    theta_max: f64,
    beta: f64,
    eta: &[u32],
    n: usize,
) -> Vec<TaskId> {
    let mut moved_back = vec![false; records.len()];
    for &i in &eta[..n.min(eta.len())] {
        moved_back[i as usize] = true;
    }
    let mut arena = Arena::new(records, n_tasks, Criteria::LargestGamma { beta }, |i, r| {
        if moved_back[i] {
            r.hash_dest
        } else {
            r.current
        }
    });
    let candidates = arena.drain_overloaded(theta_max);
    llfd(&mut arena, candidates, theta_max);
    arena.into_assignment()
}

/// Runs Mixed (Algorithm 4); `table_max` is `Amax`.
pub fn mixed_assign(
    records: &[KeyRecord],
    n_tasks: usize,
    theta_max: f64,
    beta: f64,
    table_max: usize,
) -> MixedResult {
    mixed_assign_with_eta(
        records,
        n_tasks,
        theta_max,
        beta,
        table_max,
        EtaOrder::default(),
    )
}

/// [`mixed_assign`] with an explicit Phase-I cleaning order (ablation).
pub fn mixed_assign_with_eta(
    records: &[KeyRecord],
    n_tasks: usize,
    theta_max: f64,
    beta: f64,
    table_max: usize,
    order: EtaOrder,
) -> MixedResult {
    let eta = table_entries_by_eta(records, order);
    let mut n = 0usize;
    let mut trials = 0usize;
    loop {
        trials += 1;
        let assign = trial(records, n_tasks, theta_max, beta, &eta, n);
        let table_len = table_len_of(records, &assign);
        let over = table_len.saturating_sub(table_max);
        if over == 0 || n >= eta.len() {
            return MixedResult {
                assign,
                cleaned: n,
                trials,
                table_len,
            };
        }
        n = (n + over.max(1)).min(eta.len());
    }
}

/// Runs MixedBF: tries *every* cleaning depth `n ∈ [0, N_A]` and returns
/// the feasible solution (`table ≤ Amax`) with the smallest migration
/// cost; if none is feasible, the one with the smallest table. This is the
/// paper's expensive reference point (Fig. 12a shows it orders of
/// magnitude slower than Mixed).
pub fn mixed_bf_assign(
    records: &[KeyRecord],
    n_tasks: usize,
    theta_max: f64,
    beta: f64,
    table_max: usize,
) -> MixedResult {
    let eta = table_entries_by_eta(records, EtaOrder::default());
    let mut best: Option<(bool, u64, usize, Vec<TaskId>, usize)> = None;
    let mut trials = 0usize;
    for n in 0..=eta.len() {
        trials += 1;
        let assign = trial(records, n_tasks, theta_max, beta, &eta, n);
        let table_len = table_len_of(records, &assign);
        let feasible = table_len <= table_max;
        let mig: u64 = records
            .iter()
            .zip(&assign)
            .filter(|(r, &d)| d != r.current)
            .map(|(r, _)| r.mem)
            .sum();
        // Rank: feasible first, then min migration, then min table.
        let better = match &best {
            None => true,
            Some((bf, bm, bt, _, _)) => {
                (feasible, mig, table_len) < (*bf, *bm, *bt)
                    || (feasible && !bf)
                    || (feasible == *bf && (mig, table_len) < (*bm, *bt))
            }
        };
        if better {
            best = Some((feasible, mig, table_len, assign, n));
        }
    }
    // lint: allow(panic, reason = "the trial loop runs at least once for any
    // non-empty candidate ladder, which the caller constructs from n >= 1")
    let (_, _, table_len, assign, cleaned) = best.expect("at least one trial ran");
    MixedResult {
        assign,
        cleaned,
        trials,
        table_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;
    use crate::load::LoadSummary;
    use crate::migration::migration_delta;

    fn rec(key: u64, cost: u64, mem: u64, cur: u32, hash: u32) -> KeyRecord {
        KeyRecord {
            key: Key(key),
            cost,
            mem,
            current: TaskId(cur),
            hash_dest: TaskId(hash),
        }
    }

    fn loads_of(records: &[KeyRecord], assign: &[TaskId], n: usize) -> LoadSummary {
        let mut loads = vec![0u64; n];
        for (r, d) in records.iter().zip(assign) {
            loads[d.index()] += r.cost;
        }
        LoadSummary::new(loads)
    }

    #[test]
    fn acts_like_minmig_when_table_is_unconstrained() {
        let records = vec![
            rec(1, 10, 1000, 0, 0),
            rec(2, 10, 1, 0, 0),
            rec(3, 1, 1, 1, 1),
        ];
        let res = mixed_assign(&records, 2, 0.1, 1.0, usize::MAX);
        assert_eq!(res.cleaned, 0, "n stays 0 when Amax is loose");
        assert_eq!(res.trials, 1);
        // Same move MinMig would pick: the light-state key.
        let plan = migration_delta(&records, |k| {
            res.assign[records.iter().position(|r| r.key == k).unwrap()]
        });
        assert_eq!(plan.cost_bytes(), 1);
    }

    #[test]
    fn cleans_until_table_fits() {
        // Six parked keys (table entries). Amax = 2 forces cleaning. The
        // hash assignment is balanced, so cleaned keys stay at hash and
        // the table shrinks.
        let records = vec![
            rec(1, 5, 10, 1, 0),
            rec(2, 5, 20, 0, 1),
            rec(3, 5, 30, 1, 0),
            rec(4, 5, 40, 0, 1),
            rec(5, 5, 50, 1, 0),
            rec(6, 5, 60, 0, 1),
        ];
        let res = mixed_assign(&records, 2, 0.0, 1.5, 2);
        assert!(res.table_len <= 2, "table {} exceeds Amax=2", res.table_len);
        assert!(res.cleaned >= 4, "cleaned {}", res.cleaned);
        // Cleaning order is smallest-memory-first: keys 1 and 2 clean
        // before 5 and 6. The survivors (if any) are the biggest states.
        let s = loads_of(&records, &res.assign, 2);
        assert!(s.max_theta() < 1e-9);
    }

    #[test]
    fn eta_order_is_smallest_memory_first() {
        let records = vec![
            rec(1, 1, 300, 1, 0),
            rec(2, 1, 100, 1, 0),
            rec(3, 1, 200, 1, 0),
            rec(4, 1, 999, 0, 0), // not a table entry
        ];
        let eta = table_entries_by_eta(&records, EtaOrder::SmallestMem);
        let keys: Vec<u64> = eta.iter().map(|&i| records[i as usize].key.raw()).collect();
        assert_eq!(keys, vec![2, 3, 1]);
    }

    #[test]
    fn bf_never_worse_than_mixed_on_migration() {
        // Randomized-ish workload with a tight table bound.
        let records: Vec<_> = (0..24)
            .map(|i| {
                let cur = (i % 3) as u32;
                let hash = ((i * 7 + 1) % 3) as u32;
                rec(i, 1 + (i * i) % 9, 1 + (i * 13) % 50, cur, hash)
            })
            .collect();
        let mig_of = |assign: &[TaskId]| -> u64 {
            records
                .iter()
                .zip(assign)
                .filter(|(r, &d)| d != r.current)
                .map(|(r, _)| r.mem)
                .sum()
        };
        let mixed = mixed_assign(&records, 3, 0.1, 1.5, 4);
        let bf = mixed_bf_assign(&records, 3, 0.1, 1.5, 4);
        if bf.table_len <= 4 && mixed.table_len <= 4 {
            assert!(
                mig_of(&bf.assign) <= mig_of(&mixed.assign),
                "BF migration {} > Mixed {}",
                mig_of(&bf.assign),
                mig_of(&mixed.assign)
            );
        }
        assert_eq!(
            bf.trials,
            table_entries_by_eta(&records, EtaOrder::SmallestMem).len() + 1
        );
    }

    #[test]
    fn degenerates_to_full_cleaning_when_needed() {
        // Amax = 0: every entry must clean; Mixed must reach n = N_A.
        let records = vec![rec(1, 5, 10, 1, 0), rec(2, 5, 10, 0, 1)];
        let res = mixed_assign(&records, 2, 0.0, 1.5, 0);
        assert_eq!(res.cleaned, 2);
        // Hash assignment is balanced here, so the final table is empty.
        assert_eq!(res.table_len, 0);
    }

    #[test]
    fn balance_still_met_under_table_pressure() {
        // Skewed workload + tight Amax: balance is the hard constraint in
        // Eq. 3; table may exceed only if even full cleaning cannot fit.
        let records: Vec<_> = (0..40)
            .map(|i| rec(i, if i < 4 { 50 } else { 5 }, 10, 0, (i % 4) as u32))
            .collect();
        let res = mixed_assign(&records, 4, 0.1, 1.5, 8);
        let s = loads_of(&records, &res.assign, 4);
        assert!(s.max_theta() <= 0.3, "θ={}", s.max_theta());
    }

    #[test]
    fn empty_records() {
        let res = mixed_assign(&[], 2, 0.1, 1.5, 10);
        assert!(res.assign.is_empty());
        assert_eq!(res.table_len, 0);
    }
}
