//! Baseline partitioners the paper compares against (§V / §VI).
//!
//! * [`HashPartitioner`] — static consistent hashing, i.e. vanilla Storm
//!   key grouping ("Storm" in the figures).
//! * [`ShufflePartitioner`] — key-oblivious round-robin, the "Ideal"
//!   throughput bound (unusable for stateful operators).
//! * [`PkgPartitioner`] — Partial Key Grouping [Nasir et al., ICDE'15]:
//!   power-of-two-choices routing that *splits* each key across two
//!   workers; needs a downstream merge operator for aggregations and
//!   cannot express joins.
//! * [`ReadjPartitioner`] — Gedik's partitioning-function rebalance
//!   [VLDBJ'14] ("Readj"): hash + explicit table like ours, but rebalanced
//!   by move-back plus exhaustive task/key pair move-and-swap search over
//!   hot keys, gated by the σ threshold.
//! * [`CoreBalancer`] — adapter putting `streambal-core`'s strategies
//!   (Mixed, MinTable, …) behind the same [`Partitioner`] trait so the
//!   simulator and runtime can swap strategies uniformly.
//!
//! All partitioners implement [`Partitioner`], the strategy interface
//! owned by `streambal-core` (re-exported here for convenience): the
//! simulator (`streambal-sim`) and engine (`streambal-runtime`) depend on
//! the core trait directly and never on this crate.

pub mod core_wrapper;
pub mod hash_only;
pub mod pkg;
pub mod readj;
pub mod shuffle;

pub use core_wrapper::CoreBalancer;
pub use hash_only::HashPartitioner;
pub use pkg::PkgPartitioner;
pub use readj::{readj_rebalance, ReadjConfig, ReadjPartitioner};
pub use shuffle::ShufflePartitioner;

// Convenience re-exports of the strategy interface, which moved to
// `streambal-core` (the drivers' dependency); implementations here use it
// through these paths.
pub use streambal_core::{Partitioner, RoutingView};

#[cfg(test)]
mod tests {
    use super::*;
    use streambal_core::Key;

    /// Every baseline must route within range and be deterministic at the
    /// interval granularity (PKG may vary with load state, but stays in
    /// range).
    #[test]
    fn all_baselines_route_in_range() {
        let mut parts: Vec<Box<dyn Partitioner>> = vec![
            Box::new(HashPartitioner::new(5)),
            Box::new(ShufflePartitioner::new(5)),
            Box::new(PkgPartitioner::new(5)),
            Box::new(ReadjPartitioner::new(5, 2, ReadjConfig::default())),
        ];
        for p in parts.iter_mut() {
            for k in 0..1000u64 {
                let d = p.route(Key(k));
                assert!(d.index() < 5, "{} routed out of range", p.name());
            }
        }
    }

    /// Batched routing must be observationally identical to per-key
    /// routing — including for stateful strategies (shuffle cursor, PKG
    /// estimates), compared against a freshly built twin.
    #[test]
    fn route_batch_matches_per_key_for_all_baselines() {
        use streambal_core::{BalanceParams, RebalanceStrategy, TaskId};
        fn fresh_pair() -> Vec<(Box<dyn Partitioner>, Box<dyn Partitioner>)> {
            fn build() -> Vec<Box<dyn Partitioner>> {
                vec![
                    Box::new(HashPartitioner::new(5)),
                    Box::new(ShufflePartitioner::new(5)),
                    Box::new(PkgPartitioner::new(5)),
                    Box::new(ReadjPartitioner::new(5, 2, ReadjConfig::default())),
                    Box::new(CoreBalancer::new(
                        5,
                        2,
                        RebalanceStrategy::Mixed,
                        BalanceParams::default(),
                    )),
                ]
            }
            build().into_iter().zip(build()).collect()
        }
        let keys: Vec<Key> = (0..2_000u64).map(Key).collect();
        for (mut batched, mut per_key) in fresh_pair() {
            let name = batched.name();
            let mut out = Vec::new();
            batched.route_batch(&keys, &mut out);
            let expect: Vec<TaskId> = keys.iter().map(|&k| per_key.route(k)).collect();
            assert_eq!(out, expect, "{name}: batch diverged from per-key");
        }
    }

    /// Every baseline supports a scale-out → scale-in round trip and never
    /// routes to the retired task afterwards.
    #[test]
    fn scale_round_trip_for_all_baselines() {
        use streambal_core::{BalanceParams, RebalanceStrategy};
        let live: Vec<Key> = (0..500u64).map(Key).collect();
        let parts: Vec<Box<dyn Partitioner>> = vec![
            Box::new(HashPartitioner::new(3)),
            Box::new(ShufflePartitioner::new(3)),
            Box::new(PkgPartitioner::new(3)),
            Box::new(ReadjPartitioner::new(3, 2, ReadjConfig::default())),
            Box::new(CoreBalancer::new(
                3,
                2,
                RebalanceStrategy::Mixed,
                BalanceParams::default(),
            )),
        ];
        for mut p in parts {
            let name = p.name();
            let new = p.scale_out(&live);
            assert_eq!(new.index(), 3, "{name}");
            assert_eq!(p.n_tasks(), 4, "{name}");
            p.scale_in(new, &live);
            assert_eq!(p.n_tasks(), 3, "{name}");
            for &k in &live {
                assert!(p.route(k).index() < 3, "{name}: routed to retired task");
            }
        }
    }

    #[test]
    fn key_semantics_flags() {
        assert!(HashPartitioner::new(2).preserves_key_semantics());
        assert!(!PkgPartitioner::new(2).preserves_key_semantics());
        assert!(ReadjPartitioner::new(2, 1, ReadjConfig::default()).preserves_key_semantics());
    }
}
