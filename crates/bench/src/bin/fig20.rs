//! Regenerates the paper's Figs. 20-21 (see EXPERIMENTS.md).
fn main() {
    let scale = streambal_bench::Scale::from_env();
    print!("{}", streambal_bench::figs_sim::fig20_21(scale));
}
