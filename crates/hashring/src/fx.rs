//! Multiply-xor hashing primitives.
//!
//! SipHash (std's default) is overkill for the router hot path: keys here
//! are 64-bit identifiers that are already well-distributed or get finished
//! through [`mix64`]. A single multiply-xor round per word is an order of
//! magnitude cheaper and is the same design rustc uses internally.

use std::hash::{BuildHasherDefault, Hasher};

/// SplitMix64 finalizer: a full-avalanche bijection on `u64`.
///
/// Every bit of the output depends on every bit of the input, so taking
/// `mix64(k) % n` yields a near-uniform slot assignment even for dense
/// integer key domains (`0..K`), which is exactly how the synthetic
/// workloads name their keys.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// [`mix64`] with an extra seed, producing an independent hash family
/// member. Used wherever two or more independent functions of the same key
/// are needed (ring points, power-of-two-choices).
#[inline]
pub fn mix64_seeded(x: u64, seed: u64) -> u64 {
    mix64(x ^ seed.wrapping_mul(0xA24B_AED4_963E_E407))
}

/// A fast streaming hasher: one rotate-xor-multiply round per 8-byte word.
///
/// Not HashDoS-resistant — do not expose to untrusted keys. Inside the
/// engine all hashed values are internal identifiers, matching the threat
/// model under which rustc uses the same construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher64 {
    state: u64,
}

impl FxHasher64 {
    const SEED: u64 = 0x51_7C_C1_B7_27_22_0A_95;

    #[inline]
    fn round(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        // A final avalanche pass: the multiply-xor rounds alone are weak in
        // the low bits, and HashMap derives bucket indices from them.
        mix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.round(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.round(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.round(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.round(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.round(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.round(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.round(v as u64);
    }
}

/// One-shot [`FxHasher64`] of a single `u64` — exactly the value
/// `FxBuildHasher::default().hash_one(x)` produces, without constructing a
/// hasher.
///
/// This is the full probe hash behind [`FxHashMap`] for `u64`-shaped keys,
/// exposed so that flat open-addressed structures can index with the
/// *same* hash function the map they replace used, keeping collision
/// behaviour and benchmarks comparable.
///
/// Do not be tempted to skip the avalanche and index flat tables with the
/// bare multiply (`x * SEED`): on dense sequential key domains — exactly
/// what the synthetic workloads produce — its bits land with
/// three-distance regularity and linear-probe chains triple (measured
/// ~4.4 vs ~1.3 average probes at a 3000-entry/8192-slot table). Use this
/// full hash, or [`mix64`], for any open-addressed indexing.
#[inline]
pub fn fx_hash_u64(x: u64) -> u64 {
    // write_u64 from a zero state: (rotl(0,5) ^ x) * SEED = x * SEED,
    // then the finish() avalanche.
    mix64(x.wrapping_mul(FxHasher64::SEED))
}

/// `BuildHasher` for [`FxHasher64`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher64>;

/// `HashMap` keyed with the fast hasher; drop-in for `std::HashMap`.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the fast hasher; drop-in for `std::HashSet`.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_bytes(b: &[u8]) -> u64 {
        FxBuildHasher::default().hash_one(b)
    }

    #[test]
    fn mix64_is_bijective_on_sample() {
        // A bijection never collides; sample a window and check.
        let mut seen = std::collections::HashSet::new();
        for x in 0..100_000u64 {
            assert!(seen.insert(mix64(x)), "collision at {x}");
        }
    }

    #[test]
    fn mix64_avalanche_flips_about_half_the_bits() {
        let mut total = 0u32;
        let n = 10_000u64;
        for x in 0..n {
            total += (mix64(x) ^ mix64(x ^ 1)).count_ones();
        }
        let avg = total as f64 / n as f64;
        assert!((avg - 32.0).abs() < 2.0, "avalanche average {avg}");
    }

    #[test]
    fn seeded_families_are_independent() {
        // Two family members should disagree on slot assignments often.
        let n = 16u64;
        let mut same = 0;
        for x in 0..10_000u64 {
            if mix64_seeded(x, 1) % n == mix64_seeded(x, 2) % n {
                same += 1;
            }
        }
        // Expected agreement rate 1/16 ≈ 625.
        assert!((400..900).contains(&same), "agreement {same}");
    }

    #[test]
    fn hasher_deterministic_and_length_sensitive() {
        assert_eq!(hash_bytes(b"abcdef"), hash_bytes(b"abcdef"));
        assert_ne!(hash_bytes(b"abcdef"), hash_bytes(b"abcdeg"));
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abc\0"));
    }

    #[test]
    fn hasher_handles_all_chunk_remainders() {
        let data = b"0123456789abcdef0123456789";
        let mut outputs = std::collections::HashSet::new();
        for len in 0..data.len() {
            outputs.insert(hash_bytes(&data[..len]));
        }
        assert_eq!(outputs.len(), data.len(), "prefix hashes must be distinct");
    }

    #[test]
    fn fx_hash_u64_matches_hasher() {
        let b = FxBuildHasher::default();
        for x in (0..10_000u64).chain([u64::MAX, u64::MAX - 1, 1 << 63]) {
            assert_eq!(fx_hash_u64(x), b.hash_one(x), "mismatch at {x}");
        }
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&500), Some(&1000));
        let s: FxHashSet<u64> = (0..100).collect();
        assert!(s.contains(&99));
    }

    #[test]
    fn integer_writes_match_expected_distribution() {
        // Bucket 64k integers into 64 buckets via the hasher; expect no
        // bucket further than 15% from the mean.
        let b = FxBuildHasher::default();
        let mut counts = [0usize; 64];
        for i in 0..65_536u64 {
            counts[(b.hash_one(i) % 64) as usize] += 1;
        }
        let expect = 65_536 / 64;
        for &c in &counts {
            assert!((c as f64 - expect as f64).abs() / (expect as f64) < 0.15);
        }
    }
}
