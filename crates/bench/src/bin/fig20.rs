//! Regenerates the paper's Figs. 20-21 (see EXPERIMENTS.md): prints the text
//! tables and writes `bench_results/fig20_21.json`.
fn main() {
    let scale = streambal_bench::Scale::from_env();
    streambal_bench::figure::emit(&streambal_bench::figs_sim::fig20_21(scale), scale);
}
