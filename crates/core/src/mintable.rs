//! MinTable (paper §III-B, Algorithm 2): minimize routing-table size.
//!
//! Phase I erases the entire routing table (every key virtually moves back
//! to its hash destination); Phases II–III rebalance with the
//! highest-computation-cost-first criteria, so the fewest possible keys
//! need explicit entries. The price is migration volume: cleaned keys that
//! were parked away from `h(k)` physically move back, which Fig. 8b/9b/10b
//! show costs ~3× Mixed's migration.

use crate::key::TaskId;
use crate::llfd::{llfd, Arena, Criteria};
use crate::stats::KeyRecord;

/// Runs MinTable; returns the new assignment, parallel to `records`.
pub fn mintable_assign(records: &[KeyRecord], n_tasks: usize, theta_max: f64) -> Vec<TaskId> {
    // Phase I: clean the table — everyone starts from the hash destination.
    let mut arena = Arena::new(records, n_tasks, Criteria::HighestCost, |_, r| r.hash_dest);
    // Phase II: drain overloaded instances, highest cost first.
    let candidates = arena.drain_overloaded(theta_max);
    // Phase III: LLFD.
    llfd(&mut arena, candidates, theta_max);
    arena.into_assignment()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;
    use crate::load::LoadSummary;

    fn rec(key: u64, cost: u64, cur: u32, hash: u32) -> KeyRecord {
        KeyRecord {
            key: Key(key),
            cost,
            mem: cost,
            current: TaskId(cur),
            hash_dest: TaskId(hash),
        }
    }

    /// The right-hand example of Fig. 4: table {(k3,d2),(k5,d1)} is cleaned
    /// first (k3 back to d1, k5 back to d2), then balancing yields a
    /// 2-entry table instead of LLFD-without-cleaning's 4 entries.
    #[test]
    fn fig4_right_example_small_table() {
        let records = vec![
            rec(1, 7, 0, 0),
            rec(2, 4, 0, 0),
            rec(3, 2, 1, 0), // table entry: parked on d2, hash says d1
            rec(4, 1, 1, 1),
            rec(5, 5, 0, 1), // table entry: parked on d1, hash says d2
            rec(6, 1, 1, 1),
        ];
        let assign = mintable_assign(&records, 2, 0.0);
        let mut loads = [0u64; 2];
        let mut table_entries = 0;
        for (r, d) in records.iter().zip(&assign) {
            loads[d.index()] += r.cost;
            if *d != r.hash_dest {
                table_entries += 1;
            }
        }
        assert_eq!(loads, [10, 10], "absolute balance required");
        assert_eq!(table_entries, 2, "paper: result table has two entries");
    }

    #[test]
    fn cleaning_moves_parked_keys_back_when_already_balanced() {
        // Hash assignment is perfectly balanced; the stale table entry gets
        // dropped by cleaning and never re-added.
        let records = vec![
            rec(1, 5, 1, 0), // parked on d2 but hash wants d1
            rec(2, 5, 0, 1), // parked on d1 but hash wants d2
        ];
        let assign = mintable_assign(&records, 2, 0.0);
        assert_eq!(assign[0], TaskId(0));
        assert_eq!(assign[1], TaskId(1));
    }

    #[test]
    fn balances_skewed_hash_assignment() {
        // 20 keys all hashed to d0 of 4: cleaning does nothing (they're
        // already at hash), LLFD spreads them.
        let records: Vec<_> = (0..20).map(|i| rec(i, 10, 0, 0)).collect();
        let assign = mintable_assign(&records, 4, 0.0);
        let mut loads = vec![0u64; 4];
        for (r, d) in records.iter().zip(&assign) {
            loads[d.index()] += r.cost;
        }
        let s = LoadSummary::new(loads);
        assert!(s.max_theta() < 1e-9, "equal keys must balance exactly");
    }

    #[test]
    fn respects_theta_tolerance() {
        let records: Vec<_> = (0..40).map(|i| rec(i, 1 + i % 7, 0, 0)).collect();
        let assign = mintable_assign(&records, 4, 0.08);
        let mut loads = vec![0u64; 4];
        for (r, d) in records.iter().zip(&assign) {
            loads[d.index()] += r.cost;
        }
        let s = LoadSummary::new(loads);
        assert!(
            s.max_theta() <= 0.08 + 0.15,
            "best-effort balance, got θ={}",
            s.max_theta()
        );
    }

    #[test]
    fn empty_records() {
        assert!(mintable_assign(&[], 3, 0.1).is_empty());
    }
}
