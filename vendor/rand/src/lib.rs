//! Offline shim for `rand` (0.8-style API), backed by xoshiro256++.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin API slice it actually uses: seedable [`rngs::StdRng`],
//! [`Rng::gen`], and [`Rng::gen_range`] over integer and float ranges.
//! Streams are deterministic per seed (they differ from upstream rand's,
//! which is fine: all consumers assert statistical properties, not exact
//! draws).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable RNG.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, n)` by widening multiply (Lemire reduction,
/// without the rejection step — bias is < 2⁻⁴⁰ for every `n` used here).
fn below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add(below(rng, span) as i64)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i64).wrapping_sub(lo as i64).wrapping_add(1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                ((lo as i64).wrapping_add(below(rng, span) as i64)) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_float_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        const N: usize = 100_000;
        for _ in 0..N {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_draws_cover_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
