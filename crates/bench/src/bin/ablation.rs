//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. LLFD's `Adjust` exchange mechanism (on/off) — what the
//!    exchangeable-set machinery buys in balance quality;
//! 2. Mixed's Phase-I cleaning order η (smallest-memory vs largest vs
//!    arbitrary) — what the smallest-`S` heuristic saves in migration;
//! 3. HLHE greedy deviation-cancelling discretization vs naive nearest
//!    rounding — what the holistic assignment buys in estimation error.

use streambal_bench::fig11::skewed_input;
use streambal_bench::{header, row, Defaults, Scale};
use streambal_core::discretize::{discretize, discretize_naive, total_deviation};
use streambal_core::llfd::{llfd_with_options, Arena, Criteria, LlfdOptions};
use streambal_core::mixed::{mixed_assign_with_eta, EtaOrder};
use streambal_core::{LoadSummary, TaskId};

fn main() {
    let scale = Scale::from_env();
    let mut d = Defaults::at(scale);
    d.k = scale.pick(10_000, 50_000);
    d.tuples = scale.pick(100_000, 500_000);
    let input = skewed_input(&d);

    // ---- 1. LLFD exchange on/off -------------------------------------
    println!("# Ablation 1: LLFD Adjust/exchange mechanism (θmax=0)");
    println!(
        "{}",
        header(
            "",
            &["θ achieved".into(), "forced".into(), "exchanges".into()],
            12
        )
    );
    for (label, exchange) in [("with exchange", true), ("without", false)] {
        let mut arena = Arena::new(&input.records, d.nd, Criteria::HighestCost, |_, r| {
            r.hash_dest
        });
        let cands = arena.drain_overloaded(0.0);
        let report = llfd_with_options(&mut arena, cands, 0.0, LlfdOptions { exchange });
        let assign = arena.into_assignment();
        let mut loads = vec![0u64; d.nd];
        for (r, dd) in input.records.iter().zip(&assign) {
            loads[dd.index()] += r.cost;
        }
        let s = LoadSummary::new(loads);
        println!(
            "{}",
            row(
                label,
                &[s.max_theta(), report.forced as f64, report.exchanges as f64],
                12,
                4
            )
        );
    }

    // ---- 2. Mixed η cleaning order ------------------------------------
    // Build an input with a populated routing table: rebalance once, then
    // measure the cost of a second rebalance under each η.
    println!("\n# Ablation 2: Mixed Phase-I cleaning order η (Amax pressure)");
    let params = d.params();
    let first = streambal_core::rebalance(
        &input,
        streambal_core::RebalanceStrategy::Mixed,
        &streambal_core::BalanceParams {
            table_max: usize::MAX,
            ..params
        },
    );
    // Re-point the records at the new assignment (table now populated),
    // and give keys state sizes *independent* of cost so the cleaning
    // order faces real trade-offs.
    let mut records2 = input.records.clone();
    for r in &mut records2 {
        if let Some(to) = first.table.get(r.key) {
            r.current = to;
        } else {
            r.current = r.hash_dest;
        }
        r.mem = 1 + streambal_hashring::mix64(r.key.raw()) % 10_000;
    }
    // Perturb: make task 0 hot again by boosting its keys' costs.
    for r in &mut records2 {
        if r.current == TaskId(0) {
            r.cost = r.cost.saturating_mul(2);
        }
    }
    // (a) Cost of the forced Phase-I move-backs at a fixed cleaning depth
    // n = N_A/2: the η choice decides *which* states travel.
    let mut entries: Vec<&streambal_core::KeyRecord> =
        records2.iter().filter(|r| r.in_table()).collect();
    let n_clean = entries.len() / 2;
    println!("(move-back state bytes at fixed n = N_A/2 = {n_clean})");
    println!("{}", header("", &["move-back bytes".into()], 16));
    for (label, order) in [
        ("smallest-S (paper)", EtaOrder::SmallestMem),
        ("largest-S", EtaOrder::LargestMem),
        ("key-order", EtaOrder::KeyOrder),
    ] {
        match order {
            EtaOrder::SmallestMem => entries.sort_by_key(|r| (r.mem, r.key)),
            EtaOrder::LargestMem => entries.sort_by_key(|r| (std::cmp::Reverse(r.mem), r.key)),
            EtaOrder::KeyOrder => entries.sort_by_key(|r| r.key),
        }
        let bytes: u64 = entries.iter().take(n_clean).map(|r| r.mem).sum();
        println!("{}", row(label, &[bytes as f64], 16, 0));
    }

    // (b) End-to-end Mixed under moderate table pressure (the loop may
    // converge to deep cleaning, where the orders coincide — shown for
    // completeness).
    println!(
        "{}",
        header("", &["mig bytes".into(), "table".into(), "θ".into()], 12)
    );
    let tight = (first.table.len() * 3 / 4).max(2);
    for (label, order) in [
        ("smallest-S (paper)", EtaOrder::SmallestMem),
        ("largest-S", EtaOrder::LargestMem),
        ("key-order", EtaOrder::KeyOrder),
    ] {
        let res =
            mixed_assign_with_eta(&records2, d.nd, params.theta_max, params.beta, tight, order);
        let mig: u64 = records2
            .iter()
            .zip(&res.assign)
            .filter(|(r, &to)| to != r.current)
            .map(|(r, _)| r.mem)
            .sum();
        let mut loads = vec![0u64; d.nd];
        for (r, dd) in records2.iter().zip(&res.assign) {
            loads[dd.index()] += r.cost;
        }
        let s = LoadSummary::new(loads);
        println!(
            "{}",
            row(
                label,
                &[mig as f64, res.table_len as f64, s.max_theta()],
                12,
                3
            )
        );
    }

    // ---- 3. discretization: greedy vs naive ---------------------------
    println!("\n# Ablation 3: HLHE greedy vs naive rounding, |δ| / Σx (%)");
    let costs: Vec<u64> = input.records.iter().map(|r| r.cost).collect();
    let total: i128 = costs.iter().map(|&c| c as i128).sum();
    let rs = [0u32, 2, 4, 6, 8];
    println!(
        "{}",
        header(
            "",
            &rs.iter()
                .map(|r| format!("R={}", 1u64 << r))
                .collect::<Vec<_>>(),
            10
        )
    );
    let pct = |dev: i128| dev.unsigned_abs() as f64 / total as f64 * 100.0;
    let greedy: Vec<f64> = rs
        .iter()
        .map(|&r| pct(total_deviation(&costs, &discretize(&costs, r))))
        .collect();
    let naive: Vec<f64> = rs
        .iter()
        .map(|&r| pct(total_deviation(&costs, &discretize_naive(&costs, r))))
        .collect();
    println!("{}", row("greedy (paper)", &greedy, 10, 4));
    println!("{}", row("naive", &naive, 10, 4));
}
