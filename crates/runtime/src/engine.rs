//! Engine wiring: source, workers, collector, and the Fig. 5 controller.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Select, Sender};
use streambal_core::{IntervalStats, Key, Partitioner, RoutingView, TaskId};
use streambal_hashring::{FxHashMap, FxHashSet};
use streambal_metrics::{Counter, Histogram, RateMeter, TimeSeries};

use crate::message::{Message, SourceCtl, SourceEvent, WorkerEvent};
use crate::operator::{Collector, Operator};
use crate::router::SourceRouter;
use crate::tuple::Tuple;
use crate::worker::{run_worker, WorkerCtx};

/// Engine sizing and behaviour knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Initial downstream parallelism `N_D`.
    pub n_workers: usize,
    /// Pre-provisioned worker slots (≥ `n_workers`; extra slots allow
    /// scale-out).
    pub max_workers: usize,
    /// Source → worker channel depth; a full channel backpressures the
    /// source (the paper's "backpushing effect").
    pub channel_capacity: usize,
    /// Worker → collector channel depth (PKG's max-pending analogue).
    pub collector_capacity: usize,
    /// Busy-work iterations per tuple — calibrates per-tuple CPU cost so
    /// the workers saturate, as the paper's experiments arrange.
    pub spin_work: u32,
    /// State window `w` in intervals.
    pub window: usize,
    /// Add one worker after this interval's statistics are collected
    /// (the Fig. 15 scale-out experiment).
    pub scale_out_at: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            n_workers: 4,
            max_workers: 4,
            channel_capacity: 1024,
            collector_capacity: 256,
            spin_work: 500,
            window: 5,
            scale_out_at: None,
        }
    }
}

/// Everything one engine run measured.
#[derive(Debug)]
pub struct EngineReport {
    /// Partitioner name.
    pub name: String,
    /// Total tuples processed by all workers.
    pub processed: u64,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Mean throughput, tuples/second.
    pub mean_throughput: f64,
    /// Wall-clock-sampled throughput series (seconds, tuples/s).
    pub throughput: TimeSeries,
    /// Per-interval throughput series (interval, tuples/s).
    pub interval_throughput: TimeSeries,
    /// End-to-end tuple latency distribution (µs), merged over workers.
    pub latency_us: Histogram,
    /// Rebalances executed.
    pub rebalances: usize,
    /// Keys migrated across all rebalances.
    pub migrated_keys: u64,
    /// State bytes migrated across all rebalances.
    pub migrated_bytes: u64,
    /// Tuples processed per worker slot.
    pub per_worker_processed: Vec<u64>,
    /// All key state at shutdown (sorted by key) for validation.
    pub final_states: Vec<(Key, Bytes)>,
    /// The collector's result rows, if a collector ran.
    pub collector_result: Vec<(u64, u64)>,
}

/// A planned migration waiting its turn (one in flight at a time).
struct PlannedMigration {
    /// Moves grouped by source worker.
    by_source: FxHashMap<TaskId, Vec<(Key, TaskId)>>,
    affected: Vec<Key>,
    view: RoutingView,
}

/// An in-flight migration epoch.
struct ActiveMigration {
    epoch: u64,
    plan: PlannedMigration,
    awaiting_out: FxHashSet<TaskId>,
    collected: Vec<(Key, TaskId, Bytes)>,
    awaiting_install: FxHashSet<TaskId>,
}

/// Shared ingredients for spawning worker threads (initially and on
/// scale-out).
struct WorkerSpawner {
    event_tx: Sender<WorkerEvent>,
    col_tx: Option<Sender<Tuple>>,
    spin_work: u32,
    window: u64,
    counter: Arc<Counter>,
    epoch: Instant,
}

impl WorkerSpawner {
    fn spawn<'scope>(
        &self,
        s: &'scope std::thread::Scope<'scope, '_>,
        id: usize,
        rx: Receiver<Message>,
        op: Box<dyn Operator>,
        start_interval: u64,
    ) {
        let ctx = WorkerCtx {
            id: TaskId::from(id),
            rx,
            events: self.event_tx.clone(),
            collector: self.col_tx.clone(),
            op,
            spin_work: self.spin_work,
            window: self.window,
            processed_counter: Arc::clone(&self.counter),
            epoch: self.epoch,
            start_interval,
        };
        s.spawn(move || run_worker(ctx));
    }
}

/// The engine: call [`Engine::run`].
pub struct Engine;

impl Engine {
    /// Runs a topology to completion and returns the report.
    ///
    /// * `partitioner` — the routing strategy under test (owned by the
    ///   controller, which runs on the calling thread).
    /// * `op_factory` — builds the keyed operator for each worker slot.
    /// * `feeder` — called with the interval index on the source thread;
    ///   returns that interval's tuples, or `None` to finish.
    /// * `collector` — optional downstream stage receiving operator
    ///   emissions (PKG merger, Q5 aggregation).
    pub fn run<F, OF>(
        config: EngineConfig,
        mut partitioner: Box<dyn Partitioner>,
        mut op_factory: OF,
        feeder: F,
        collector: Option<Box<dyn Collector>>,
    ) -> EngineReport
    where
        F: FnMut(u64) -> Option<Vec<Tuple>> + Send,
        OF: FnMut(TaskId) -> Box<dyn Operator>,
    {
        let t0 = Instant::now();
        let max_workers = config.max_workers.max(config.n_workers);
        assert!(config.n_workers >= 1, "need at least one worker");
        assert_eq!(
            partitioner.n_tasks(),
            config.n_workers,
            "partitioner and engine must agree on initial parallelism"
        );

        // Channels.
        let mut worker_txs: Vec<Sender<Message>> = Vec::with_capacity(max_workers);
        let mut worker_rxs: Vec<Option<Receiver<Message>>> = Vec::with_capacity(max_workers);
        for _ in 0..max_workers {
            let (tx, rx) = bounded(config.channel_capacity);
            worker_txs.push(tx);
            worker_rxs.push(Some(rx));
        }
        let (event_tx, event_rx) = unbounded::<WorkerEvent>();
        let (ctl_tx, ctl_rx) = unbounded::<SourceCtl>();
        let (src_evt_tx, src_evt_rx) = unbounded::<SourceEvent>();
        let (col_tx, col_rx) = bounded::<Tuple>(config.collector_capacity);

        let counter = Arc::new(Counter::new());
        let stop = Arc::new(AtomicBool::new(false));
        let has_collector = collector.is_some();

        let name = partitioner.name();
        let initial_view = partitioner.routing_view();

        let mut report = EngineReport {
            name,
            processed: 0,
            wall: Duration::ZERO,
            mean_throughput: 0.0,
            throughput: TimeSeries::labelled("throughput"),
            interval_throughput: TimeSeries::labelled("interval throughput"),
            latency_us: Histogram::new(),
            rebalances: 0,
            migrated_keys: 0,
            migrated_bytes: 0,
            per_worker_processed: vec![0; max_workers],
            final_states: Vec::new(),
            collector_result: Vec::new(),
        };

        std::thread::scope(|s| {
            // --- workers -------------------------------------------------
            let spawner = WorkerSpawner {
                event_tx: event_tx.clone(),
                col_tx: has_collector.then(|| col_tx.clone()),
                spin_work: config.spin_work,
                window: config.window as u64,
                counter: Arc::clone(&counter),
                epoch: t0,
            };
            for (d, slot) in worker_rxs.iter_mut().enumerate().take(config.n_workers) {
                let rx = slot.take().expect("slot free");
                spawner.spawn(s, d, rx, op_factory(TaskId::from(d)), 0);
            }

            // --- collector -----------------------------------------------
            let col_handle = collector.map(|mut c| {
                s.spawn(move || {
                    while let Ok(t) = col_rx.recv() {
                        c.collect(&t);
                    }
                    c.result()
                })
            });

            // --- throughput sampler ---------------------------------------
            let sampler = {
                let counter = Arc::clone(&counter);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let meter = RateMeter::new();
                    let mut series = TimeSeries::labelled("throughput");
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(50));
                        meter.sample(&counter);
                    }
                    for &(t, v) in &meter.series() {
                        series.push(t, v);
                    }
                    series
                })
            };

            // --- source ---------------------------------------------------
            let src_worker_txs = worker_txs.clone();
            s.spawn(move || {
                source_loop(feeder, initial_view, src_worker_txs, ctl_rx, src_evt_tx, t0)
            });

            // --- controller (this thread) ----------------------------------
            let mut active = config.n_workers;
            let mut pending: Option<ActiveMigration> = None;
            let mut queue: VecDeque<PlannedMigration> = VecDeque::new();
            let mut next_epoch = 0u64;
            // Per round: (merged stats, reports received, reports expected).
            // The expected count is pinned at issue time — scale-out must
            // not retroactively change how many workers a round waits for.
            let mut stats_acc: FxHashMap<u64, (IntervalStats, usize, usize)> = FxHashMap::default();
            let mut outstanding_stats = 0usize;
            let mut outstanding_resumes = 0usize;
            let mut source_finished = false;
            let mut draining = false;
            let mut drained = 0usize;
            let mut last_interval_mark = (Instant::now(), 0u64);

            let mut select = Select::new();
            let src_idx = select.recv(&src_evt_rx);
            let _evt_idx = select.recv(&event_rx);

            loop {
                let op_ready = select.select();
                match op_ready.index() {
                    i if i == src_idx => {
                        let Ok(ev) = op_ready.recv(&src_evt_rx) else {
                            continue;
                        };
                        match ev {
                            SourceEvent::IntervalDone { interval } => {
                                // Interval throughput point.
                                let now = Instant::now();
                                let count = counter.get();
                                let dt = now
                                    .duration_since(last_interval_mark.0)
                                    .as_secs_f64()
                                    .max(1e-9);
                                report.interval_throughput.push(
                                    interval as f64,
                                    (count - last_interval_mark.1) as f64 / dt,
                                );
                                last_interval_mark = (now, count);
                                // In-band stats round.
                                for tx in worker_txs.iter().take(active) {
                                    let _ = tx.send(Message::StatsRequest { interval });
                                }
                                stats_acc.insert(interval, (IntervalStats::new(), 0, active));
                                outstanding_stats += 1;
                            }
                            SourceEvent::PauseAck { epoch } => {
                                let m = pending.as_mut().expect("ack without pending migration");
                                debug_assert_eq!(m.epoch, epoch);
                                for (&w, moves) in &m.plan.by_source {
                                    m.awaiting_out.insert(w);
                                    let _ = worker_txs[w.index()].send(Message::MigrateOut {
                                        epoch,
                                        moves: moves.clone(),
                                    });
                                }
                                if m.awaiting_out.is_empty() {
                                    // Degenerate plan: resume immediately.
                                    let _ = ctl_tx.send(SourceCtl::Resume {
                                        epoch,
                                        view: m.plan.view.clone(),
                                    });
                                    outstanding_resumes += 1;
                                    pending = None;
                                }
                            }
                            SourceEvent::ResumeAck { .. } => {
                                outstanding_resumes -= 1;
                            }
                            SourceEvent::Finished => {
                                source_finished = true;
                            }
                        }
                    }
                    _ => {
                        let Ok(ev) = op_ready.recv(&event_rx) else {
                            continue;
                        };
                        match ev {
                            WorkerEvent::Stats {
                                interval, stats, ..
                            } => {
                                let entry = stats_acc
                                    .get_mut(&interval)
                                    .expect("stats for unknown round");
                                entry.0.merge(&stats);
                                entry.1 += 1;
                                if entry.1 == entry.2 {
                                    let (merged, _, _) = stats_acc.remove(&interval).unwrap();
                                    outstanding_stats -= 1;
                                    // Scale-out between rounds (Fig. 15).
                                    if config.scale_out_at == Some(interval) && active < max_workers
                                    {
                                        let live: Vec<Key> =
                                            merged.iter().map(|(k, _)| k).collect();
                                        let rx = worker_rxs[active].take().expect("slot");
                                        spawner.spawn(
                                            s,
                                            active,
                                            rx,
                                            op_factory(TaskId::from(active)),
                                            interval + 1,
                                        );
                                        partitioner.scale_out(&live);
                                        active += 1;
                                        let _ = ctl_tx.send(SourceCtl::UpdateView {
                                            view: partitioner.routing_view(),
                                        });
                                    }
                                    if let Some(out) = partitioner.end_interval(merged) {
                                        if !out.plan.is_empty() {
                                            report.rebalances += 1;
                                            report.migrated_keys += out.plan.keys_moved() as u64;
                                            report.migrated_bytes += out.plan.cost_bytes();
                                            let mut by_source: FxHashMap<
                                                TaskId,
                                                Vec<(Key, TaskId)>,
                                            > = FxHashMap::default();
                                            let mut affected =
                                                Vec::with_capacity(out.plan.keys_moved());
                                            for mv in out.plan.moves() {
                                                affected.push(mv.key);
                                                by_source
                                                    .entry(mv.from)
                                                    .or_default()
                                                    .push((mv.key, mv.to));
                                            }
                                            queue.push_back(PlannedMigration {
                                                by_source,
                                                affected,
                                                view: partitioner.routing_view(),
                                            });
                                        }
                                    }
                                }
                            }
                            WorkerEvent::StateOut {
                                worker,
                                epoch,
                                states,
                            } => {
                                let m = pending.as_mut().expect("state without migration");
                                debug_assert_eq!(m.epoch, epoch);
                                m.collected.extend(states);
                                m.awaiting_out.remove(&worker);
                                if m.awaiting_out.is_empty() {
                                    // Step 5b: forward to destinations.
                                    let mut by_dest: FxHashMap<TaskId, Vec<(Key, Bytes)>> =
                                        FxHashMap::default();
                                    for (k, to, blob) in m.collected.drain(..) {
                                        by_dest.entry(to).or_default().push((k, blob));
                                    }
                                    if by_dest.is_empty() {
                                        let _ = ctl_tx.send(SourceCtl::Resume {
                                            epoch,
                                            view: m.plan.view.clone(),
                                        });
                                        outstanding_resumes += 1;
                                        pending = None;
                                    } else {
                                        for (dest, states) in by_dest {
                                            m.awaiting_install.insert(dest);
                                            let _ = worker_txs[dest.index()]
                                                .send(Message::StateInstall { epoch, states });
                                        }
                                    }
                                }
                            }
                            WorkerEvent::InstallAck { worker, epoch } => {
                                let m = pending.as_mut().expect("ack without migration");
                                debug_assert_eq!(m.epoch, epoch);
                                m.awaiting_install.remove(&worker);
                                if m.awaiting_install.is_empty() {
                                    // Step 7: resume with F′.
                                    let _ = ctl_tx.send(SourceCtl::Resume {
                                        epoch,
                                        view: m.plan.view.clone(),
                                    });
                                    outstanding_resumes += 1;
                                    pending = None;
                                }
                            }
                            WorkerEvent::Drained {
                                worker,
                                final_states,
                                processed,
                                latency,
                            } => {
                                report.per_worker_processed[worker.index()] = processed;
                                report.processed += processed;
                                report.latency_us.merge(&latency);
                                report.final_states.extend(final_states);
                                drained += 1;
                                if drained == active {
                                    break;
                                }
                            }
                        }
                    }
                }

                // Start the next queued migration when idle.
                if pending.is_none() {
                    if let Some(plan) = queue.pop_front() {
                        next_epoch += 1;
                        let _ = ctl_tx.send(SourceCtl::Pause {
                            epoch: next_epoch,
                            affected: plan.affected.clone(),
                        });
                        pending = Some(ActiveMigration {
                            epoch: next_epoch,
                            plan,
                            awaiting_out: FxHashSet::default(),
                            collected: Vec::new(),
                            awaiting_install: FxHashSet::default(),
                        });
                    }
                }

                // Shutdown when fully quiesced. `outstanding_resumes`
                // guards the flush race: the source must confirm it has
                // re-enqueued all pause-buffered tuples before Shutdown
                // markers enter the worker channels behind them.
                if source_finished
                    && !draining
                    && pending.is_none()
                    && queue.is_empty()
                    && outstanding_stats == 0
                    && outstanding_resumes == 0
                {
                    draining = true;
                    for tx in worker_txs.iter().take(active) {
                        let _ = tx.send(Message::Shutdown);
                    }
                }
            }

            // All workers drained. Tear down the auxiliaries. The spawner
            // holds a collector-sender clone; it must drop before the
            // collector join, or the collector never observes closure.
            let _ = ctl_tx.send(SourceCtl::Shutdown);
            stop.store(true, Ordering::Relaxed);
            drop(spawner);
            drop(col_tx);
            report.throughput = sampler.join().expect("sampler");
            if let Some(h) = col_handle {
                report.collector_result = h.join().expect("collector");
            }
            report.final_states.sort_unstable_by_key(|&(k, _)| k);
        });

        report.wall = t0.elapsed();
        report.mean_throughput = report.processed as f64 / report.wall.as_secs_f64().max(1e-9);
        report
    }
}

/// Tuples routed per [`SourceRouter::route_batch`] call on the source
/// thread. Also the control-poll granularity: between batches the source
/// drains pending pause/resume/view updates, so a batch bounds how many
/// tuples can be routed under a stale view — up to 256, versus the 64 the
/// old per-tuple loop polled at. The looser bound trades a little
/// migration latency for batch throughput and is safe: affected-key
/// tuples enqueued before the `PauseAck` are processed before the
/// `MigrateOut` behind it (worker-channel FIFO), so their state migrates
/// with the key regardless of when within a batch the pause lands.
const ROUTE_BATCH: usize = 256;

/// The source thread: feeds tuples, honours pause/resume, reports
/// interval boundaries. Routing happens per channel batch, not per tuple:
/// up to [`ROUTE_BATCH`] unpaused tuples are staged, their keys routed
/// with one batch call, and the tuples fanned out to the worker channels.
fn source_loop<F>(
    mut feeder: F,
    view: RoutingView,
    worker_txs: Vec<Sender<Message>>,
    ctl: Receiver<SourceCtl>,
    events: Sender<SourceEvent>,
    epoch: Instant,
) where
    F: FnMut(u64) -> Option<Vec<Tuple>> + Send,
{
    let mut router = SourceRouter::from_view(view);
    let mut paused: Option<(u64, FxHashSet<Key>)> = None;
    let mut buffer: Vec<Tuple> = Vec::new();
    // Batch scratch, reused across chunks to stay allocation-free.
    let mut staged: Vec<Tuple> = Vec::with_capacity(ROUTE_BATCH);
    let mut keys: Vec<Key> = Vec::with_capacity(ROUTE_BATCH);
    let mut dests: Vec<TaskId> = Vec::with_capacity(ROUTE_BATCH);

    // Drains pending control messages; returns false on Shutdown.
    let handle_ctl = |msg: SourceCtl,
                      router: &mut SourceRouter,
                      paused: &mut Option<(u64, FxHashSet<Key>)>,
                      buffer: &mut Vec<Tuple>|
     -> bool {
        match msg {
            SourceCtl::Pause { epoch, affected } => {
                *paused = Some((epoch, affected.into_iter().collect()));
                let _ = events.send(SourceEvent::PauseAck { epoch });
            }
            SourceCtl::Resume { epoch, view } => {
                router.update(view);
                for t in buffer.drain(..) {
                    let d = router.route(t.key);
                    let _ = worker_txs[d.index()].send(Message::Tuple(t));
                }
                *paused = None;
                // Flush complete: only now may the controller shut workers
                // down (Message ordering across two senders is otherwise
                // unconstrained, and a Shutdown overtaking the flushed
                // tuples would drop them).
                let _ = events.send(SourceEvent::ResumeAck { epoch });
            }
            SourceCtl::UpdateView { view } => router.update(view),
            SourceCtl::Shutdown => return false,
        }
        true
    };

    let mut interval = 0u64;
    'feed: loop {
        let Some(tuples) = feeder(interval) else {
            break 'feed;
        };
        let mut pending = tuples.into_iter();
        loop {
            while let Ok(msg) = ctl.try_recv() {
                if !handle_ctl(msg, &mut router, &mut paused, &mut buffer) {
                    return;
                }
            }
            // Stage the next batch, holding back keys paused for an
            // in-flight migration.
            staged.clear();
            keys.clear();
            while staged.len() < ROUTE_BATCH {
                let Some(mut t) = pending.next() else {
                    break;
                };
                t.emitted_us = epoch.elapsed().as_micros() as u64;
                if let Some((_, affected)) = &paused {
                    if affected.contains(&t.key) {
                        buffer.push(t);
                        continue;
                    }
                }
                keys.push(t.key);
                staged.push(t);
            }
            if staged.is_empty() && pending.len() == 0 {
                break;
            }
            router.route_batch(&keys, &mut dests);
            for (t, d) in staged.drain(..).zip(&dests) {
                let _ = worker_txs[d.index()].send(Message::Tuple(t));
            }
        }
        while let Ok(msg) = ctl.try_recv() {
            if !handle_ctl(msg, &mut router, &mut paused, &mut buffer) {
                return;
            }
        }
        let _ = events.send(SourceEvent::IntervalDone { interval });
        interval += 1;
    }
    let _ = events.send(SourceEvent::Finished);

    // Stay responsive to control traffic (in-flight migrations) until the
    // controller says shutdown.
    while let Ok(msg) = ctl.recv() {
        if !handle_ctl(msg, &mut router, &mut paused, &mut buffer) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::WordCountOp;
    use streambal_baselines::CoreBalancer;
    use streambal_baselines::HashPartitioner;
    use streambal_core::{BalanceParams, RebalanceStrategy};
    use streambal_workloads::FluctuatingWorkload;

    /// Reference word counts for a tuple sequence.
    fn reference_counts(tuples: &[Vec<Key>]) -> FxHashMap<Key, u64> {
        let mut m = FxHashMap::default();
        for iv in tuples {
            for &k in iv {
                *m.entry(k).or_insert(0) += 1;
            }
        }
        m
    }

    fn decode_counts(states: &[(Key, Bytes)]) -> FxHashMap<Key, u64> {
        let mut m = FxHashMap::default();
        for (k, blob) in states {
            let total: u64 = WordCountOp::decode(blob).iter().map(|&(_, c)| c).sum();
            *m.entry(*k).or_insert(0) += total;
        }
        m
    }

    fn small_config() -> EngineConfig {
        EngineConfig {
            n_workers: 3,
            max_workers: 3,
            channel_capacity: 256,
            collector_capacity: 64,
            spin_work: 10,
            window: 100, // keep everything: exact count validation
            scale_out_at: None,
        }
    }

    #[test]
    fn word_count_exact_under_hash() {
        let mut w = FluctuatingWorkload::new(200, 0.9, 3_000, 0.0, 11);
        let intervals: Vec<Vec<Key>> = (0..3).map(|_| w.tuples()).collect();
        let expect = reference_counts(&intervals);
        let feed = intervals.clone();
        let report = Engine::run(
            small_config(),
            Box::new(HashPartitioner::new(3)),
            |_| Box::new(WordCountOp::new()),
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            None,
        );
        assert_eq!(
            report.processed,
            intervals.iter().map(|v| v.len() as u64).sum()
        );
        assert_eq!(decode_counts(&report.final_states), expect);
        assert_eq!(report.rebalances, 0);
    }

    #[test]
    fn word_count_exact_under_mixed_with_migrations() {
        // Skewed + fluctuating: Mixed must fire migrations, and the final
        // counts must still be exact (no tuple lost or double-counted, no
        // state lost in flight).
        let mut w = FluctuatingWorkload::new(300, 1.0, 5_000, 0.8, 23);
        let mut intervals: Vec<Vec<Key>> = Vec::new();
        for _ in 0..5 {
            intervals.push(w.tuples());
            w.advance(3, |k| TaskId::from((k.raw() % 3) as usize));
        }
        let expect = reference_counts(&intervals);
        let feed = intervals.clone();
        let report = Engine::run(
            small_config(),
            Box::new(CoreBalancer::new(
                3,
                100,
                RebalanceStrategy::Mixed,
                BalanceParams {
                    theta_max: 0.05,
                    ..BalanceParams::default()
                },
            )),
            |_| Box::new(WordCountOp::new()),
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            None,
        );
        assert!(report.rebalances > 0, "skew must trigger migration");
        assert!(report.migrated_keys > 0);
        assert_eq!(decode_counts(&report.final_states), expect, "exactly-once");
    }

    #[test]
    fn latency_and_throughput_recorded() {
        let report = Engine::run(
            small_config(),
            Box::new(HashPartitioner::new(3)),
            |_| Box::new(WordCountOp::new()),
            |iv| (iv < 2).then(|| (0..2000u64).map(|i| Tuple::keyed(Key(i % 50))).collect()),
            None,
        );
        assert_eq!(report.processed, 4000);
        assert!(report.latency_us.count() == 4000);
        assert!(report.latency_us.mean() > 0.0);
        assert!(report.mean_throughput > 0.0);
        assert_eq!(report.interval_throughput.len(), 2);
    }

    #[test]
    fn pkg_partials_merge_to_exact_counts() {
        use crate::operator::SumCollector;
        use streambal_baselines::PkgPartitioner;
        let mut w = FluctuatingWorkload::new(100, 0.9, 4_000, 0.0, 7);
        let intervals: Vec<Vec<Key>> = (0..3)
            .map(|_| {
                let t = w.tuples();
                w.advance(3, |k| TaskId::from((k.raw() % 3) as usize));
                t
            })
            .collect();
        let expect = reference_counts(&intervals);
        let feed = intervals.clone();
        let report = Engine::run(
            small_config(),
            Box::new(PkgPartitioner::new(3)),
            |_| Box::new(WordCountOp::with_partial_emission(16)),
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            Some(Box::new(SumCollector::new())),
        );
        // The merged partial counts must equal the reference exactly.
        let merged: FxHashMap<Key, u64> = report
            .collector_result
            .iter()
            .map(|&(k, v)| (Key(k), v))
            .collect();
        assert_eq!(merged, expect, "partial/merge must reconstruct counts");
    }

    #[test]
    fn scale_out_adds_worker_and_keeps_counts_exact() {
        let mut w = FluctuatingWorkload::new(200, 0.9, 4_000, 0.0, 31);
        let intervals: Vec<Vec<Key>> = (0..6).map(|_| w.tuples()).collect();
        let expect = reference_counts(&intervals);
        let feed = intervals.clone();
        let config = EngineConfig {
            n_workers: 2,
            max_workers: 3,
            scale_out_at: Some(2),
            ..small_config()
        };
        let report = Engine::run(
            config,
            Box::new(CoreBalancer::new(
                2,
                100,
                RebalanceStrategy::Mixed,
                BalanceParams {
                    theta_max: 0.1,
                    ..BalanceParams::default()
                },
            )),
            |_| Box::new(WordCountOp::new()),
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            None,
        );
        // The third worker processed something after joining.
        assert!(
            report.per_worker_processed[2] > 0,
            "new worker got traffic: {:?}",
            report.per_worker_processed
        );
        assert_eq!(decode_counts(&report.final_states), expect);
    }

    #[test]
    fn backpressure_with_tiny_channels_terminates() {
        let config = EngineConfig {
            channel_capacity: 4,
            collector_capacity: 2,
            ..small_config()
        };
        let report = Engine::run(
            config,
            Box::new(HashPartitioner::new(3)),
            |_| Box::new(WordCountOp::new()),
            |iv| (iv < 2).then(|| (0..500u64).map(|i| Tuple::keyed(Key(i % 7))).collect()),
            None,
        );
        assert_eq!(report.processed, 1000);
    }

    #[test]
    #[should_panic(expected = "must agree")]
    fn mismatched_parallelism_panics() {
        let _ = Engine::run(
            small_config(), // 3 workers
            Box::new(HashPartitioner::new(2)),
            |_| Box::new(WordCountOp::new()),
            |_| None,
            None,
        );
    }
}
