//! Fast non-cryptographic hashing and a consistent hash ring.
//!
//! This crate is the hashing substrate of the `streambal` workspace. The
//! paper's mixed routing strategy (Eq. 1) needs a *universal hash function*
//! `h : K → D` that deterministically maps a tuple key to a downstream task
//! instance; the paper uses consistent hashing (Karger et al., STOC'97) for
//! this role. Everything here is implemented from scratch:
//!
//! * [`mix64`] — a SplitMix64-style 64-bit finalizer used as the basic
//!   avalanche primitive.
//! * [`FxHasher64`] — a multiply-xor streaming hasher in the spirit of the
//!   Firefox/rustc `FxHash`, suitable for `HashMap` keys on hot paths (see
//!   the Rust Performance Book's hashing chapter).
//! * [`FxHashMap`]/[`FxHashSet`] — std collections pre-wired with the fast
//!   hasher.
//! * [`fx_hash_u64`] — the same hash as a one-shot function over `u64`,
//!   for flat structures or parity checks that need `FxHashMap`'s exact
//!   probe hash without the hasher machinery. (The routing layer's
//!   compiled table indexes with plain [`mix64`] instead — one multiply
//!   cheaper, same avalanche family; see its docs.)
//! * [`HashRing`] — a consistent hash ring with virtual nodes mapping `u64`
//!   keys onto `n` task slots, supporting incremental scale-out (the
//!   Fig. 15 experiments add an instance at runtime).
//! * [`two_choices`] — the pair of independent hash choices used by the PKG
//!   baseline (power of two choices).

pub mod fx;
pub mod ring;

pub use fx::{fx_hash_u64, mix64, mix64_seeded, FxBuildHasher, FxHashMap, FxHashSet, FxHasher64};
pub use ring::HashRing;

/// Returns the two independent candidate slots `(h1(key), h2(key))` in
/// `0..n`, as used by partial key grouping's power-of-two-choices routing.
///
/// The two choices are guaranteed to be distinct whenever `n >= 2`, matching
/// PKG's requirement that each key's tuples are split across exactly two
/// workers.
///
/// # Panics
/// Panics if `n == 0`.
#[inline]
pub fn two_choices(key: u64, n: usize) -> (usize, usize) {
    assert!(n > 0, "two_choices requires at least one slot");
    let a = (mix64_seeded(key, 0x9E37_79B9_7F4A_7C15) % n as u64) as usize;
    if n == 1 {
        return (0, 0);
    }
    // Map the second choice into the remaining n-1 slots so that a != b.
    let b = (mix64_seeded(key, 0xC2B2_AE3D_27D4_EB4F) % (n as u64 - 1)) as usize;
    let b = if b >= a { b + 1 } else { b };
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_choices_distinct() {
        for n in 2..20 {
            for key in 0..1000u64 {
                let (a, b) = two_choices(key, n);
                assert_ne!(a, b, "choices must differ for n={n} key={key}");
                assert!(a < n && b < n);
            }
        }
    }

    #[test]
    fn two_choices_single_slot() {
        assert_eq!(two_choices(42, 1), (0, 0));
    }

    #[test]
    fn two_choices_deterministic() {
        assert_eq!(two_choices(7, 8), two_choices(7, 8));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn two_choices_zero_slots_panics() {
        two_choices(1, 0);
    }

    #[test]
    fn two_choices_spread_is_roughly_uniform() {
        let n = 8;
        let mut counts = vec![0usize; n];
        for key in 0..80_000u64 {
            let (a, b) = two_choices(key, n);
            counts[a] += 1;
            counts[b] += 1;
        }
        let expect = 2 * 80_000 / n;
        for (slot, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect as f64).abs() / (expect as f64) < 0.05,
                "slot {slot} count {c} deviates from {expect}"
            );
        }
    }
}
