//! Stateful operators and downstream collectors.
//!
//! Operators hold *windowed* per-key state (the last `w` intervals, paper
//! §II-A): each tuple appends to the current interval's slot, and slots
//! older than the window are evicted at interval boundaries. State is
//! serialized to length-prefixed little-endian `u64` sequences for
//! migration — the byte counts are what the migration-cost metric
//! measures.

use std::collections::VecDeque;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use streambal_core::Key;
use streambal_hashring::FxHashMap;

use crate::tuple::{Tuple, TAG_PARTIAL, TAG_RIGHT};

/// A keyed, stateful, windowed stream operator running inside one worker.
pub trait Operator: Send {
    /// Processes one tuple during `interval`; may emit downstream tuples.
    /// Returns the state bytes this tuple added (the `sᵢ(k)` increment).
    fn process(&mut self, tuple: &Tuple, interval: u64, emit: &mut dyn FnMut(Tuple)) -> u64;

    /// Total state bytes currently held for `key` (the `Sᵢ(k, w)` the
    /// migration plan will move).
    fn state_size(&self, key: Key) -> u64;

    /// Removes and serializes all state of `key` (migration step 5).
    fn extract(&mut self, key: Key) -> Option<Bytes>;

    /// Installs serialized state received from a peer, merging with any
    /// existing state for the key.
    fn install(&mut self, key: Key, blob: Bytes);

    /// Drops state from intervals `< oldest_keep` (window eviction).
    fn evict_before(&mut self, oldest_keep: u64);

    /// Flushes any pending emissions (called at interval boundaries and
    /// shutdown; the PKG partial/merge pattern uses this).
    fn flush(&mut self, _emit: &mut dyn FnMut(Tuple)) {}

    /// Removes and serializes *all* state (shutdown validation).
    fn drain(&mut self) -> Vec<(Key, Bytes)>;

    /// Per-key tuple counts held by this operator that are not yet
    /// observable downstream — what is irrecoverably lost if the worker
    /// dies here. Under partial emission only the un-flushed deltas
    /// count (flushed partials already reached the collector); otherwise
    /// the windowed state itself is the unobserved contribution. The
    /// fault-recovery layer feeds this into `EngineReport::lost_tuples`;
    /// operators keeping the default (empty) lose tuples *unaccounted*
    /// on a kill, so stateful operators should implement it.
    fn held_counts(&self) -> Vec<(Key, u64)> {
        Vec::new()
    }

    /// Tuples represented by one serialized state blob of this operator
    /// — loss accounting for state destroyed in flight (e.g. a
    /// `StateInstall` drained from a dead worker's queue).
    fn tuples_in_blob(&self, _blob: &Bytes) -> u64 {
        0
    }
}

/// Receives worker emissions — the downstream operator of two-stage
/// topologies (PKG's merger, Q5's revenue aggregation).
pub trait Collector: Send {
    /// Consumes one emitted tuple.
    fn collect(&mut self, tuple: &Tuple);

    /// Final `(key, value)` result rows, sorted by key.
    fn result(&mut self) -> Vec<(u64, u64)>;
}

/// Sums `vals[0]` per key — merges PKG partials, aggregates Q5 revenue.
#[derive(Debug, Default)]
pub struct SumCollector {
    sums: FxHashMap<u64, u64>,
}

impl SumCollector {
    /// Creates an empty summing collector.
    pub fn new() -> Self {
        SumCollector::default()
    }
}

impl Collector for SumCollector {
    fn collect(&mut self, tuple: &Tuple) {
        *self.sums.entry(tuple.key.raw()).or_insert(0) += tuple.vals[0];
    }

    fn result(&mut self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.sums.iter().map(|(&k, &s)| (k, s)).collect();
        v.sort_unstable();
        v
    }
}

/// Counts emitted tuples (join-output volume and the like).
#[derive(Debug, Default)]
pub struct CountingCollector {
    count: u64,
}

impl CountingCollector {
    /// Creates a zeroed counter collector.
    pub fn new() -> Self {
        CountingCollector::default()
    }
}

impl Collector for CountingCollector {
    fn collect(&mut self, _tuple: &Tuple) {
        self.count += 1;
    }

    fn result(&mut self) -> Vec<(u64, u64)> {
        vec![(0, self.count)]
    }
}

/// Windowed slots shared by the built-in operators: `(interval, payload)`
/// entries in interval order.
type Slots<T> = VecDeque<(u64, T)>;

fn evict_slots<T>(state: &mut FxHashMap<Key, Slots<T>>, oldest_keep: u64) {
    state.retain(|_, slots| {
        while slots.front().is_some_and(|&(iv, _)| iv < oldest_keep) {
            slots.pop_front();
        }
        !slots.is_empty()
    });
}

// ------------------------------------------------------------------
// Word count
// ------------------------------------------------------------------

/// The paper's Social topology: per-word counters with the recent tuples
/// retained in memory for `w` intervals.
///
/// With `partial_period` set, the operator additionally emits per-key
/// count *deltas* every that-many processed tuples — the partial/merge
/// pattern PKG requires (the paper tuned the merge period `p`).
#[derive(Debug)]
pub struct WordCountOp {
    state: FxHashMap<Key, Slots<u64>>,
    bytes_per_tuple: u64,
    partial_period: Option<u64>,
    since_flush: u64,
    dirty: FxHashMap<Key, u64>,
}

impl WordCountOp {
    /// Exact (key-grouped) word count.
    pub fn new() -> Self {
        WordCountOp {
            state: FxHashMap::default(),
            bytes_per_tuple: 8,
            partial_period: None,
            since_flush: 0,
            dirty: FxHashMap::default(),
        }
    }

    /// PKG-mode word count emitting partial deltas every `period` tuples.
    pub fn with_partial_emission(period: u64) -> Self {
        WordCountOp {
            partial_period: Some(period.max(1)),
            ..WordCountOp::new()
        }
    }

    /// Current count of a key across the window (tests).
    pub fn count_of(&self, key: Key) -> u64 {
        self.state
            .get(&key)
            .map_or(0, |s| s.iter().map(|&(_, c)| c).sum())
    }

    fn flush_partials(&mut self, emit: &mut dyn FnMut(Tuple)) {
        for (k, delta) in self.dirty.drain() {
            emit(Tuple::tagged(k, TAG_PARTIAL, [delta, 0]));
        }
        self.since_flush = 0;
    }

    /// Decodes a serialized blob into `(interval, count)` slots (tests and
    /// validation).
    pub fn decode(blob: &Bytes) -> Vec<(u64, u64)> {
        let mut buf = blob.clone();
        let mut out = Vec::new();
        while buf.remaining() >= 16 {
            out.push((buf.get_u64_le(), buf.get_u64_le()));
        }
        out
    }
}

impl Default for WordCountOp {
    fn default() -> Self {
        Self::new()
    }
}

impl Operator for WordCountOp {
    fn process(&mut self, tuple: &Tuple, interval: u64, emit: &mut dyn FnMut(Tuple)) -> u64 {
        let slots = self.state.entry(tuple.key).or_default();
        match slots.back_mut() {
            Some((iv, c)) if *iv == interval => *c += 1,
            _ => slots.push_back((interval, 1)),
        }
        if let Some(period) = self.partial_period {
            *self.dirty.entry(tuple.key).or_insert(0) += 1;
            self.since_flush += 1;
            if self.since_flush >= period {
                self.flush_partials(emit);
            }
        }
        self.bytes_per_tuple
    }

    fn state_size(&self, key: Key) -> u64 {
        self.state.get(&key).map_or(0, |slots| {
            slots.iter().map(|&(_, c)| c * self.bytes_per_tuple).sum()
        })
    }

    fn extract(&mut self, key: Key) -> Option<Bytes> {
        let slots = self.state.remove(&key)?;
        let mut buf = BytesMut::with_capacity(slots.len() * 16);
        for (iv, c) in slots {
            buf.put_u64_le(iv);
            buf.put_u64_le(c);
        }
        Some(buf.freeze())
    }

    fn install(&mut self, key: Key, blob: Bytes) {
        let slots = self.state.entry(key).or_default();
        for (iv, c) in Self::decode(&blob) {
            // Merge by interval; decoded blobs are interval-ordered.
            if let Some(pos) = slots.iter().position(|&(i, _)| i == iv) {
                slots[pos].1 += c;
            } else {
                let at = slots.partition_point(|&(i, _)| i < iv);
                slots.insert(at, (iv, c));
            }
        }
    }

    fn evict_before(&mut self, oldest_keep: u64) {
        evict_slots(&mut self.state, oldest_keep);
    }

    fn flush(&mut self, emit: &mut dyn FnMut(Tuple)) {
        if self.partial_period.is_some() && !self.dirty.is_empty() {
            self.flush_partials(emit);
        }
    }

    fn drain(&mut self) -> Vec<(Key, Bytes)> {
        let keys: Vec<Key> = self.state.keys().copied().collect();
        let mut out: Vec<(Key, Bytes)> = keys
            .into_iter()
            .filter_map(|k| self.extract(k).map(|b| (k, b)))
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    fn held_counts(&self) -> Vec<(Key, u64)> {
        if self.partial_period.is_some() {
            // Flushed partials already reached the collector; only the
            // un-emitted deltas die with this worker.
            self.dirty.iter().map(|(&k, &d)| (k, d)).collect()
        } else {
            self.state
                .iter()
                .map(|(&k, slots)| (k, slots.iter().map(|&(_, c)| c).sum()))
                .collect()
        }
    }

    fn tuples_in_blob(&self, blob: &Bytes) -> u64 {
        Self::decode(blob).iter().map(|&(_, c)| c).sum()
    }
}

// ------------------------------------------------------------------
// Windowed self-join
// ------------------------------------------------------------------

/// The paper's Stock topology: a sliding-window self-join per key —
/// each arriving tuple matches all retained tuples of the same key.
#[derive(Debug, Default)]
pub struct WindowedSelfJoinOp {
    state: FxHashMap<Key, Slots<Vec<u64>>>,
    /// Join matches produced so far (diagnostics).
    matches: u64,
}

impl WindowedSelfJoinOp {
    /// Creates an empty self-join operator.
    pub fn new() -> Self {
        WindowedSelfJoinOp::default()
    }

    /// Join matches produced so far.
    pub fn matches(&self) -> u64 {
        self.matches
    }

    /// Decodes a blob into `(interval, payloads)` slots.
    pub fn decode(blob: &Bytes) -> Vec<(u64, Vec<u64>)> {
        let mut buf = blob.clone();
        let mut out = Vec::new();
        while buf.remaining() >= 16 {
            let iv = buf.get_u64_le();
            let len = buf.get_u64_le() as usize;
            let mut payloads = Vec::with_capacity(len);
            for _ in 0..len {
                payloads.push(buf.get_u64_le());
            }
            out.push((iv, payloads));
        }
        out
    }
}

impl Operator for WindowedSelfJoinOp {
    fn process(&mut self, tuple: &Tuple, interval: u64, _emit: &mut dyn FnMut(Tuple)) -> u64 {
        let slots = self.state.entry(tuple.key).or_default();
        // Every retained tuple of this key joins with the new arrival.
        self.matches += slots.iter().map(|(_, p)| p.len() as u64).sum::<u64>();
        match slots.back_mut() {
            Some((iv, p)) if *iv == interval => p.push(tuple.vals[0]),
            _ => slots.push_back((interval, vec![tuple.vals[0]])),
        }
        8
    }

    fn state_size(&self, key: Key) -> u64 {
        self.state.get(&key).map_or(0, |slots| {
            slots.iter().map(|(_, p)| 8 * p.len() as u64).sum()
        })
    }

    fn extract(&mut self, key: Key) -> Option<Bytes> {
        let slots = self.state.remove(&key)?;
        let mut buf = BytesMut::new();
        for (iv, payloads) in slots {
            buf.put_u64_le(iv);
            buf.put_u64_le(payloads.len() as u64);
            for p in payloads {
                buf.put_u64_le(p);
            }
        }
        Some(buf.freeze())
    }

    fn install(&mut self, key: Key, blob: Bytes) {
        let slots = self.state.entry(key).or_default();
        for (iv, payloads) in Self::decode(&blob) {
            if let Some(pos) = slots.iter().position(|&(i, _)| i == iv) {
                slots[pos].1.extend(payloads);
            } else {
                let at = slots.partition_point(|&(i, _)| i < iv);
                slots.insert(at, (iv, payloads));
            }
        }
    }

    fn evict_before(&mut self, oldest_keep: u64) {
        evict_slots(&mut self.state, oldest_keep);
    }

    fn drain(&mut self) -> Vec<(Key, Bytes)> {
        let keys: Vec<Key> = self.state.keys().copied().collect();
        let mut out: Vec<(Key, Bytes)> = keys
            .into_iter()
            .filter_map(|k| self.extract(k).map(|b| (k, b)))
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    fn held_counts(&self) -> Vec<(Key, u64)> {
        self.state
            .iter()
            .map(|(&k, slots)| (k, slots.iter().map(|(_, p)| p.len() as u64).sum()))
            .collect()
    }

    fn tuples_in_blob(&self, blob: &Bytes) -> u64 {
        Self::decode(blob).iter().map(|(_, p)| p.len() as u64).sum()
    }
}

// ------------------------------------------------------------------
// Co-join (orders ⋈ lineitems)
// ------------------------------------------------------------------

/// A two-stream windowed join on the tuple key — the Q5 pipeline's
/// `orders ⋈ lineitems` operator.
///
/// `TAG_LEFT` tuples (orders) are stored: `vals = [custkey, orderdate]`.
/// `TAG_RIGHT` tuples (lineitems, `vals = [suppkey, revenue]`) probe the
/// stored orders of the same key and emit one joined tuple per match,
/// keyed by `suppkey` with `vals = [revenue, custkey]` for the downstream
/// aggregation stage.
#[derive(Debug, Default)]
pub struct CoJoinOp {
    left: FxHashMap<Key, Slots<[u64; 2]>>,
    /// Right-side tuples whose order was absent (evicted or reordered).
    misses: u64,
}

impl CoJoinOp {
    /// Creates an empty co-join.
    pub fn new() -> Self {
        CoJoinOp::default()
    }

    /// Right-side probes that found no order.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

impl Operator for CoJoinOp {
    fn process(&mut self, tuple: &Tuple, interval: u64, emit: &mut dyn FnMut(Tuple)) -> u64 {
        if tuple.tag == TAG_RIGHT {
            let mut matched = false;
            if let Some(slots) = self.left.get(&tuple.key) {
                for (_, order) in slots.iter() {
                    emit(Tuple::tagged(
                        Key(tuple.vals[0]), // suppkey
                        TAG_PARTIAL,
                        [tuple.vals[1], order[0]], // [revenue, custkey]
                    ));
                    matched = true;
                }
            }
            if !matched {
                self.misses += 1;
            }
            0
        } else {
            // Left (order): store within the window.
            let slots = self.left.entry(tuple.key).or_default();
            match slots.back_mut() {
                Some((iv, _)) if *iv == interval => {
                    // A second order under the same key in one interval is
                    // possible only with key collisions; keep the first.
                }
                _ => slots.push_back((interval, tuple.vals)),
            }
            16
        }
    }

    fn state_size(&self, key: Key) -> u64 {
        self.left.get(&key).map_or(0, |s| 16 * s.len() as u64)
    }

    fn extract(&mut self, key: Key) -> Option<Bytes> {
        let slots = self.left.remove(&key)?;
        let mut buf = BytesMut::new();
        for (iv, vals) in slots {
            buf.put_u64_le(iv);
            buf.put_u64_le(vals[0]);
            buf.put_u64_le(vals[1]);
        }
        Some(buf.freeze())
    }

    fn install(&mut self, key: Key, blob: Bytes) {
        let slots = self.left.entry(key).or_default();
        let mut buf = blob;
        while buf.remaining() >= 24 {
            let iv = buf.get_u64_le();
            let vals = [buf.get_u64_le(), buf.get_u64_le()];
            let at = slots.partition_point(|&(i, _)| i <= iv);
            slots.insert(at, (iv, vals));
        }
    }

    fn evict_before(&mut self, oldest_keep: u64) {
        evict_slots(&mut self.left, oldest_keep);
    }

    fn drain(&mut self) -> Vec<(Key, Bytes)> {
        let keys: Vec<Key> = self.left.keys().copied().collect();
        let mut out: Vec<(Key, Bytes)> = keys
            .into_iter()
            .filter_map(|k| self.extract(k).map(|b| (k, b)))
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    fn held_counts(&self) -> Vec<(Key, u64)> {
        self.left
            .iter()
            .map(|(&k, slots)| (k, slots.len() as u64))
            .collect()
    }

    fn tuples_in_blob(&self, blob: &Bytes) -> u64 {
        (blob.len() / 24) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::TAG_LEFT;

    fn no_emit() -> impl FnMut(Tuple) {
        |_| {}
    }

    #[test]
    fn word_count_accumulates_and_windows() {
        let mut op = WordCountOp::new();
        let mut sink = no_emit();
        for iv in 0..3u64 {
            for _ in 0..5 {
                op.process(&Tuple::keyed(Key(1)), iv, &mut sink);
            }
        }
        assert_eq!(op.count_of(Key(1)), 15);
        assert_eq!(op.state_size(Key(1)), 15 * 8);
        op.evict_before(1); // drop interval 0
        assert_eq!(op.count_of(Key(1)), 10);
    }

    #[test]
    fn word_count_extract_install_roundtrip() {
        let mut a = WordCountOp::new();
        let mut sink = no_emit();
        for iv in 0..2u64 {
            for _ in 0..3 {
                a.process(&Tuple::keyed(Key(7)), iv, &mut sink);
            }
        }
        let blob = a.extract(Key(7)).unwrap();
        assert_eq!(a.count_of(Key(7)), 0, "extract removes");
        let mut b = WordCountOp::new();
        b.install(Key(7), blob);
        assert_eq!(b.count_of(Key(7)), 6);
        assert_eq!(b.state_size(Key(7)), 48);
    }

    #[test]
    fn word_count_install_merges_same_interval() {
        let mut a = WordCountOp::new();
        let mut sink = no_emit();
        a.process(&Tuple::keyed(Key(1)), 5, &mut sink);
        let blob = a.extract(Key(1)).unwrap();
        let mut b = WordCountOp::new();
        b.process(&Tuple::keyed(Key(1)), 5, &mut sink);
        b.install(Key(1), blob);
        assert_eq!(b.count_of(Key(1)), 2);
        // Single merged slot, not two.
        let blob2 = b.extract(Key(1)).unwrap();
        assert_eq!(WordCountOp::decode(&blob2), vec![(5, 2)]);
    }

    #[test]
    fn word_count_partial_mode_emits_deltas() {
        let mut op = WordCountOp::with_partial_emission(3);
        let mut emitted = Vec::new();
        for _ in 0..7 {
            op.process(&Tuple::keyed(Key(9)), 0, &mut |t| emitted.push(t));
        }
        // Flushes at tuples 3 and 6 → two partials of 3 each.
        let total: u64 = emitted.iter().map(|t| t.vals[0]).sum();
        assert_eq!(total, 6);
        op.flush(&mut |t| emitted.push(t));
        let total: u64 = emitted.iter().map(|t| t.vals[0]).sum();
        assert_eq!(total, 7, "final flush emits the remainder");
        assert!(emitted.iter().all(|t| t.tag == TAG_PARTIAL));
    }

    #[test]
    fn self_join_counts_matches_within_window() {
        let mut op = WindowedSelfJoinOp::new();
        let mut sink = no_emit();
        for i in 0..4u64 {
            op.process(&Tuple::tagged(Key(1), 0, [i, 0]), 0, &mut sink);
        }
        // 0+1+2+3 pairwise matches.
        assert_eq!(op.matches(), 6);
        // Different key: no cross-key matches.
        op.process(&Tuple::tagged(Key(2), 0, [9, 0]), 0, &mut sink);
        assert_eq!(op.matches(), 6);
    }

    #[test]
    fn self_join_eviction_limits_matches() {
        let mut op = WindowedSelfJoinOp::new();
        let mut sink = no_emit();
        op.process(&Tuple::tagged(Key(1), 0, [1, 0]), 0, &mut sink);
        op.evict_before(1);
        op.process(&Tuple::tagged(Key(1), 0, [2, 0]), 1, &mut sink);
        assert_eq!(op.matches(), 0, "evicted tuples cannot match");
    }

    #[test]
    fn self_join_roundtrip() {
        let mut a = WindowedSelfJoinOp::new();
        let mut sink = no_emit();
        for i in 0..5u64 {
            a.process(&Tuple::tagged(Key(3), 0, [i, 0]), i / 2, &mut sink);
        }
        let blob = a.extract(Key(3)).unwrap();
        let decoded = WindowedSelfJoinOp::decode(&blob);
        let total: usize = decoded.iter().map(|(_, p)| p.len()).sum();
        assert_eq!(total, 5);
        let mut b = WindowedSelfJoinOp::new();
        b.install(Key(3), blob);
        assert_eq!(b.state_size(Key(3)), 40);
    }

    #[test]
    fn cojoin_joins_right_to_stored_left() {
        let mut op = CoJoinOp::new();
        let mut emitted = Vec::new();
        // Order 100 from customer 5.
        op.process(&Tuple::tagged(Key(100), TAG_LEFT, [5, 0]), 0, &mut |t| {
            emitted.push(t)
        });
        // Lineitem for order 100: supplier 9, revenue 1234.
        op.process(
            &Tuple::tagged(Key(100), TAG_RIGHT, [9, 1234]),
            0,
            &mut |t| emitted.push(t),
        );
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].key, Key(9), "joined tuple keyed by suppkey");
        assert_eq!(emitted[0].vals, [1234, 5]);
        assert_eq!(op.misses(), 0);
    }

    #[test]
    fn cojoin_miss_when_order_absent_or_evicted() {
        let mut op = CoJoinOp::new();
        let mut sink = no_emit();
        op.process(&Tuple::tagged(Key(1), TAG_RIGHT, [2, 10]), 0, &mut sink);
        assert_eq!(op.misses(), 1);
        op.process(&Tuple::tagged(Key(2), TAG_LEFT, [1, 0]), 0, &mut sink);
        op.evict_before(1);
        op.process(&Tuple::tagged(Key(2), TAG_RIGHT, [3, 10]), 1, &mut sink);
        assert_eq!(op.misses(), 2);
    }

    #[test]
    fn cojoin_state_migrates() {
        let mut a = CoJoinOp::new();
        let mut sink = no_emit();
        a.process(&Tuple::tagged(Key(42), TAG_LEFT, [7, 3]), 2, &mut sink);
        let blob = a.extract(Key(42)).unwrap();
        let mut b = CoJoinOp::new();
        b.install(Key(42), blob);
        let mut emitted = Vec::new();
        b.process(&Tuple::tagged(Key(42), TAG_RIGHT, [1, 500]), 2, &mut |t| {
            emitted.push(t)
        });
        assert_eq!(emitted.len(), 1, "migrated order still joins");
        assert_eq!(emitted[0].vals, [500, 7]);
    }

    #[test]
    fn collectors() {
        let mut s = SumCollector::new();
        s.collect(&Tuple::tagged(Key(1), TAG_PARTIAL, [5, 0]));
        s.collect(&Tuple::tagged(Key(1), TAG_PARTIAL, [3, 0]));
        s.collect(&Tuple::tagged(Key(2), TAG_PARTIAL, [1, 0]));
        assert_eq!(s.result(), vec![(1, 8), (2, 1)]);

        let mut c = CountingCollector::new();
        c.collect(&Tuple::keyed(Key(1)));
        c.collect(&Tuple::keyed(Key(2)));
        assert_eq!(c.result(), vec![(0, 2)]);
    }

    #[test]
    fn drain_returns_everything_sorted() {
        let mut op = WordCountOp::new();
        let mut sink = no_emit();
        for k in [5u64, 1, 3] {
            op.process(&Tuple::keyed(Key(k)), 0, &mut sink);
        }
        let drained = op.drain();
        let keys: Vec<u64> = drained.iter().map(|(k, _)| k.raw()).collect();
        assert_eq!(keys, vec![1, 3, 5]);
        assert_eq!(op.count_of(Key(1)), 0);
    }
}
