//! The metric-direction table: which way "better" points for every
//! metric key in `bench_results/`.
//!
//! `benchdiff` classifies a delta as regression or improvement by the
//! metric's direction, inferred from its (dotted, file-qualified) key.
//! This used to be a private heuristic inside the binary, which meant an
//! unknown key silently compared as directionless — a renamed throughput
//! metric would stop gating regressions without anyone noticing. The
//! table is now public so `streambal-lint` (rule L005) can enforce the
//! closed-world property: **every numeric key committed under
//! `bench_results/` must classify as something other than
//! [`Direction::Unknown`]** — either a real direction or an explicit
//! [`Direction::Neutral`] (configuration echoes, figure rows, trajectory
//! facts).
//!
//! Precedence is positional: [`UP_PATTERNS`] are checked first, then
//! [`DOWN_PATTERNS`], then [`NEUTRAL_PATTERNS`] — so a derived
//! `rebuild_speedup` key counts up even though `rebuild` alone counts
//! down, and `worker_seconds` counts down even though bare `workers` is
//! a neutral shape echo. Matching is case-insensitive substring over the
//! full flattened key (`file :: path.to.metric` included), so a pattern
//! can anchor on any path segment.

use std::collections::BTreeMap;

use crate::json::Json;

/// Which way "better" points for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better (throughput, speedups, ratios).
    HigherIsBetter,
    /// Smaller is better (latency, wall time, migration cost, queues).
    LowerIsBetter,
    /// Declared directionless: configuration echoes, figure-table rows,
    /// and trajectory facts. Reported on change, never a regression.
    Neutral,
    /// Not in the table at all. `benchdiff` reports these like
    /// [`Direction::Neutral`]; lint rule L005 makes them a hard error so
    /// the table stays closed over the committed result files.
    Unknown,
}

/// Substring patterns for higher-is-better metrics (checked first).
pub const UP_PATTERNS: &[&str] = &[
    "throughput",
    "per_sec",
    "per_s",
    "speedup",
    "tuples_s",
    // Underscore-anchored so the quotient metrics ("*_ratio",
    // "ratio_*_vs_*") match but "migration" — which contains "ratio" as
    // a bare substring — does not drag its whole metric group up.
    "_ratio",
    "ratio_",
    // The pre-placement scenario's "is the new slot actually fed" count:
    // more tuples on the scaled-out worker is the whole point.
    "new_worker_tuples",
];

/// Substring patterns for lower-is-better metrics (checked second).
///
/// `queue`/`ttft`/`time_to_first` are the elasticity backpressure and
/// cold-start metrics: a shallower queue and a faster first tuple on a
/// scaled-out slot are improvements, and must not be flagged as
/// regressions when they drop. `rebuild`/`apply_delta`/`mutation` are
/// the routing bench's table-maintenance latency rows and `ns_per_key`
/// its per-key probe cost — all wall time, all count down. Their derived
/// `*_speedup_*` metrics hit [`UP_PATTERNS`] first, as intended.
pub const DOWN_PATTERNS: &[&str] = &[
    "latency",
    "_ns",
    "_ms",
    "_us",
    "seconds",
    "migrated",
    "gen_time",
    "mig_",
    "wall",
    "queue",
    "ttft",
    "time_to_first",
    "backlog",
    "rebuild",
    "apply_delta",
    "mutation",
    "ns_per_key",
    // Chaos-bench degradation metrics: fewer lost tuples, a shorter
    // recovery window, and a cheaper rollback are all improvements.
    // (`degraded_throughput_ratio` hits UP first via "ratio", as
    // intended — closer to the healthy baseline is better.)
    "lost",
    "recovery",
    "rollback",
    // Flight-recorder span metrics: a protocol op's disruption window —
    // and each phase inside it — is paused-traffic time; shorter is
    // better. (`trace_overhead_ratio` hits UP first via "ratio": the
    // recorder-on/off throughput quotient climbs toward 1.0 as the
    // recorder gets cheaper.)
    "disruption",
    "phase_",
    // Split-bench imbalance metrics: how far a run sits above θmax
    // (`*_theta_excess*`) and the settled worker imbalance itself both
    // count down — closer to balanced is better. Checked before the
    // neutral "theta" echo, so the derived excess keeps its direction.
    "excess",
    "imbalance",
];

/// Substring patterns for declaredly directionless keys (checked last,
/// so a real direction anywhere in the key wins).
///
/// Three families:
/// * **configuration echoes** — the shape parameters a bench writes next
///   to its results so a JSON file is self-describing (`batch`, `reps`,
///   `workers`, `spin_work`, `zipf_z`, …). Comparing them across trees
///   only detects that the scenario changed, which is worth a "change"
///   line but can never be a regression;
/// * **figure-table rows** — the `figNN.json` ports of the paper's
///   figures (`tables.N.rows.<label>.values.M`). Their directions vary
///   per figure (a θ row counts down, a throughput row up) and the row
///   labels are display strings; they are tracked as diffable artifacts,
///   not gated metrics;
/// * **trajectory facts** — scale-event logs, worker-count extrema,
///   rebalance counts: facts about what a policy did, where "more" is
///   neither better nor worse without the scenario in hand.
pub const NEUTRAL_PATTERNS: &[&str] = &[
    // Configuration echoes.
    "batch",
    "reps",
    "workers",
    "samples",
    "spin",
    "zipf",
    "domain",
    "table_size",
    "capacity",
    "churn",
    "quiet",
    "schedule",
    "tuples_per",
    "n_tasks",
    "seed",
    "theta",
    // Figure-table rows.
    ".rows.",
    // Trajectory facts.
    "interval",
    "scale_events",
    "rebalances",
    // Chaos-ledger event counts: how many retries/aborts/absorptions a
    // fault plan provoked is a fact about the plan, not a quality
    // metric ("fault" also matches "default", which is equally
    // neutral). The *costs* of those events classify above: lost
    // tuples, recovery windows, and rollback overhead all count down.
    "fault",
    "abort",
    "retri",
    "absorb",
    "stall",
    "timed_out",
    "fed_tuples",
    // Flight-recorder span counts: how many protocol ops a run traced
    // (and how they closed) is a fact about the scenario; the spans'
    // *costs* classify above via "disruption"/"phase_".
    "span",
    // Hot-key-splitting trajectory facts and scenario shape: how many
    // split/unsplit cycles a policy ran is what it *did*, not how well
    // (the win shows up in the imbalance and throughput metrics above);
    // a burst window's bounds and the dominant key's volume share are
    // workload echoes. "split" also covers "unsplits" and the
    // "split_throughput_ratio" tail — the latter hits UP first, as
    // intended.
    "split",
    "burst",
    "dominant",
    "share",
];

/// The direction for a flattened metric key, by positional pattern
/// precedence (up, then down, then neutral; no match ⇒ unknown).
pub fn direction_of(key: &str) -> Direction {
    let k = key.to_ascii_lowercase();
    if UP_PATTERNS.iter().any(|p| k.contains(p)) {
        return Direction::HigherIsBetter;
    }
    if DOWN_PATTERNS.iter().any(|p| k.contains(p)) {
        return Direction::LowerIsBetter;
    }
    if NEUTRAL_PATTERNS.iter().any(|p| k.contains(p)) {
        return Direction::Neutral;
    }
    Direction::Unknown
}

/// Flattens the numeric leaves of a parsed result document into dotted
/// keys — the key space [`direction_of`] classifies. Array elements are
/// keyed by their `id`/`name`/`label`/`bench` field when they carry one
/// (rows reorder across PRs, positions lie), by index otherwise.
pub fn flatten_metrics(doc: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    flatten(doc, &mut String::new(), &mut out);
    out
}

fn flatten(v: &Json, path: &mut String, out: &mut BTreeMap<String, f64>) {
    match v {
        Json::Obj(fields) => {
            for (k, child) in fields {
                let len = path.len();
                if !path.is_empty() {
                    path.push('.');
                }
                path.push_str(k);
                flatten(child, path, out);
                path.truncate(len);
            }
        }
        Json::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                let label = ["id", "name", "label", "bench"]
                    .iter()
                    .find_map(|f| child.get(f).and_then(Json::as_str).map(str::to_string))
                    .unwrap_or_else(|| i.to_string());
                let len = path.len();
                if !path.is_empty() {
                    path.push('.');
                }
                path.push_str(&label);
                flatten(child, path, out);
                path.truncate(len);
            }
        }
        _ => {
            if let Some(x) = v.as_f64() {
                out.insert(path.clone(), x);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_directions_win_over_neutral_echoes() {
        // Quality metrics keep their direction even when the key also
        // contains a neutral pattern.
        assert_eq!(
            direction_of("results.batched/b256/w4.tuples_per_sec"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            direction_of("elastic.json :: results.threshold/4..8.worker_seconds"),
            Direction::LowerIsBetter
        );
        assert_eq!(
            direction_of("results.rebuild/300000.ns_per_key_speedup_vs_rebuild"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            direction_of("preplacement.results.preplace/on.new_worker_tuples"),
            Direction::HigherIsBetter
        );
    }

    #[test]
    fn shape_echoes_and_trajectories_are_neutral() {
        for key in [
            "results.batched/b256/w4.batch",
            "results.planner/4..8.scale_events.3.from",
            "results.static/w8.workers_max",
            "tables.0.rows.Mixed θ=0.2.values.5",
            "volume_schedule.7",
            "zipf_z",
            "preplacement.decision_interval",
        ] {
            assert_eq!(direction_of(key), Direction::Neutral, "{key}");
        }
    }

    #[test]
    fn unknown_means_not_in_the_table() {
        assert_eq!(direction_of("entirely_new_metric"), Direction::Unknown);
    }

    #[test]
    fn flight_recorder_metrics_classify() {
        // The overhead quotient counts up (1.0 = free recorder); span
        // disruption windows and their phase breakdowns count down.
        assert_eq!(
            direction_of("engine.json :: trace_overhead_ratio"),
            Direction::HigherIsBetter
        );
        for key in [
            "chaos.json :: results.kill/w4.disruption_window_us",
            "spans.scale_in.phase_install_us",
            "spans.rebalance.phase_quiesce_wait_us",
        ] {
            assert_eq!(direction_of(key), Direction::LowerIsBetter, "{key}");
        }
    }

    #[test]
    fn split_bench_metrics_classify() {
        // Split/unsplit cycle counts are trajectory facts; imbalance and
        // θ-excess count down; the merged throughput and the
        // split-vs-unsplit throughput quotient count up.
        for key in [
            "split.json :: split_enabled.splits",
            "split.json :: split_enabled.unsplits",
            "split.json :: dominant_share",
            "split.json :: burst_from_interval",
        ] {
            assert_eq!(direction_of(key), Direction::Neutral, "{key}");
        }
        for key in [
            "split.json :: split_enabled.settled_worker_imbalance",
            "split.json :: split_enabled.settled_theta_excess",
            "split.json :: migration_only.burst_theta_excess_min",
        ] {
            assert_eq!(direction_of(key), Direction::LowerIsBetter, "{key}");
        }
        for key in [
            "split.json :: split_enabled.merged_throughput_tuples_per_sec",
            "split.json :: split_throughput_ratio",
        ] {
            assert_eq!(direction_of(key), Direction::HigherIsBetter, "{key}");
        }
    }

    /// The closed-world property lint rule L005 enforces at CI time:
    /// every numeric key in every committed result file classifies.
    #[test]
    fn every_committed_key_classifies() {
        let dir = crate::figure::results_dir();
        let mut seen = 0usize;
        for entry in std::fs::read_dir(dir).expect("bench_results exists") {
            let path = entry.expect("readable entry").path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let text = std::fs::read_to_string(&path).expect("readable file");
            let doc = Json::parse(&text).expect("parseable result file");
            let name = path.file_name().expect("file name").to_string_lossy();
            for key in flatten_metrics(&doc).keys() {
                seen += 1;
                assert_ne!(
                    direction_of(&format!("{name} :: {key}")),
                    Direction::Unknown,
                    "{name} :: {key} has no direction — add it to the table \
                     in crates/bench/src/direction.rs"
                );
            }
        }
        assert!(seen > 100, "committed results should have many metrics");
    }

    #[test]
    fn flatten_prefers_stable_labels_over_indices() {
        let doc = Json::parse(r#"{"rows": [{"id": "hash", "v": 1}, {"v": 2}], "x": 3.5}"#)
            .expect("parses");
        let m = flatten_metrics(&doc);
        assert_eq!(m.get("rows.hash.v"), Some(&1.0));
        assert_eq!(m.get("rows.1.v"), Some(&2.0));
        assert_eq!(m.get("x"), Some(&3.5));
    }
}
