// Fixture: swap_table mentioned in docs and called from test code only.

/// Rebuild docs may reference `swap_table` freely — comments are not
/// calls. Even "swap_table(" in a string is fine:
pub const NOTE: &str = "swap_table(..) is confined to the resync path";

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_rebuild() {
        let mut f = AssignmentFn::new(4);
        f.swap_table(RoutingTable::new());
    }
}
