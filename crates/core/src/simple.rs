//! The Simple algorithm (paper appendix, Algorithm 5).
//!
//! Disassociate *all* keys, sort by non-increasing computation cost, and
//! greedily assign each to the least-loaded instance — classic LPT
//! scheduling. The paper uses it to derive Theorem 1: when a perfect
//! assignment exists and no single key exceeds the average load, the
//! resulting balance indicator is bounded by `⅓·(1 − 1/N_D)`.
//!
//! Simple ignores both migration cost and the routing-table bound, so it
//! is a theory/diagnostic tool, not a production strategy (its routing
//! table grows to `O(K)`).

use crate::key::TaskId;
use crate::stats::KeyRecord;

/// Runs Algorithm 5: returns the new assignment, parallel to `records`.
pub fn simple_assign(records: &[KeyRecord], n_tasks: usize) -> Vec<TaskId> {
    assert!(n_tasks > 0, "simple_assign needs at least one task");
    // Sort key indices by descending cost, ties by key for determinism.
    let mut order: Vec<u32> = (0..records.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        let (ra, rb) = (&records[a as usize], &records[b as usize]);
        rb.cost.cmp(&ra.cost).then_with(|| ra.key.cmp(&rb.key))
    });
    let mut loads = vec![0u64; n_tasks];
    let mut assign = vec![TaskId(0); records.len()];
    for idx in order {
        // Least-loaded instance, ties by id.
        // lint: allow(panic, reason = "min over 0..n_tasks is None only for
        // n_tasks == 0, and a zero-task topology cannot be constructed")
        let d = (0..n_tasks)
            .min_by_key(|&i| (loads[i], i))
            .expect("n_tasks > 0");
        loads[d] += records[idx as usize].cost;
        assign[idx as usize] = TaskId::from(d);
    }
    assign
}

/// The Theorem 1 bound on the balance indicator for the Simple/LLFD
/// family: `⅓ · (1 − 1/N_D)`.
#[inline]
pub fn theorem1_bound(n_tasks: usize) -> f64 {
    (1.0 - 1.0 / n_tasks as f64) / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;
    use crate::load::LoadSummary;

    fn rec(key: u64, cost: u64) -> KeyRecord {
        KeyRecord {
            key: Key(key),
            cost,
            mem: 1,
            current: TaskId(0),
            hash_dest: TaskId(0),
        }
    }

    fn loads_after(records: &[KeyRecord], assign: &[TaskId], n: usize) -> Vec<u64> {
        let mut loads = vec![0u64; n];
        for (r, d) in records.iter().zip(assign) {
            loads[d.index()] += r.cost;
        }
        loads
    }

    #[test]
    fn lpt_on_equal_keys_is_perfect() {
        let records: Vec<_> = (0..8).map(|i| rec(i, 5)).collect();
        let assign = simple_assign(&records, 4);
        assert_eq!(loads_after(&records, &assign, 4), vec![10, 10, 10, 10]);
    }

    #[test]
    fn lpt_classic_example() {
        // Costs {7,6,5,4,3} on 2 machines: LPT gives {7,4,3}=14? No:
        // 7→d0, 6→d1, 5→d1(11)? least-loaded after 7,6 is d1(6): 5→d1? 6<7
        // so yes d1=11; 4→d0=11; 3→d0 or d1 tie → d0=14. Optimal is 13/12,
        // LPT gives 14/11 here — we assert the actual greedy outcome.
        let records = vec![rec(1, 7), rec(2, 6), rec(3, 5), rec(4, 4), rec(5, 3)];
        let assign = simple_assign(&records, 2);
        let mut loads = loads_after(&records, &assign, 2);
        loads.sort_unstable();
        assert_eq!(loads, vec![11, 14]);
    }

    #[test]
    fn theorem1_bound_holds_when_premises_hold() {
        // Perfect assignment exists: 2·N_D keys of equal cost, and
        // c(k1) < L̄. Theorem 1 premise ⇒ θ ≤ (1/3)(1 − 1/N_D).
        for nd in [2usize, 4, 8] {
            let records: Vec<_> = (0..(4 * nd) as u64).map(|i| rec(i, 3)).collect();
            let assign = simple_assign(&records, nd);
            let s = LoadSummary::new(loads_after(&records, &assign, nd));
            assert!(
                s.max_theta() <= theorem1_bound(nd) + 1e-9,
                "nd={nd}: θ={} > bound={}",
                s.max_theta(),
                theorem1_bound(nd)
            );
        }
    }

    #[test]
    fn worst_case_shape_from_lemma3_respects_bound() {
        // The Lemma 3 adversarial shape: 2·N_D heavy keys + one key of
        // L̄/3 + dust. Construct approximately and check the bound.
        let nd = 4usize;
        // L̄ = 120: heavy keys sized so that perfect assignment exists.
        let mut records: Vec<KeyRecord> = Vec::new();
        let mut next = 0u64;
        // 2·ND keys of (ND·L̄ − L̄/3 − dust)/(2·ND) ≈ 56 each.
        for _ in 0..(2 * nd) {
            records.push(rec(next, 56));
            next += 1;
        }
        records.push(rec(next, 40)); // the L̄/3 key
        next += 1;
        for _ in 0..32 {
            records.push(rec(next, 1)); // dust ε-keys
            next += 1;
        }
        let assign = simple_assign(&records, nd);
        let s = LoadSummary::new(loads_after(&records, &assign, nd));
        assert!(
            s.max_theta() <= theorem1_bound(nd) + 0.05,
            "θ={} vs bound={}",
            s.max_theta(),
            theorem1_bound(nd)
        );
    }

    #[test]
    fn deterministic() {
        let records: Vec<_> = (0..100).map(|i| rec(i, (i * 7) % 13 + 1)).collect();
        assert_eq!(simple_assign(&records, 5), simple_assign(&records, 5));
    }

    #[test]
    fn single_task_takes_everything() {
        let records = vec![rec(1, 5), rec(2, 9)];
        let assign = simple_assign(&records, 1);
        assert!(assign.iter().all(|&d| d == TaskId(0)));
    }

    #[test]
    fn empty_records_ok() {
        let assign = simple_assign(&[], 3);
        assert!(assign.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_tasks_panics() {
        simple_assign(&[rec(1, 1)], 0);
    }

    #[test]
    fn bound_values() {
        assert!((theorem1_bound(2) - 1.0 / 6.0).abs() < 1e-12);
        assert!((theorem1_bound(4) - 0.25).abs() < 1e-12);
        // N_D → ∞ ⇒ bound → 1/3.
        assert!(theorem1_bound(1_000_000) < 1.0 / 3.0);
    }
}
