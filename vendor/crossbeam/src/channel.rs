//! MPSC channels with crossbeam-channel's API shape.
//!
//! Semantics the engine relies on:
//! * `bounded(cap)`: `send` blocks while the queue holds `cap` units of
//!   weight — this is the backpressure path. Plain `send` weighs 1;
//!   [`Sender::send_weighted`] lets a batch message count as its tuple
//!   count, so a capacity stays denominated in tuples no matter how
//!   messages group them (an extension over upstream crossbeam, which
//!   counts messages only). A message heavier than the whole capacity is
//!   admitted once the channel is empty, so oversized batches make
//!   progress instead of deadlocking.
//! * `unbounded()`: `send` never blocks.
//! * `recv` blocks until a message arrives or every sender is dropped.
//! * A channel with no receivers fails sends with [`SendError`], waking
//!   blocked senders (teardown safety).
//! * [`Select`] waits on several receivers at once; a disconnected
//!   channel counts as ready, exactly like crossbeam.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// The sending half failed because all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Why `try_send` handed the message back instead of queueing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel has no room right now.
    Full(T),
    /// No receiver remains.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recovers the message that was not sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(msg) | TrySendError::Disconnected(msg) => msg,
        }
    }
}

/// Why `send_timeout` handed the message back instead of queueing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The bounded channel stayed full for the whole timeout.
    Timeout(T),
    /// No receiver remains.
    Disconnected(T),
}

impl<T> SendTimeoutError<T> {
    /// Recovers the message that was not sent.
    pub fn into_inner(self) -> T {
        match self {
            SendTimeoutError::Timeout(msg) | SendTimeoutError::Disconnected(msg) => msg,
        }
    }
}

/// The receiving half failed because the channel is empty and all senders
/// are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Why `try_recv` returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message queued right now.
    Empty,
    /// No message queued and no sender remains.
    Disconnected,
}

struct State<T> {
    /// Queued messages with their weights.
    queue: VecDeque<(T, usize)>,
    /// Total weight currently queued.
    used: usize,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signalled on enqueue and on sender-side disconnect.
    not_empty: Condvar,
    /// Signalled on dequeue and on receiver-side disconnect.
    not_full: Condvar,
    cap: Option<usize>,
}

impl<T> Shared<T> {
    fn new(cap: Option<usize>) -> Arc<Self> {
        Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                used: 0,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        })
    }
}

/// The sending half. Clonable; dropping the last sender disconnects.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half. Dropping it disconnects the channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

// Opaque Debug (no `T: Debug` bound, no queue contents), matching
// upstream crossbeam — events that carry a channel half stay derivable.
impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Creates a channel that holds at most `cap` messages; `send` blocks when
/// full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    // cap = 0 (rendezvous) is not needed here; treat it as capacity 1.
    let shared = Shared::new(Some(cap.max(1)));
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Creates a channel with no capacity limit.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Shared::new(None);
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `msg`, blocking while a bounded channel is full. Fails
    /// only when every receiver is gone. Weighs 1 capacity unit.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.send_weighted(msg, 1)
    }

    /// Enqueues `msg` counting as `weight` capacity units (min 1) — a
    /// batch message weighted by its element count keeps the channel's
    /// capacity denominated in elements. Blocks while the queued weight
    /// leaves no room; a message heavier than the whole capacity is
    /// admitted when the channel is empty (progress over strictness).
    pub fn send_weighted(&self, msg: T, weight: usize) -> Result<(), SendError<T>> {
        let w = weight.max(1);
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.shared.cap {
                Some(cap) if state.used > 0 && state.used + w > cap => {
                    state = self.shared.not_full.wait(state).unwrap();
                }
                _ => break,
            }
        }
        state.used += w;
        state.queue.push_back((msg, w));
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues `msg` (weight 1) only if room exists right now; never
    /// blocks. `Full` hands the message back so the caller can defer —
    /// the escape hatch for control messages aimed at a worker that may
    /// have stopped draining its queue (a plain `send` against a dead
    /// peer's full bounded channel would block forever).
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.shared.cap {
            if state.used > 0 && state.used + 1 > cap {
                return Err(TrySendError::Full(msg));
            }
        }
        state.used += 1;
        state.queue.push_back((msg, 1));
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues `msg` (weight 1), waiting at most `timeout` for room.
    /// `Timeout` hands the message back: the bounded-wait variant for a
    /// peer that is *probably* draining but must not be trusted with an
    /// unbounded block (a control marker aimed at a worker that may have
    /// died with a full queue).
    pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(msg));
            }
            match self.shared.cap {
                Some(cap) if state.used > 0 && state.used + 1 > cap => {
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        return Err(SendTimeoutError::Timeout(msg));
                    }
                    let (s, _timed_out) = self
                        .shared
                        .not_full
                        .wait_timeout(state, deadline - now)
                        .unwrap();
                    state = s;
                }
                _ => break,
            }
        }
        state.used += 1;
        state.queue.push_back((msg, 1));
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Total weight currently queued (the sum of `send_weighted` weights
    /// not yet received) — for a tuple-weighted channel, its occupancy in
    /// tuples. A sampling probe: the value is exact at the instant the
    /// internal lock is held and can change the moment it returns, which
    /// is all a backpressure signal needs.
    pub fn queued_weight(&self) -> usize {
        self.shared.state.lock().unwrap().used
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake receivers blocked on an empty queue so they observe
            // the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues a message, blocking until one arrives or all senders are
    /// dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some((msg, w)) = state.queue.pop_front() {
                state.used -= w;
                drop(state);
                // A weighted pop can free room for several blocked
                // senders at once (e.g. many workers on the collector
                // channel); wake them all rather than guess.
                self.shared.not_full.notify_all();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).unwrap();
        }
    }

    /// Dequeues a message if one is ready.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap();
        if let Some((msg, w)) = state.queue.pop_front() {
            state.used -= w;
            drop(state);
            self.shared.not_full.notify_all();
            return Ok(msg);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Whether a `recv` would return without blocking (message queued or
    /// channel disconnected).
    fn ready(&self) -> bool {
        let state = self.shared.state.lock().unwrap();
        !state.queue.is_empty() || state.senders == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.receivers -= 1;
        let last = state.receivers == 0;
        drop(state);
        if last {
            // Wake senders blocked on a full queue so they observe the
            // disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

/// Object-safe readiness probe, so [`Select`] can hold receivers of
/// different message types.
trait Ready {
    fn ready(&self) -> bool;
}

impl<T> Ready for Receiver<T> {
    fn ready(&self) -> bool {
        Receiver::ready(self)
    }
}

/// Waits for any of several registered receivers to become ready.
///
/// Readiness polling with a capped backoff (≤ 100 µs sleeps): simple and
/// good enough for the control-plane traffic this serves — data tuples
/// never cross a `Select`.
pub struct Select<'a> {
    handles: Vec<&'a dyn Ready>,
    /// Round-robin start position, so one busy channel cannot starve the
    /// others.
    next: usize,
}

impl<'a> Select<'a> {
    /// Creates an empty selector.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Select {
            handles: Vec::new(),
            next: 0,
        }
    }

    /// Registers a receive operation; returns its index.
    pub fn recv<T>(&mut self, r: &'a Receiver<T>) -> usize {
        self.handles.push(r);
        self.handles.len() - 1
    }

    /// Blocks until a registered operation is ready.
    pub fn select(&mut self) -> SelectedOperation {
        assert!(!self.handles.is_empty(), "empty Select");
        let mut spins = 0u32;
        loop {
            let n = self.handles.len();
            for off in 0..n {
                let idx = (self.next + off) % n;
                if self.handles[idx].ready() {
                    self.next = (idx + 1) % n;
                    return SelectedOperation { index: idx };
                }
            }
            // Backoff: yield a few times, then sleep briefly.
            spins += 1;
            if spins < 32 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }

    /// Like [`Select::select`], but gives up after `timeout` and returns
    /// `Err(SelectTimeoutError)` if no registered operation became ready.
    /// Lets callers interleave deadline bookkeeping with event handling
    /// even when no events flow.
    pub fn select_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<SelectedOperation, SelectTimeoutError> {
        assert!(!self.handles.is_empty(), "empty Select");
        let deadline = std::time::Instant::now() + timeout;
        let mut spins = 0u32;
        loop {
            let n = self.handles.len();
            for off in 0..n {
                let idx = (self.next + off) % n;
                if self.handles[idx].ready() {
                    self.next = (idx + 1) % n;
                    return Ok(SelectedOperation { index: idx });
                }
            }
            if std::time::Instant::now() >= deadline {
                return Err(SelectTimeoutError);
            }
            spins += 1;
            if spins < 32 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }
}

/// No registered operation became ready before the timeout passed to
/// [`Select::select_timeout`] elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectTimeoutError;

impl std::fmt::Display for SelectTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "select timed out")
    }
}

impl std::error::Error for SelectTimeoutError {}

/// A ready operation returned by [`Select::select`]; complete it with
/// [`SelectedOperation::recv`] on the receiver it fired for.
pub struct SelectedOperation {
    index: usize,
}

impl SelectedOperation {
    /// Index of the operation, as returned by [`Select::recv`].
    pub fn index(&self) -> usize {
        self.index
    }

    /// Completes the receive. The selecting thread is the only consumer,
    /// so a ready channel yields without blocking; `Err` reports
    /// disconnection.
    pub fn recv<T>(self, r: &Receiver<T>) -> Result<T, RecvError> {
        match r.try_recv() {
            Ok(v) => Ok(v),
            Err(TryRecvError::Disconnected) => Err(RecvError),
            // Raced with nothing (sole consumer) — readiness was a
            // disconnect-in-progress; block for the definitive answer.
            Err(TryRecvError::Empty) => r.recv(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn halves_debug_without_t_debug() {
        struct Opaque; // no Debug
        let (tx, rx) = unbounded::<Opaque>();
        assert_eq!(format!("{tx:?}"), "Sender { .. }");
        assert_eq!(format!("{rx:?}"), "Receiver { .. }");
    }

    #[test]
    fn unbounded_fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = thread::spawn(move || {
            tx.send(3).unwrap(); // must block until a recv happens
            tx.send(4).unwrap();
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.recv(), Ok(4));
        t.join().unwrap();
    }

    #[test]
    fn weighted_sends_block_at_weight_capacity() {
        let (tx, rx) = bounded(8);
        tx.send_weighted(vec![0u8; 5], 5).unwrap();
        tx.send_weighted(vec![0u8; 3], 3).unwrap(); // exactly full
        let t = thread::spawn(move || {
            tx.send_weighted(vec![0u8; 4], 4).unwrap(); // must block
            tx.send(vec![9u8]).unwrap();
        });
        assert_eq!(rx.recv().unwrap().len(), 5); // frees 5 → 4 fits
        assert_eq!(rx.recv().unwrap().len(), 3);
        assert_eq!(rx.recv().unwrap().len(), 4);
        assert_eq!(rx.recv().unwrap(), vec![9u8]);
        t.join().unwrap();
    }

    #[test]
    fn oversized_weighted_message_admitted_when_empty() {
        let (tx, rx) = bounded(4);
        // Heavier than the whole capacity: admitted on an empty channel
        // (progress over strictness), then blocks everything behind it.
        tx.send_weighted(vec![0u8; 100], 100).unwrap();
        let t = thread::spawn(move || tx.send(vec![1u8]));
        assert_eq!(rx.recv().unwrap().len(), 100);
        assert_eq!(rx.recv().unwrap(), vec![1u8]);
        t.join().unwrap().unwrap();
    }

    #[test]
    fn weighted_pop_wakes_multiple_blocked_senders() {
        let (tx, rx) = bounded(10);
        tx.send_weighted((), 10).unwrap(); // full
        let mut handles = Vec::new();
        for _ in 0..4 {
            let tx = tx.clone();
            handles.push(thread::spawn(move || tx.send(()).unwrap()));
        }
        thread::sleep(Duration::from_millis(20));
        // One pop frees 10 units: all four weight-1 senders must get in.
        rx.recv().unwrap();
        for h in handles {
            h.join().unwrap();
        }
        for _ in 0..4 {
            rx.recv().unwrap();
        }
    }

    #[test]
    fn queued_weight_tracks_occupancy() {
        let (tx, rx) = bounded(16);
        assert_eq!(tx.queued_weight(), 0);
        tx.send_weighted(vec![0u8; 5], 5).unwrap();
        tx.send(vec![1u8]).unwrap(); // weighs 1
        assert_eq!(tx.queued_weight(), 6);
        rx.recv().unwrap();
        assert_eq!(tx.queued_weight(), 1);
        rx.recv().unwrap();
        assert_eq!(tx.queued_weight(), 0);
    }

    #[test]
    fn try_send_reports_full_and_disconnected_without_blocking() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(TrySendError::Full(3).into_inner(), 3);
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn send_timeout_expires_on_stuck_channel_and_delivers_when_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let start = std::time::Instant::now();
        assert_eq!(
            tx.send_timeout(2, Duration::from_millis(20)),
            Err(SendTimeoutError::Timeout(2))
        );
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert_eq!(SendTimeoutError::Timeout(2).into_inner(), 2);
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            rx.recv().unwrap();
            rx
        });
        // Room appears mid-wait: must deliver, not sleep the whole bound.
        tx.send_timeout(2, Duration::from_secs(5)).unwrap();
        let rx = t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        drop(rx);
        assert_eq!(
            tx.send_timeout(3, Duration::from_millis(5)),
            Err(SendTimeoutError::Disconnected(3))
        );
    }

    #[test]
    fn send_fails_when_receiver_gone() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn dropped_receiver_wakes_blocked_sender() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2)); // blocks: queue full
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(t.join().unwrap().is_err());
    }

    #[test]
    fn select_picks_ready_channel_and_reports_disconnect() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (tx_b, rx_b) = unbounded::<String>();
        let mut sel = Select::new();
        let ia = sel.recv(&rx_a);
        let ib = sel.recv(&rx_b);

        tx_b.send("hi".into()).unwrap();
        let op = sel.select();
        assert_eq!(op.index(), ib);
        assert_eq!(op.recv(&rx_b).unwrap(), "hi");

        tx_a.send(5).unwrap();
        let op = sel.select();
        assert_eq!(op.index(), ia);
        assert_eq!(op.recv(&rx_a), Ok(5));

        drop(tx_a);
        let op = sel.select(); // disconnected channel is "ready"
        assert_eq!(op.index(), ia);
        assert!(op.recv(&rx_a).is_err());
    }

    #[test]
    fn cross_thread_select_wakes() {
        let (tx, rx) = unbounded::<u64>();
        let (_keep, rx_idle) = unbounded::<u64>();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            tx.send(77).unwrap();
        });
        let mut sel = Select::new();
        let i_busy = sel.recv(&rx);
        let _i_idle = sel.recv(&rx_idle);
        let op = sel.select();
        assert_eq!(op.index(), i_busy);
        assert_eq!(op.recv(&rx), Ok(77));
        t.join().unwrap();
    }

    #[test]
    fn select_timeout_expires_on_idle_channels() {
        let (_tx, rx) = unbounded::<u32>();
        let mut sel = Select::new();
        sel.recv(&rx);
        let start = std::time::Instant::now();
        let res = sel.select_timeout(Duration::from_millis(20));
        assert_eq!(res.map(|op| op.index()), Err(SelectTimeoutError));
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn select_timeout_returns_ready_message_immediately() {
        let (tx, rx) = unbounded::<u32>();
        let mut sel = Select::new();
        let idx = sel.recv(&rx);
        tx.send(9).unwrap();
        let op = sel.select_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(op.index(), idx);
        assert_eq!(op.recv(&rx), Ok(9));
    }

    #[test]
    fn select_timeout_wakes_on_cross_thread_send_and_disconnect() {
        let (tx, rx) = unbounded::<u64>();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            tx.send(3).unwrap();
            // tx drops here: the next select_timeout must see the
            // disconnect as readiness, not spin out the full timeout.
        });
        let mut sel = Select::new();
        sel.recv(&rx);
        let op = sel.select_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(op.recv(&rx), Ok(3));
        t.join().unwrap();
        let op = sel.select_timeout(Duration::from_secs(5)).unwrap();
        assert!(op.recv(&rx).is_err());
    }
}
