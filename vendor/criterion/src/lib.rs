//! Offline shim for `criterion`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin API slice its benches use. Methodology is
//! deliberately simple — per benchmark: one warm-up call, then
//! `sample_size` timed iterations reported as min/mean — enough to
//! compare routing strategies locally and to keep `cargo bench` working
//! as a compile-and-smoke target in CI.
//!
//! Beyond printing, every completed benchmark is also recorded in a
//! process-wide registry ([`take_measurements`]) so bench binaries can
//! emit machine-readable output (the routing bench writes
//! `bench_results/routing.json` from it). Upstream criterion persists
//! measurements itself under `target/criterion`; the shim keeps the data
//! in memory and leaves serialization to the caller.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One completed benchmark's summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark id (`group` not included; `function/parameter` form).
    pub id: String,
    /// Mean wall time per timed sample.
    pub mean: Duration,
    /// Fastest timed sample.
    pub min: Duration,
    /// Number of timed samples.
    pub samples: usize,
}

/// Process-wide registry of completed measurements, in completion order.
static MEASUREMENTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// Drains and returns every measurement recorded so far in this process.
pub fn take_measurements() -> Vec<Measurement> {
    std::mem::take(&mut MEASUREMENTS.lock().expect("measurement registry"))
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\ngroup {name}");
        BenchmarkGroup { sample_size: 20 }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, 20, &mut f);
        self
    }
}

/// A named group sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.0, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` without an input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Ends the group (upstream criterion emits summaries here).
    pub fn finish(self) {}
}

fn run_one(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        min: Duration::MAX,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("  {id:<40} (no iterations)");
        return;
    }
    let mean = b.total / b.iters as u32;
    println!(
        "  {id:<40} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean, b.min, b.iters
    );
    MEASUREMENTS
        .lock()
        .expect("measurement registry")
        .push(Measurement {
            id: id.to_string(),
            mean,
            min: b.min,
            samples: b.iters,
        });
}

/// Passed to benchmark closures; call [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    min: Duration,
    iters: usize,
}

impl Bencher {
    /// Times `routine` `sample_size` times (after one warm-up call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
            self.iters += 1;
        }
    }
}

/// A function/parameter pair naming one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` display form, as upstream.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` over the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        assert_eq!(calls, 6, "1 warm-up + 5 samples");
    }

    #[test]
    fn measurements_are_recorded_and_drained() {
        // Runs single-threaded within this test; other tests in this
        // binary also record, so filter by a unique id.
        let mut c = Criterion::default();
        c.bench_function("registry_probe", |b| b.iter(|| black_box(1 + 1)));
        let ms = take_measurements();
        let m = ms
            .iter()
            .find(|m| m.id == "registry_probe")
            .expect("recorded");
        assert_eq!(m.samples, 20);
        assert!(m.min <= m.mean);
        // Drained: a second take only sees what ran in between.
        assert!(!take_measurements().iter().any(|m| m.id == "registry_probe"));
    }
}
