//! Offline shim for `crossbeam`, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin API slice it actually uses: MPSC channels (bounded
//! with blocking backpressure, and unbounded) plus a two-way [`channel::Select`].
//! Blocking send/recv use condvars; only `Select` polls (short
//! exponential backoff), which is fine for the control plane it serves.

pub mod channel;
