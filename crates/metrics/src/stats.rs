//! Wall-time measurement and running summary statistics.

use std::time::{Duration, Instant};

/// A running mean/min/max/variance accumulator (Welford's algorithm).
///
/// Used for "average generation time" style reports where the paper shows
/// mean with min/max whiskers over repeated rebalance rounds.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator (parallel Welford combine).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Measures elapsed wall time for plan-generation benchmarking.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed milliseconds as `f64` (the unit the paper plots).
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Restarts the stopwatch, returning the lap time.
    pub fn lap(&mut self) -> Duration {
        let e = self.start.elapsed();
        self.start = Instant::now();
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn mean_min_max() {
        let mut s = OnlineStats::new();
        for x in [3.0, 1.0, 4.0, 1.0, 5.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 2.8).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn variance_matches_direct() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.add(x);
        }
        // Known population variance of this classic sample = 4.
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..40] {
            a.add(x);
        }
        for &x in &xs[40..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.add(1.0);
        let b = OnlineStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = OnlineStats::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }

    #[test]
    fn stopwatch_measures_something() {
        let mut w = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(5));
        assert!(w.elapsed_ms() >= 4.0);
        let lap = w.lap();
        assert!(lap.as_millis() >= 4);
        // After lap the clock restarted.
        assert!(w.elapsed_ms() < 5.0);
    }
}
