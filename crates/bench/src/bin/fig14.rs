//! Regenerates the paper's Fig. 14 (see EXPERIMENTS.md): prints the text
//! tables and writes `bench_results/fig14.json`.
fn main() {
    let scale = streambal_bench::Scale::from_env();
    streambal_bench::figure::emit(&streambal_bench::figs_runtime::fig14(scale), scale);
}
