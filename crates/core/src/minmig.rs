//! MinMig (paper §III-B, Algorithm 3): minimize migration volume.
//!
//! No cleaning at all — existing routing-table placements are kept — and
//! both the Phase-II drain and the LLFD exchange use the migration-priority
//! index `γᵢ(k, w) = cᵢ(k)^β / Sᵢ(k, w)`: keys that shift the most load per
//! byte of state moved go first. The cost is unbounded table growth: after
//! many adjustments the table converges to `(N_D − 1)/N_D · K` entries
//! (paper Fig. 18), which is why MinMig is not run standalone in the
//! paper's system experiments.

use crate::key::TaskId;
use crate::llfd::{llfd, Arena, Criteria};
use crate::stats::KeyRecord;

/// Runs MinMig; returns the new assignment, parallel to `records`.
pub fn minmig_assign(
    records: &[KeyRecord],
    n_tasks: usize,
    theta_max: f64,
    beta: f64,
) -> Vec<TaskId> {
    // Phase I: do nothing — start from the current assignment.
    let mut arena = Arena::new(records, n_tasks, Criteria::LargestGamma { beta }, |_, r| {
        r.current
    });
    // Phase II: drain overloaded instances, largest γ first.
    let candidates = arena.drain_overloaded(theta_max);
    // Phase III: LLFD with the same ψ.
    llfd(&mut arena, candidates, theta_max);
    arena.into_assignment()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;
    use crate::load::LoadSummary;
    use crate::migration::migration_delta;

    fn rec(key: u64, cost: u64, mem: u64, cur: u32, hash: u32) -> KeyRecord {
        KeyRecord {
            key: Key(key),
            cost,
            mem,
            current: TaskId(cur),
            hash_dest: TaskId(hash),
        }
    }

    #[test]
    fn prefers_moving_low_memory_keys() {
        // d0 overloaded by two equal-cost keys; one has tiny state, one
        // huge. MinMig must move the tiny-state key.
        let records = vec![
            rec(1, 10, 1_000_000, 0, 0), // heavy state
            rec(2, 10, 1, 0, 0),         // light state
            rec(3, 1, 1, 1, 1),
        ];
        let assign = minmig_assign(&records, 2, 0.1, 1.0);
        let plan = migration_delta(&records, |k| {
            assign[records.iter().position(|r| r.key == k).unwrap()]
        });
        assert_eq!(plan.keys_moved(), 1);
        assert_eq!(plan.moves()[0].key, Key(2), "light-state key moves");
        assert_eq!(plan.cost_bytes(), 1);
    }

    #[test]
    fn keeps_existing_table_placements() {
        // Balanced via an existing table entry: nothing should move even
        // though F ≠ h for key 1 (no cleaning in MinMig).
        let records = vec![rec(1, 5, 100, 1, 0), rec(2, 5, 100, 0, 0)];
        let assign = minmig_assign(&records, 2, 0.0, 1.5);
        assert_eq!(assign[0], TaskId(1), "parked key stays parked");
        assert_eq!(assign[1], TaskId(0));
    }

    #[test]
    fn balances_under_skew() {
        let records: Vec<_> = (0..30).map(|i| rec(i, 4 + i % 5, 10, 0, 0)).collect();
        let assign = minmig_assign(&records, 3, 0.05, 1.5);
        let mut loads = vec![0u64; 3];
        for (r, d) in records.iter().zip(&assign) {
            loads[d.index()] += r.cost;
        }
        let s = LoadSummary::new(loads);
        assert!(s.max_theta() <= 0.25, "θ={}", s.max_theta());
    }

    #[test]
    fn beta_trades_cost_against_memory() {
        // Key A: cost 9, mem 9 → γ₁ = 1 (β=1); key B: cost 4, mem 2 → γ₁=2.
        // With β=1 B drains first; with β=2, γ(A)=9 > γ(B)=8, A first.
        let a = rec(1, 9, 9, 0, 0);
        let b = rec(2, 4, 2, 0, 0);
        assert!(b.gamma(1.0) > a.gamma(1.0));
        assert!(a.gamma(2.0) > b.gamma(2.0));
    }

    #[test]
    fn migration_cost_not_higher_than_mintable_on_parked_workload() {
        // Workload where the table already does the balancing: MinMig
        // moves nothing, MinTable moves the parked keys back and forth.
        use crate::mintable::mintable_assign;
        let records = vec![
            rec(1, 10, 500, 1, 0), // parked hot key
            rec(2, 10, 500, 0, 1), // parked hot key
            rec(3, 1, 10, 0, 0),
            rec(4, 1, 10, 1, 1),
        ];
        let mig_of = |assign: &[TaskId]| {
            migration_delta(&records, |k| {
                assign[records.iter().position(|r| r.key == k).unwrap()]
            })
            .cost_bytes()
        };
        let minmig = mig_of(&minmig_assign(&records, 2, 0.0, 1.5));
        let mintab = mig_of(&mintable_assign(&records, 2, 0.0));
        assert!(minmig <= mintab, "minmig={minmig} mintable={mintab}");
        assert_eq!(minmig, 0, "already balanced ⇒ no moves");
    }

    #[test]
    fn empty_records() {
        assert!(minmig_assign(&[], 2, 0.1, 1.5).is_empty());
    }
}
