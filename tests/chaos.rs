//! Chaos suite: seeded deterministic fault injection across every
//! partitioner in the workspace.
//!
//! The contract under test is *accounted degradation*: a run with
//! injected worker kills, dropped control messages, and stalls must
//! still terminate, and every fed tuple must be either observed in the
//! output (surviving worker state, or the merge collector for
//! key-splitting strategies) or listed in `EngineReport::lost_tuples` —
//! per key, exactly: `fed == observed + lost`. Fault handling is never
//! allowed to silently drop or double-count a tuple; it may only move
//! tuples from "observed" to "accounted lost".
//!
//! Determinism is part of the contract: the fault plan is data, not
//! timing, so replaying the same plan yields the same fault ledger.

use std::time::Duration;

use streambal::baselines::{
    CoreBalancer, HashPartitioner, PkgPartitioner, ReadjConfig, ReadjPartitioner,
    ShufflePartitioner,
};
use streambal::core::{BalanceParams, RebalanceStrategy};
use streambal::hashring::FxHashMap;
use streambal::prelude::{Key, Partitioner, TaskId};
use streambal::runtime::{
    Collector, CtlKind, Engine, EngineConfig, EngineReport, FaultEvent, FaultPlan, FaultSpec,
    KillTrigger, OpKind, SumCollector, Tuple, WordCountOp,
};
use streambal::workloads::FluctuatingWorkload;

/// Workload parameters, mirroring `cross_partitioner.rs` so the fault
/// runs stress the same skewed, fluctuating, migration-heavy regime the
/// exactness suite proves correct without faults.
const N_TASKS: usize = 3;
const KEYS: usize = 400;
const ZIPF: f64 = 1.0;
const TUPLES: u64 = 6_000;
const FLUCTUATION: f64 = 0.6;
const SEED: u64 = 4242;
const INTERVALS: usize = 5;

/// Hard ceiling on one engine run. A wedged protocol (the failure mode
/// this suite exists to catch) panics the test instead of hanging CI.
const RUN_TIMEOUT: Duration = Duration::from_secs(120);

/// Every partitioner under test, freshly constructed.
fn all_partitioners() -> Vec<Box<dyn Partitioner>> {
    let params = BalanceParams {
        theta_max: 0.05,
        ..BalanceParams::default()
    };
    let mut out: Vec<Box<dyn Partitioner>> = vec![
        Box::new(HashPartitioner::new(N_TASKS)),
        Box::new(ShufflePartitioner::new(N_TASKS)),
        Box::new(PkgPartitioner::new(N_TASKS)),
        Box::new(ReadjPartitioner::new(
            N_TASKS,
            100,
            ReadjConfig {
                theta_max: 0.05,
                sigma: 0.01,
                max_actions: 512,
            },
        )),
    ];
    for strategy in [
        RebalanceStrategy::Mixed,
        RebalanceStrategy::MinTable,
        RebalanceStrategy::MinMig,
        RebalanceStrategy::Simple,
    ] {
        out.push(Box::new(CoreBalancer::new(N_TASKS, 100, strategy, params)));
    }
    out
}

/// A fresh CoreBalancer/Mixed: the workhorse strategy for targeted
/// fault tests, since it migrates on every interval of this workload.
fn mixed_balancer() -> Box<dyn Partitioner> {
    Box::new(CoreBalancer::new(
        N_TASKS,
        100,
        RebalanceStrategy::Mixed,
        BalanceParams {
            theta_max: 0.05,
            ..BalanceParams::default()
        },
    ))
}

fn keyed_intervals() -> Vec<Vec<Key>> {
    let mut w = FluctuatingWorkload::new(KEYS, ZIPF, TUPLES, FLUCTUATION, SEED);
    (0..INTERVALS)
        .map(|i| {
            if i > 0 {
                w.advance(N_TASKS, |k| TaskId::from(k.raw() as usize % N_TASKS));
            }
            w.tuples()
        })
        .collect()
}

fn reference_counts(intervals: &[Vec<Key>]) -> FxHashMap<Key, u64> {
    let mut m = FxHashMap::default();
    for iv in intervals {
        for &k in iv {
            *m.entry(k).or_insert(0) += 1;
        }
    }
    m
}

/// Engine config for fault runs. Deadlines are squeezed far below the
/// defaults so retry/abort recovery fires within a test run instead of
/// after seconds of wall-clock; spurious expiry on a healthy-but-slow
/// op is acceptable here — retries are idempotent and aborts roll back,
/// so the accounting invariant must survive them too.
fn chaos_config(plan: FaultPlan) -> EngineConfig {
    EngineConfig {
        n_workers: N_TASKS,
        max_workers: N_TASKS,
        spin_work: 10,
        window: 100, // retain all state: exact accounting validation
        fault_plan: plan,
        op_deadline_intervals: 1,
        op_deadline: Duration::from_millis(400),
        round_deadline_intervals: 2,
        round_deadline: Duration::from_millis(400),
        ..EngineConfig::default()
    }
}

/// Runs the engine on the shared workload with the given partitioner
/// and config, panicking (not hanging) if the run does not terminate.
fn run_chaos(label: &str, config: EngineConfig, p: Box<dyn Partitioner>) -> EngineReport {
    let preserves = p.preserves_key_semantics();
    let feed = keyed_intervals();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let report = Engine::run(
            config,
            p,
            |_| {
                if preserves {
                    Box::new(WordCountOp::new())
                } else {
                    // Split keys need partial emission + a merge stage.
                    Box::new(WordCountOp::with_partial_emission(8))
                }
            },
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            (!preserves).then(|| Box::new(SumCollector::new()) as Box<dyn Collector>),
        );
        let _ = tx.send(report);
    });
    rx.recv_timeout(RUN_TIMEOUT)
        .unwrap_or_else(|_| panic!("{label}: engine run did not terminate"))
}

/// The accounting invariant: per key, observed output plus accounted
/// loss equals what was fed — no silent drops, no double counts.
fn assert_accounted(
    label: &str,
    report: &EngineReport,
    expect: &FxHashMap<Key, u64>,
    preserves: bool,
) {
    let mut got: FxHashMap<Key, u64> = FxHashMap::default();
    if preserves {
        // A key's count may legitimately split across workers after a
        // re-route or rollback; the *sum* must balance.
        for (k, blob) in &report.final_states {
            let n: u64 = WordCountOp::decode(blob).iter().map(|&(_, c)| c).sum();
            *got.entry(*k).or_insert(0) += n;
        }
    } else {
        for &(k, v) in &report.collector_result {
            *got.entry(Key(k)).or_insert(0) += v;
        }
    }
    for &(k, n) in &report.lost_tuples {
        *got.entry(k).or_insert(0) += n;
    }
    for (k, &e) in expect {
        let g = got.get(k).copied().unwrap_or(0);
        assert_eq!(
            g, e,
            "{label}: key {k:?} unaccounted: fed {e}, observed+lost {g} \
             (faults: {:?})",
            report.faults
        );
    }
    for (k, &g) in &got {
        assert!(
            expect.contains_key(k),
            "{label}: phantom key {k:?} with count {g}"
        );
    }
    assert!(
        report.protocol_errors.is_empty(),
        "{label}: protocol errors: {:?} (faults: {:?})",
        report.protocol_errors,
        report.faults
    );
}

/// Replaying the same fault plan yields the *identical* fault ledger:
/// the plan, not thread timing, decides what fails and what recovery
/// runs. The scenario is pinned so every ledger entry is causally
/// ordered behind the kill: huge *wall* deadlines (a deadline only
/// expires when wall AND interval clocks agree, so a loaded test
/// machine can't sneak a timing-dependent retry entry into one ledger
/// but not the other), and a static Hash partitioner — with a balancer,
/// `Rerouted::moved_keys` counts the dead slot's keys in the *live*
/// routing table, and whether the previous interval's rebalance landed
/// before the kill event is a genuine controller race: legitimate
/// cross-run variation, covered by the accounting tests, but exactly
/// what a replayable ledger must be scoped away from.
#[test]
fn same_plan_yields_identical_fault_ledger() {
    let expect = reference_counts(&keyed_intervals());
    let plan = FaultPlan::new(vec![FaultSpec::KillWorker {
        worker: 1,
        at_interval: 2,
    }]);
    let config = || EngineConfig {
        n_workers: N_TASKS,
        max_workers: N_TASKS,
        spin_work: 10,
        window: 100,
        fault_plan: plan.clone(),
        op_deadline: Duration::from_secs(120),
        round_deadline: Duration::from_secs(120),
        ..EngineConfig::default()
    };
    let a = run_chaos(
        "ledger-a",
        config(),
        Box::new(HashPartitioner::new(N_TASKS)),
    );
    let b = run_chaos(
        "ledger-b",
        config(),
        Box::new(HashPartitioner::new(N_TASKS)),
    );
    assert!(
        a.faults.contains(&FaultEvent::InjectedKill {
            worker: 1,
            trigger: KillTrigger::Interval(2),
        }),
        "kill did not fire: {:?}",
        a.faults
    );
    assert!(
        a.faults.contains(&FaultEvent::WorkerDead { worker: 1 }),
        "death not observed: {:?}",
        a.faults
    );
    assert_eq!(
        a.faults, b.faults,
        "same plan must replay to the same ledger"
    );
    assert_accounted("ledger-a", &a, &expect, true);
    assert_accounted("ledger-b", &b, &expect, true);
}

/// A worker killed *mid-migration* — it dies on receipt of its first
/// `MigrateOut`, while the source is paused and the controller holds a
/// half-collected state transfer. The controller must untangle the
/// in-flight op (skip the dead participant, forward what it holds,
/// resume the source), account the dead worker's state, and finish.
#[test]
fn mid_migration_worker_kill_recovers_and_accounts() {
    let expect = reference_counts(&keyed_intervals());
    for victim in [1usize, 2] {
        let label = format!("kill-on-migrate-out({victim})");
        let plan = FaultPlan::new(vec![FaultSpec::KillOnMigrateOut {
            worker: victim,
            nth: 1,
        }]);
        let report = run_chaos(&label, chaos_config(plan), mixed_balancer());
        let killed = report.faults.contains(&FaultEvent::InjectedKill {
            worker: victim,
            trigger: KillTrigger::MigrateOut(1),
        });
        if killed {
            assert!(
                report
                    .faults
                    .contains(&FaultEvent::WorkerDead { worker: victim }),
                "{label}: death not observed: {:?}",
                report.faults
            );
        }
        assert_accounted(&label, &report, &expect, true);
    }
}

/// A worker killed *mid-split*: the workload's hottest key is forced
/// across all three workers after interval 1, a replica worker dies at
/// interval 2 — taking its partial state for the split key with it —
/// and the scheduled unsplit at interval 3 must consolidate from the
/// *surviving* replicas. Per key, `fed == observed + lost` must still
/// hold exactly: the dead replica's partials land in `lost_tuples`, the
/// survivors' partials reunify, and nothing is dropped or doubled in
/// between.
#[test]
fn mid_split_replica_kill_accounts_every_tuple() {
    let expect = reference_counts(&keyed_intervals());
    let hot = expect
        .iter()
        .max_by_key(|&(k, &c)| (c, std::cmp::Reverse(k.raw())))
        .map(|(&k, _)| k)
        .expect("non-empty workload");
    for victim in [1usize, 2] {
        let label = format!("kill-mid-split({victim})");
        let plan = FaultPlan::new(vec![FaultSpec::KillWorker {
            worker: victim,
            at_interval: 2,
        }]);
        let mut config = chaos_config(plan);
        config.split = Some(Box::new(streambal::elastic::FixedSplitSchedule::cycle(
            hot.raw(),
            N_TASKS,
            1,
            3,
        )));
        let report = run_chaos(&label, config, mixed_balancer());
        assert!(
            report
                .split_events
                .iter()
                .any(|e| e.key == hot.raw() && e.to > e.from),
            "{label}: forced split did not fire: {:?}",
            report.split_events
        );
        assert!(
            report
                .faults
                .contains(&FaultEvent::WorkerDead { worker: victim }),
            "{label}: death not observed: {:?}",
            report.faults
        );
        assert_accounted(&label, &report, &expect, true);
    }
}

/// A worker killed on receipt of a `StateInstall`: the tuples inside
/// the arriving blobs were already extracted from their origin, so they
/// exist nowhere but the message that killed their new owner — they
/// must land in `lost_tuples`, not vanish.
#[test]
fn kill_on_install_accounts_in_flight_state() {
    let expect = reference_counts(&keyed_intervals());
    let plan = FaultPlan::new(vec![FaultSpec::KillOnInstall { worker: 2, nth: 1 }]);
    let label = "kill-on-install(2)";
    let report = run_chaos(label, chaos_config(plan), mixed_balancer());
    assert_accounted(label, &report, &expect, true);
}

/// A dropped `PauseAck` wedges the migration handshake at its first
/// phase; the op deadline must re-drive the pause (the source's re-ack
/// is idempotent) and the run must stay *exact* — no worker died, so
/// nothing may be lost.
#[test]
fn dropped_pause_ack_is_redriven_and_stays_exact() {
    let expect = reference_counts(&keyed_intervals());
    let plan = FaultPlan::new(vec![FaultSpec::DropCtl {
        kind: CtlKind::PauseAck,
        nth: 1,
    }]);
    let label = "drop-pause-ack";
    let report = run_chaos(label, chaos_config(plan), mixed_balancer());
    assert!(
        report.faults.contains(&FaultEvent::InjectedDrop {
            kind: CtlKind::PauseAck,
            nth: 1,
        }),
        "{label}: drop did not fire: {:?}",
        report.faults
    );
    assert!(
        report.faults.iter().any(|f| matches!(
            f,
            FaultEvent::OpRetried {
                op: OpKind::Migrate,
                ..
            }
        )),
        "{label}: dropped ack was never re-driven: {:?}",
        report.faults
    );
    assert!(
        report.lost_tuples.is_empty(),
        "{label}: lossless fault lost tuples: {:?}",
        report.lost_tuples
    );
    assert_accounted(label, &report, &expect, true);
}

/// The seeded sweep: `FaultPlan::from_seed` draws 1–3 faults (kills,
/// control-message drops, stalls) and every partitioner must survive
/// every plan — terminate, keep the per-key accounting balanced, and
/// report no protocol errors. Strategies that never migrate make some
/// plans inert (a `KillOnMigrateOut` never fires under hashing); those
/// runs must then be exact, which the same invariant checks (empty
/// `lost_tuples` makes `observed + lost == fed` an exactness claim).
#[test]
fn seeded_sweep_accounts_every_tuple_across_partitioners() {
    let expect = reference_counts(&keyed_intervals());
    for seed in [1u64, 2, 3] {
        for p in all_partitioners() {
            let name = p.name();
            let label = format!("{name}/seed={seed}");
            let preserves = p.preserves_key_semantics();
            let plan = FaultPlan::from_seed(seed, N_TASKS, INTERVALS as u64);
            assert!(
                !plan.faults.is_empty(),
                "{label}: seeded plan unexpectedly empty"
            );
            let report = run_chaos(&label, chaos_config(plan), p);
            assert_accounted(&label, &report, &expect, preserves);
        }
    }
}
