//! Channel message types: worker inputs, worker events, source control.

use bytes::Bytes;
use streambal_core::{IntervalStats, Key, RoutingView, TaskId};

use crate::tuple::Tuple;

/// Messages flowing into a worker's input channel. Tuple batches and
/// control markers share the channel, so FIFO ordering *is* the migration
/// consistency argument (see crate docs): a batch enqueued before a
/// `MigrateOut`/`StateInstall`/`Shutdown` marker is processed — whole —
/// before it, exactly as the per-tuple protocol guaranteed per tuple.
#[derive(Debug)]
pub enum Message {
    /// A single data tuple — the seed's per-tuple data plane, kept for
    /// benchmarking against ([`crate::EngineConfig::per_tuple`]) and for
    /// tests. The batched hot path never sends it.
    Tuple(Tuple),
    /// A batch of data tuples: one channel operation covers the whole
    /// vector. The buffer is pooled — after draining it, the worker
    /// returns it (cleared, capacity intact) to the source through the
    /// engine's recycle channel, so the steady state allocates nothing.
    TupleBatch(Vec<Tuple>),
    /// Interval boundary: report statistics, advance the window. Also
    /// the flight recorder's flush point: the worker rolls its local
    /// batch counters into one `DataFlush` trace event here — FIFO
    /// guarantees every tuple the source fed for the closing interval
    /// was drained before this marker, so the counts are deterministic
    /// per seeded feed.
    StatsRequest {
        /// The interval being closed.
        interval: u64,
    },
    /// Step 5a of Fig. 5: extract and ship state for the listed keys.
    MigrateOut {
        /// Migration epoch (one rebalance = one epoch).
        epoch: u64,
        /// `(key, destination)` pairs whose state must leave this worker.
        moves: Vec<(Key, TaskId)>,
    },
    /// Step 5b: install state arriving from peers.
    StateInstall {
        /// Migration epoch.
        epoch: u64,
        /// `(key, serialized state)` pairs.
        states: Vec<(Key, Bytes)>,
    },
    /// Scale-in: drain the backlog already in the channel (FIFO puts this
    /// marker behind it), extract *all* remaining key state, report it
    /// with [`WorkerEvent::Retired`] — channel receiver included, so the
    /// slot can be re-provisioned later — and exit.
    Retire {
        /// The scale-in epoch (same counter as migration epochs).
        epoch: u64,
    },
    /// Drain final state and exit.
    Shutdown,
}

/// Events workers send the controller (unbounded channel — workers never
/// block on the controller, which rules out protocol deadlocks).
#[derive(Debug)]
pub enum WorkerEvent {
    /// Response to [`Message::StatsRequest`].
    Stats {
        /// Reporting worker.
        worker: TaskId,
        /// Closed interval.
        interval: u64,
        /// Statistics collected since the previous request.
        stats: IntervalStats,
        /// End-to-end tuple latency distribution of the closed interval
        /// (µs) — the controller merges the per-worker histograms into
        /// the interval's mean/p99 observation for elasticity policies.
        latency: Box<streambal_metrics::Histogram>,
    },
    /// Response to [`Message::MigrateOut`]: extracted states (step 6a).
    StateOut {
        /// Source worker.
        worker: TaskId,
        /// Migration epoch.
        epoch: u64,
        /// `(key, destination, state)` triples.
        states: Vec<(Key, TaskId, Bytes)>,
    },
    /// Response to [`Message::StateInstall`] (step 6b ack).
    InstallAck {
        /// Installing worker.
        worker: TaskId,
        /// Migration epoch.
        epoch: u64,
    },
    /// Response to [`Message::Retire`]: everything the controller needs
    /// to re-home the victim's state and later reuse its slot.
    Retired {
        /// The retiring worker.
        worker: TaskId,
        /// Scale-in epoch.
        epoch: u64,
        /// All `(key, state)` pairs the worker still held — the whole
        /// windowed state, not just last-interval keys.
        states: Vec<(Key, Bytes)>,
        /// Statistics accumulated since the victim's last stats report —
        /// the controller folds them into the open round so retirement
        /// never makes load observations under-count (a dropped share
        /// reads as a load drop and can re-trigger the scale-in policy).
        stats: IntervalStats,
        /// Tuples processed over the worker's lifetime.
        processed: u64,
        /// Lifetime latency distribution (µs).
        latency: Box<streambal_metrics::Histogram>,
        /// The interval this worker processed its first tuple in, if it
        /// processed any (time-to-first-tuple instrumentation for
        /// scale-out pre-placement).
        first_interval: Option<u64>,
        /// The worker's channel receiver, handed back so the slot's
        /// channel stays connected (messages can never be silently
        /// dropped) and a later scale-out can respawn on the same slot.
        rx: crossbeam::channel::Receiver<Message>,
    },
    /// A controlled worker death fired by the fault-injection layer
    /// (standing in for a crashed process). Carries everything the
    /// recovery path needs to *account* the loss: the tuples whose
    /// contribution was not yet observable downstream die here.
    Killed {
        /// The dead worker.
        worker: TaskId,
        /// Per-key tuple counts irrecoverably lost with this worker
        /// (held windowed state / un-flushed partials, plus any
        /// emissions still buffered in the worker).
        lost: Vec<(Key, u64)>,
        /// Statistics accumulated since the last stats report — folded
        /// into the open round so the death does not read as a load
        /// drop to the elasticity policy.
        stats: IntervalStats,
        /// Tuples processed over the worker's lifetime.
        processed: u64,
        /// Lifetime latency distribution (µs).
        latency: Box<streambal_metrics::Histogram>,
        /// The interval this worker processed its first tuple in, if
        /// any.
        first_interval: Option<u64>,
        /// The worker's channel receiver. A real dead process's inbound
        /// queue is reclaimed by the OS; here the controller drains it
        /// to count in-flight tuples as lost, then drops it so later
        /// sends fail fast (the disconnect-detection path).
        rx: crossbeam::channel::Receiver<Message>,
    },
    /// Response to [`Message::Shutdown`]: final state for validation.
    Drained {
        /// Exiting worker.
        worker: TaskId,
        /// All remaining `(key, state)` pairs.
        final_states: Vec<(Key, Bytes)>,
        /// Tuples this worker processed over its lifetime.
        processed: u64,
        /// This worker's end-to-end tuple latency distribution (µs).
        latency: Box<streambal_metrics::Histogram>,
        /// The interval this worker processed its first tuple in, if any
        /// (time-to-first-tuple instrumentation for scale-out
        /// pre-placement).
        first_interval: Option<u64>,
    },
}

/// Control messages from the controller to the source ("tuples router").
#[derive(Debug)]
pub enum SourceCtl {
    /// Step 4 of Fig. 5: stop sending (and locally buffer) the affected
    /// keys; acknowledge via [`SourceEvent::PauseAck`].
    Pause {
        /// Migration epoch.
        epoch: u64,
        /// Keys in `Δ(F, F′)`.
        affected: Vec<Key>,
    },
    /// Scale-in analogue of `Pause`: stop sending to (and locally buffer
    /// tuples routed to) one destination — the worker about to retire.
    /// The ack carries the same guarantee as a key-set pause: it is sent
    /// only between routed batches, so every tuple the source will ever
    /// send the victim is already in its channel when the controller
    /// reads the ack, and the `Retire` marker it then enqueues lands
    /// behind all of them.
    PauseDest {
        /// Scale-in epoch.
        epoch: u64,
        /// The destination to quiesce.
        dest: TaskId,
    },
    /// Step 7: switch to the new routing view and flush buffered tuples.
    Resume {
        /// Migration epoch.
        epoch: u64,
        /// The new routing function `F′`.
        view: RoutingView,
    },
    /// Routing view changed without migration (e.g. hash-only scale-out).
    UpdateView {
        /// The new routing function.
        view: RoutingView,
    },
    /// A worker died: stop sending to `dest`, apply the re-pin `moves`
    /// to the local router (empty for strategies without a routing
    /// table), and divert any key that still routes to a dead slot to
    /// the next live slot. Acknowledge via [`SourceEvent::DeadDestAck`]
    /// — sent only between routed batches, so when the controller reads
    /// the ack every tuple the source will ever send the dead slot is
    /// already in its channel and can be drained for loss accounting.
    DeadDest {
        /// The dead destination.
        dest: TaskId,
        /// Key moves pinning the dead slot's routed keys to survivors
        /// (applied via the router's incremental delta path).
        moves: Vec<(Key, TaskId)>,
    },
    /// A dead slot was re-provisioned by a scale-out: swap in the fresh
    /// channel sender and stop diverting traffic away from it.
    ReviveDest {
        /// The revived destination.
        dest: TaskId,
        /// Sender for the slot's new channel.
        tx: crossbeam::channel::Sender<crate::message::Message>,
    },
    /// Exit the source loop.
    Shutdown,
}

/// Events the source sends the controller.
#[derive(Debug)]
pub enum SourceEvent {
    /// All tuples of `interval` have been enqueued downstream.
    IntervalDone {
        /// The finished interval.
        interval: u64,
    },
    /// Acknowledges [`SourceCtl::Pause`]: no further affected-key tuples
    /// are in flight beyond what is already enqueued.
    PauseAck {
        /// Migration epoch.
        epoch: u64,
    },
    /// Acknowledges [`SourceCtl::Resume`]: every tuple buffered during the
    /// pause has been enqueued downstream. The controller must not ship
    /// worker `Shutdown` with a resume outstanding — the shutdown marker
    /// would overtake the flushed tuples in the worker channels and the
    /// workers would drain without processing them.
    ResumeAck {
        /// Migration epoch.
        epoch: u64,
    },
    /// Acknowledges [`SourceCtl::DeadDest`]: the dead slot will receive
    /// no further tuples from the source.
    DeadDestAck {
        /// The quiesced dead destination.
        dest: TaskId,
    },
    /// A data-plane send failed (receiver gone) for a destination the
    /// source did not yet know was dead — the detection path for
    /// non-injected deaths. The tuples were diverted, not lost.
    SendFailed {
        /// The destination whose channel is disconnected.
        dest: TaskId,
    },
    /// The feeder is exhausted; no more tuples will ever be emitted.
    Finished,
}
