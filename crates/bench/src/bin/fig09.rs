//! Regenerates the paper's Fig. 9 (see EXPERIMENTS.md): prints the text
//! tables and writes `bench_results/fig09.json`.
fn main() {
    let scale = streambal_bench::Scale::from_env();
    streambal_bench::figure::emit(&streambal_bench::figs_sim::fig09(scale), scale);
}
