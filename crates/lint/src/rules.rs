//! The lint rules, as passes over the token stream of one file (L001,
//! L002, L003, L004, L006) or over the committed result JSONs (L005).

use std::path::Path;

use streambal_bench::direction::{direction_of, flatten_metrics, Direction};
use streambal_bench::json::Json;

use crate::lexer::{lex, Tok, TokKind};
use crate::Violation;

/// Which rules apply to a file — derived from its workspace-relative
/// path by [`crate::walk::classify`], or constructed directly in tests.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// L001 applies: library code of the protocol crates
    /// (`crates/runtime/src`, `crates/core/src`).
    pub panic_scope: bool,
    /// L004 applies: the runtime data plane (`crates/runtime/src`).
    pub data_plane: bool,
    /// L003 exempt: the whitelisted resync file or a test context.
    pub swap_allowed: bool,
}

/// Per-token flags derived from `#[...]` attributes.
struct Marks {
    /// Inside an item gated by an attribute mentioning `test`
    /// (`#[cfg(test)]`, `#[test]`, …).
    in_test: Vec<bool>,
    /// Inside an item gated by an attribute mentioning `target_arch`.
    arch: Vec<bool>,
}

/// An active `// lint: allow(rule, reason = "...")` annotation. It
/// covers the statement that follows: suppression starts at the
/// annotation and ends at the first `;` at the depth of the first
/// covered code token, or when the enclosing block closes.
struct Allow {
    rule: &'static str,
    /// Brace depth at the first covered code token; `None` while the
    /// annotation is still waiting for code.
    d0: Option<i32>,
}

/// Runs all source rules over one file.
pub fn scan_source(file: &str, src: &str, class: &FileClass) -> Vec<Violation> {
    let toks = lex(src);
    let marks = mark_attr_spans(&toks);
    let lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    let mut depth: i32 = 0;
    let mut allows: Vec<Allow> = Vec::new();

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Comment {
            match parse_allow(&t.text) {
                AllowParse::None => {}
                AllowParse::Ok(rule) => allows.push(Allow { rule, d0: None }),
                AllowParse::Malformed(why) => out.push(Violation {
                    file: file.to_string(),
                    line: t.line,
                    rule: "L000",
                    msg: why,
                }),
            }
            continue;
        }
        // Pending annotations attach to the first code token they see.
        for a in &mut allows {
            if a.d0.is_none() {
                a.d0 = Some(depth);
            }
        }

        if t.kind == TokKind::Ident {
            let name = t.text.as_str();

            // L001: panics in protocol-crate library code.
            if class.panic_scope && !marks.in_test[i] {
                let method = (name == "unwrap" || name == "expect")
                    && prev_is(&toks, i, '.')
                    && next_is(&toks, i, '(');
                let mac = (name == "panic" || name == "unreachable") && next_is(&toks, i, '!');
                if (method || mac) && !allowed(&allows, "panic") {
                    out.push(Violation {
                        file: file.to_string(),
                        line: t.line,
                        rule: "L001",
                        msg: format!(
                            "`{name}` in protocol-crate library code — degrade into an \
                             EngineReport error, or annotate `lint: allow(panic, \
                             reason = ...)` with the invariant that makes it unreachable"
                        ),
                    });
                }
            }

            // L002: unsafe without a SAFETY comment.
            if name == "unsafe" && !has_safety_comment(&lines, t.line) {
                out.push(Violation {
                    file: file.to_string(),
                    line: t.line,
                    rule: "L002",
                    msg: "`unsafe` without a `// SAFETY:` comment immediately above".to_string(),
                });
            }

            // L003: swap_table outside the whitelisted resync path.
            if name == "swap_table"
                && next_is(&toks, i, '(')
                && !class.swap_allowed
                && !marks.in_test[i]
            {
                out.push(Violation {
                    file: file.to_string(),
                    line: t.line,
                    rule: "L003",
                    msg: "`swap_table` call outside the whitelisted resync path \
                          (crates/core/src/routing.rs) — full rebuilds are O(table) \
                          and must stay confined to the documented sites"
                        .to_string(),
                });
            }

            // L004: plain sends of TupleBatch on the data plane.
            if class.data_plane
                && !marks.in_test[i]
                && (name == "send" || name == "try_send")
                && prev_is(&toks, i, '.')
            {
                if let Some(open) =
                    next_code(&toks, i).filter(|&n| toks[n].kind == TokKind::Punct('('))
                {
                    let close = matching(&toks, open, '(', ')');
                    let batch = toks[open + 1..close]
                        .iter()
                        .any(|t| t.kind == TokKind::Ident && t.text == "TupleBatch");
                    if batch && !allowed(&allows, "send") {
                        out.push(Violation {
                            file: file.to_string(),
                            line: t.line,
                            rule: "L004",
                            msg: format!(
                                "plain `.{name}(` of a TupleBatch — a batch of N tuples \
                                 must be capacity-accounted as N (`send_weighted`), or \
                                 the channel bound silently deflates"
                            ),
                        });
                    }
                }
            }

            // L007: per-tuple trace recording on the data plane. The
            // flight recorder's hot-path contract is batch granularity
            // only (`count_batch` two counter adds, `close_interval`
            // once per interval); a `.record(` call on a trace-ish
            // receiver in runtime code reintroduces the per-tuple event
            // cost the recorder was designed to avoid. The fault
            // injector's ledger `record` is a control-plane call on a
            // non-trace receiver and is not matched.
            if class.data_plane
                && !marks.in_test[i]
                && name == "record"
                && prev_is(&toks, i, '.')
                && next_is(&toks, i, '(')
            {
                let receiver = toks[..i]
                    .iter()
                    .rev()
                    .filter(|t| t.kind != TokKind::Comment)
                    .nth(1);
                let traceish = receiver.is_some_and(|t| {
                    t.kind == TokKind::Ident && {
                        let r = t.text.to_ascii_lowercase();
                        r.contains("trace") || r.contains("record")
                    }
                });
                if traceish && !allowed(&allows, "trace") {
                    out.push(Violation {
                        file: file.to_string(),
                        line: t.line,
                        rule: "L007",
                        msg: "per-event `.record(` on a trace recorder in data-plane \
                              code — the hot path records at batch granularity only \
                              (`count_batch` / `close_interval`); move the event to \
                              the control plane or annotate `lint: allow(trace, \
                              reason = ...)` with why this site is not per-tuple"
                            .to_string(),
                    });
                }
            }

            // L006: x86 intrinsics outside a cfg(target_arch) gate.
            if name.len() >= 4 && name[..4].eq_ignore_ascii_case("_mm_") && !marks.arch[i] {
                out.push(Violation {
                    file: file.to_string(),
                    line: t.line,
                    rule: "L006",
                    msg: format!(
                        "x86 intrinsic `{name}` outside a `#[cfg(target_arch = ...)]` \
                         gate — this breaks the build on every other architecture"
                    ),
                });
            }
        }

        // Depth bookkeeping and annotation expiry.
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                allows.retain(|a| a.d0.is_none_or(|d| depth >= d));
            }
            TokKind::Punct(';') => {
                allows.retain(|a| a.d0.is_none_or(|d| d != depth));
            }
            _ => {}
        }
    }
    out
}

fn allowed(allows: &[Allow], rule: &str) -> bool {
    allows.iter().any(|a| a.rule == rule)
}

/// What a comment token says about lint suppression.
enum AllowParse {
    /// Not an annotation.
    None,
    /// A well-formed annotation for the named rule.
    Ok(&'static str),
    /// Looks like an annotation but violates the grammar.
    Malformed(String),
}

fn parse_allow(comment: &str) -> AllowParse {
    // The annotation must start its line comment (`// lint: allow(...)`).
    // A doc comment *mentioning* the grammar (`/// ... \`lint: allow\``)
    // never registers, because the leading-slash strip leaves it starting
    // with backticks or prose.
    let body = comment.trim_start_matches('/').trim_start();
    let Some(rest) = body.strip_prefix("lint: allow(") else {
        return AllowParse::None;
    };
    let name_end = rest.find([',', ')']).unwrap_or(rest.len());
    let name = rest[..name_end].trim();
    let rule: &'static str = match name {
        "panic" => "panic",
        "send" => "send",
        "trace" => "trace",
        other => {
            return AllowParse::Malformed(format!(
                "unknown lint allow rule `{other}` (known: panic, send, trace)"
            ))
        }
    };
    if !rest.contains("reason") {
        return AllowParse::Malformed(format!(
            "lint allow({rule}) without a reason — write `reason = \"...\"` on the \
             first annotation line"
        ));
    }
    AllowParse::Ok(rule)
}

/// True when the contiguous run of comment/attribute lines directly
/// above `line` (1-based) contains a `SAFETY:` marker.
fn has_safety_comment(lines: &[&str], line: u32) -> bool {
    let mut j = line as usize - 1; // 0-based index of the `unsafe` line
    while j > 0 {
        let s = lines[j - 1].trim_start();
        if s.starts_with("//") || s.starts_with("#[") || s.starts_with("#![") {
            if s.contains("SAFETY:") {
                return true;
            }
            j -= 1;
        } else {
            break;
        }
    }
    false
}

/// Index of the next non-comment token after `i`.
fn next_code(toks: &[Tok], i: usize) -> Option<usize> {
    toks[i + 1..]
        .iter()
        .position(|t| t.kind != TokKind::Comment)
        .map(|off| i + 1 + off)
}

fn next_is(toks: &[Tok], i: usize, p: char) -> bool {
    next_code(toks, i).is_some_and(|n| toks[n].kind == TokKind::Punct(p))
}

fn prev_is(toks: &[Tok], i: usize, p: char) -> bool {
    toks[..i]
        .iter()
        .rev()
        .find(|t| t.kind != TokKind::Comment)
        .is_some_and(|t| t.kind == TokKind::Punct(p))
}

/// Index of the `close` punct matching the `open` punct at `open_idx`
/// (which must be an `open`); saturates at the last token on
/// unbalanced input.
fn matching(toks: &[Tok], open_idx: usize, open: char, close: char) -> usize {
    let mut d = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.kind == TokKind::Punct(open) {
            d += 1;
        } else if t.kind == TokKind::Punct(close) {
            d -= 1;
            if d == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Computes per-token `in_test` / `arch` flags: for every outer
/// attribute whose idents mention `test` (and not `not`) or
/// `target_arch`, the attribute and the item it attaches to — up to the
/// matching `}` of its first body brace, or its terminating `;` — are
/// flagged.
fn mark_attr_spans(toks: &[Tok]) -> Marks {
    let n = toks.len();
    let mut in_test = vec![false; n];
    let mut arch = vec![false; n];
    let mut i = 0usize;
    while i < n {
        if toks[i].kind != TokKind::Punct('#') {
            i += 1;
            continue;
        }
        // `#![...]` inner attributes configure the enclosing scope; they
        // are skipped without marking (none of the gated forms are used
        // as inner attributes in this workspace).
        let (bracket, outer) = match toks.get(i + 1).map(|t| t.kind) {
            Some(TokKind::Punct('[')) => (i + 1, true),
            Some(TokKind::Punct('!'))
                if toks.get(i + 2).map(|t| t.kind) == Some(TokKind::Punct('[')) =>
            {
                (i + 2, false)
            }
            _ => {
                i += 1;
                continue;
            }
        };
        let close = matching(toks, bracket, '[', ']');
        if outer {
            let mut has_test = false;
            let mut has_not = false;
            let mut has_arch = false;
            for t in &toks[bracket + 1..close] {
                if t.kind == TokKind::Ident {
                    match t.text.as_str() {
                        "test" => has_test = true,
                        "not" => has_not = true,
                        "target_arch" => has_arch = true,
                        _ => {}
                    }
                }
            }
            let is_test = has_test && !has_not;
            if is_test || has_arch {
                // Skip any stacked attributes between this one and the item.
                let mut j = close + 1;
                while j < n
                    && toks[j].kind == TokKind::Punct('#')
                    && toks.get(j + 1).map(|t| t.kind) == Some(TokKind::Punct('['))
                {
                    j = matching(toks, j + 1, '[', ']') + 1;
                }
                // Find the item's end: first body `{` (matched to its
                // close) or terminating `;`, skipping bracketed groups.
                let mut k = j;
                let end = loop {
                    if k >= n {
                        break n - 1;
                    }
                    match toks[k].kind {
                        TokKind::Punct('{') => break matching(toks, k, '{', '}'),
                        TokKind::Punct(';') => break k,
                        TokKind::Punct('(') => k = matching(toks, k, '(', ')') + 1,
                        TokKind::Punct('[') => k = matching(toks, k, '[', ']') + 1,
                        _ => k += 1,
                    }
                };
                for m in i..=end.min(n - 1) {
                    if is_test {
                        in_test[m] = true;
                    }
                    if has_arch {
                        arch[m] = true;
                    }
                }
            }
        }
        i = close + 1;
    }
    Marks { in_test, arch }
}

/// L005: every numeric key in every `*.json` under `dir` must classify
/// in the metric-direction table. Returns the violations and the number
/// of keys checked.
pub fn lint_bench_results(dir: &Path) -> (Vec<Violation>, usize) {
    let mut out = Vec::new();
    let mut checked = 0usize;
    let display = dir.display().to_string();
    let Ok(rd) = std::fs::read_dir(dir) else {
        out.push(Violation {
            file: display,
            line: 0,
            rule: "L005",
            msg: "bench_results directory missing or unreadable".to_string(),
        });
        return (out, 0);
    };
    let mut paths: Vec<_> = rd.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let file = path.display().to_string();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let Ok(text) = std::fs::read_to_string(&path) else {
            out.push(Violation {
                file,
                line: 0,
                rule: "L005",
                msg: "unreadable result file".to_string(),
            });
            continue;
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                out.push(Violation {
                    file,
                    line: 0,
                    rule: "L005",
                    msg: format!("unparseable result file: {e}"),
                });
                continue;
            }
        };
        for key in flatten_metrics(&doc).keys() {
            checked += 1;
            if direction_of(&format!("{name} :: {key}")) == Direction::Unknown {
                out.push(Violation {
                    file: file.clone(),
                    line: 0,
                    rule: "L005",
                    msg: format!(
                        "metric key `{key}` has no direction — add a pattern to \
                         crates/bench/src/direction.rs (or a NEUTRAL_PATTERNS entry \
                         if it is a configuration echo)"
                    ),
                });
            }
        }
    }
    (out, checked)
}
