//! Elasticity bench: θ-driven scale-out/scale-in against static
//! provisioning on a variance-heavy workload.
//!
//! The workload is the adversarial key-churn generator with a volume
//! burst: quiet intervals, a 4× burst, then a quiet tail — fresh hot keys
//! every interval, so neither the routing table nor the statistics
//! window can "learn" the burst away; only parallelism can absorb it.
//! Four deployments process byte-identical tuple sequences:
//!
//! * `static/w4` — 4 workers for the whole run (under-provisioned at the
//!   burst);
//! * `static/w8` — 8 workers for the whole run (provisioned for the
//!   peak, idle-ish otherwise);
//! * `threshold/4..8` — the hysteresis watermark policy, expected to
//!   re-provision 4→8 across the burst and retire back 8→4 after it;
//! * `planner/4..8` — the EWMA target planner on the same bounds.
//!
//! Reported per deployment: end-to-end and peak-interval throughput,
//! migration volume (rebalance keys/bytes *plus* scale-in retire volume),
//! worker-seconds (the provisioning cost), and the parallelism
//! trajectory. The acceptance numbers: the threshold policy's peak
//! throughput within 10% of `static/w8` while spending fewer
//! worker-seconds.
//!
//! A second scenario measures the **cold scale-out lag**: time-to-first-
//! tuple on a scaled-out slot with state pre-placement (the default)
//! against the seed behaviour (churn pinned away, the slot idling until
//! the next rebalance) — acceptance: ≤ 1 interval vs. ≥ the damped
//! trigger's full rebalance period.
//!
//! Results print as a table and land in `bench_results/elastic.json`
//! (`--test` smoke runs shrink the workload and write
//! `elastic.smoke.json` so noisy numbers never clobber the committed
//! trajectory).

use streambal_baselines::CoreBalancer;
use streambal_bench::json::{write_json, Json};
use streambal_core::{BalanceParams, Key, RebalanceStrategy, TriggerPolicy};
use streambal_elastic::{
    ElasticityPolicy, FixedSchedule, HoldPolicy, TargetPlanner, ThresholdPolicy,
};
use streambal_runtime::{Engine, EngineConfig, EngineReport, Tuple, WordCountOp};
use streambal_workloads::ChurnWorkload;

const SEED: u64 = 4242;
const SPIN: u32 = 500;
/// Volume multipliers per interval: quiet, 4× burst, quiet tail.
const SCHEDULE: [f64; 14] = [
    1.0, 1.0, 1.0, 4.0, 4.0, 4.0, 4.0, 4.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0,
];
const MIN_W: usize = 4;
const MAX_W: usize = 8;

/// One measured deployment.
struct Shape {
    label: &'static str,
    n_workers: usize,
    max_workers: usize,
    policy: Box<dyn ElasticityPolicy>,
}

/// Per-task capacity (cost units per interval) the policies plan
/// against: sized so `MIN_W` workers absorb the quiet load with headroom
/// and the burst overloads anything below `MAX_W`.
fn capacity(quiet_tuples: u64) -> f64 {
    0.56 * quiet_tuples as f64 * (SPIN + 1) as f64
}

fn shapes(quiet_tuples: u64) -> Vec<Shape> {
    let cap = capacity(quiet_tuples);
    let mut threshold = ThresholdPolicy::new(cap, MIN_W, MAX_W);
    threshold.up_after = 1;
    threshold.down_after = 1;
    threshold.cooldown = 0;
    let mut planner = TargetPlanner::new(cap, MIN_W, MAX_W);
    planner.alpha = 0.6;
    planner.target_util = 0.75;
    vec![
        Shape {
            label: "static/w4",
            n_workers: MIN_W,
            max_workers: MIN_W,
            policy: Box::new(HoldPolicy),
        },
        Shape {
            label: "static/w8",
            n_workers: MAX_W,
            max_workers: MAX_W,
            policy: Box::new(HoldPolicy),
        },
        Shape {
            label: "threshold/4..8",
            n_workers: MIN_W,
            max_workers: MAX_W,
            policy: Box::new(threshold),
        },
        Shape {
            label: "planner/4..8",
            n_workers: MIN_W,
            max_workers: MAX_W,
            policy: Box::new(planner),
        },
    ]
}

/// Pre-generates the churn-burst tuple sequences, identical across
/// deployments.
fn make_intervals(quiet_tuples: u64, n_intervals: usize) -> Vec<Vec<Key>> {
    let mut w = ChurnWorkload::new(20_000, quiet_tuples, 64, 0.5, SEED)
        .with_volume_schedule(SCHEDULE.to_vec());
    let mut out = Vec::with_capacity(n_intervals);
    for i in 0..n_intervals {
        if i > 0 {
            w.advance();
        }
        out.push(w.tuples());
    }
    out
}

fn run_once(shape: &Shape, intervals: &[Vec<Key>]) -> EngineReport {
    let feed: Vec<Vec<Key>> = intervals.to_vec();
    let config = EngineConfig {
        n_workers: shape.n_workers,
        max_workers: shape.max_workers,
        spin_work: SPIN,
        window: 3,
        elasticity: shape.policy.clone(),
        ..EngineConfig::default()
    };
    let report = Engine::run(
        config,
        Box::new(CoreBalancer::new(
            shape.n_workers,
            3,
            RebalanceStrategy::Mixed,
            BalanceParams {
                theta_max: 0.2,
                ..BalanceParams::default()
            },
        )),
        |_| Box::new(WordCountOp::new()),
        move |iv| {
            feed.get(iv as usize)
                .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
        },
        None,
    );
    let total: u64 = intervals.iter().map(|v| v.len() as u64).sum();
    assert_eq!(report.processed, total, "{}: tuples lost", shape.label);
    report
}

fn peak_interval_throughput(r: &EngineReport) -> f64 {
    r.interval_throughput
        .points()
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0, f64::max)
}

/// The cold scale-out scenario: time-to-first-tuple on the scaled-out
/// slot, pre-placement vs. the seed behaviour.
///
/// A uniform workload keeps the rebalancer quiet until a fixed-schedule
/// scale-out at `DECISION`; the trigger demands
/// `REBALANCE_PERIOD` consecutive violating rounds (a damped production
/// trigger), so the post-scale-out imbalance the *seed* shape leaves
/// behind — four loaded workers, one empty slot — takes a full rebalance
/// period to repair, and the new worker idles for exactly that long.
/// Pre-placement migrates the churned keys' state inside the scale-out
/// quiescence window instead, so the slot's first tuple lands in the
/// decision interval itself.
fn preplacement_scenario(tuples_per_interval: u64) -> Json {
    const DECISION: u64 = 3;
    const REBALANCE_PERIOD: usize = 3; // trigger `consecutive`
    /// Heavier per-tuple cost than the policy scenarios: the interval
    /// must dwarf scheduler quanta on a small box, or the measured lag
    /// is the OS's, not the placement protocol's.
    const SPIN_PRE: u32 = 2_500;
    let n_intervals = 12usize;
    let intervals: Vec<Vec<Key>> = (0..n_intervals)
        .map(|_| (0..tuples_per_interval).map(|i| Key(i % 600)).collect())
        .collect();
    let total: u64 = intervals.iter().map(|v| v.len() as u64).sum();

    let mut rows: Vec<Json> = Vec::new();
    let mut ttft: Vec<(String, i64)> = Vec::new();
    for (label, preplace) in [("preplace/on", true), ("preplace/off", false)] {
        let feed = intervals.clone();
        let config = EngineConfig {
            n_workers: MIN_W,
            max_workers: MIN_W + 1,
            spin_work: SPIN_PRE,
            window: 3,
            // Small channels keep the source within a fraction of an
            // interval of the workers, so statistics rounds track real
            // interval boundaries and the measured lag is the protocol's,
            // not the backlog's.
            channel_capacity: 64,
            batch_size: 32,
            elasticity: Box::new(FixedSchedule::scale_out_at(DECISION)),
            preplace,
            ..EngineConfig::default()
        };
        let report = Engine::run(
            config,
            Box::new(
                CoreBalancer::new(
                    MIN_W,
                    3,
                    RebalanceStrategy::Mixed,
                    BalanceParams {
                        theta_max: 0.2,
                        ..BalanceParams::default()
                    },
                )
                .with_trigger_policy(TriggerPolicy {
                    cooldown: 0,
                    consecutive: REBALANCE_PERIOD,
                }),
            ),
            |_| Box::new(WordCountOp::new()),
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            None,
        );
        assert_eq!(report.processed, total, "{label}: tuples lost");
        // Intervals from the decision to the slot's first tuple; a slot
        // never fed scores the whole remaining run (worst case).
        let lag = report.first_tuple_interval[MIN_W]
            .map_or(n_intervals as i64 - DECISION as i64, |f| {
                f as i64 - DECISION as i64
            });
        println!(
            "  {:<16} time-to-first-tuple {:>2} intervals  new-slot tuples {:>8}  rebalances {}  mig {:>6} keys",
            label,
            lag,
            report.per_worker_processed[MIN_W],
            report.rebalances,
            report.migrated_keys,
        );
        ttft.push((label.to_string(), lag));
        rows.push(Json::obj([
            ("id", Json::str(label)),
            ("time_to_first_tuple_intervals", Json::Num(lag as f64)),
            (
                "new_worker_tuples",
                Json::Int(report.per_worker_processed[MIN_W]),
            ),
            ("rebalances", Json::Int(report.rebalances as u64)),
            ("migrated_keys", Json::Int(report.migrated_keys)),
            ("mean_tuples_per_sec", Json::Num(report.mean_throughput)),
        ]));
    }
    let find = |label: &str| ttft.iter().find(|(l, _)| l == label).unwrap().1;
    let (on, off) = (find("preplace/on"), find("preplace/off"));
    println!(
        "preplacement: ttft {} vs seed {} intervals (acceptance: ≤ 1 vs ≥ rebalance period {})",
        on, off, REBALANCE_PERIOD
    );
    Json::obj([
        (
            "scenario",
            Json::str("uniform keys, fixed scale-out, damped rebalance trigger"),
        ),
        ("decision_interval", Json::Int(DECISION)),
        (
            "rebalance_period_intervals",
            Json::Int(REBALANCE_PERIOD as u64),
        ),
        ("tuples_per_interval", Json::Int(tuples_per_interval)),
        ("results", Json::Arr(rows)),
        ("ttft_preplace_intervals", Json::Num(on as f64)),
        ("ttft_seed_intervals", Json::Num(off as f64)),
    ])
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (quiet_tuples, n_intervals, reps) = if smoke {
        (2_000, SCHEDULE.len(), 1)
    } else {
        (15_000, SCHEDULE.len(), 3)
    };
    let intervals = make_intervals(quiet_tuples, n_intervals);
    let total: u64 = intervals.iter().map(|v| v.len() as u64).sum();
    println!(
        "elastic: churn burst {:?}, {} tuples/run, spin {SPIN}, capacity {:.0}, {} reps",
        SCHEDULE,
        total,
        capacity(quiet_tuples),
        reps
    );

    let mut rows: Vec<Json> = Vec::new();
    let mut best: Vec<(String, f64, f64, f64)> = Vec::new(); // label, peak, mean, worker-s
    for shape in shapes(quiet_tuples) {
        let _ = run_once(&shape, &intervals); // warm-up (page-in parity)
        let runs: Vec<EngineReport> = (0..reps).map(|_| run_once(&shape, &intervals)).collect();
        // Best-of-reps on throughput; worker-seconds from the same run so
        // the pair is self-consistent.
        let bi = (0..runs.len())
            .max_by(|&a, &b| runs[a].mean_throughput.total_cmp(&runs[b].mean_throughput))
            .unwrap();
        let r = &runs[bi];
        let peak = peak_interval_throughput(r);
        let trajectory: Vec<Json> = r
            .scale_events
            .iter()
            .map(|e| {
                Json::obj([
                    ("interval", Json::Int(e.interval)),
                    ("from", Json::Int(e.from as u64)),
                    ("to", Json::Int(e.to as u64)),
                ])
            })
            .collect();
        println!(
            "  {:<16} mean {:>9.0} t/s  peak {:>9.0} t/s  {:>6.2} worker-s  mig {:>6} keys  {} scale events",
            shape.label,
            r.mean_throughput,
            peak,
            r.worker_seconds,
            r.migrated_keys,
            r.scale_events.len(),
        );
        best.push((
            shape.label.to_string(),
            peak,
            r.mean_throughput,
            r.worker_seconds,
        ));
        rows.push(Json::obj([
            ("id", Json::str(shape.label)),
            ("workers_min", Json::Int(shape.n_workers as u64)),
            ("workers_max", Json::Int(shape.max_workers as u64)),
            ("mean_tuples_per_sec", Json::Num(r.mean_throughput)),
            ("peak_interval_tuples_per_sec", Json::Num(peak)),
            ("worker_seconds", Json::Num(r.worker_seconds)),
            ("migrated_keys", Json::Int(r.migrated_keys)),
            ("migrated_bytes", Json::Int(r.migrated_bytes)),
            ("rebalances", Json::Int(r.rebalances as u64)),
            ("scale_events", Json::Arr(trajectory)),
            ("reps", Json::Int(reps as u64)),
        ]));
    }

    let find = |label: &str| best.iter().find(|(l, _, _, _)| l == label).unwrap();
    let (_, peak8, _, ws8) = find("static/w8");
    let (_, peak_thr, _, ws_thr) = find("threshold/4..8");
    let peak_ratio = peak_thr / peak8;
    let ws_ratio = ws_thr / ws8;
    println!(
        "threshold vs static/w8: peak ratio {peak_ratio:.3} (acceptance ≥ 0.9), \
         worker-seconds ratio {ws_ratio:.3} (acceptance < 1.0)"
    );

    // Interval length must dwarf the control-plane round-trip latency
    // (the protocol costs a handful of controller wakeups), or the
    // measured lag is the event loop's, not the placement's.
    println!("\npre-placement (cold scale-out lag):");
    let preplacement = preplacement_scenario(if smoke { 10_000 } else { 50_000 });

    let doc = Json::obj([
        ("bench", Json::str("elastic")),
        ("workload", Json::str("churn-burst")),
        ("quiet_tuples", Json::Int(quiet_tuples)),
        (
            "volume_schedule",
            Json::Arr(SCHEDULE.iter().map(|&v| Json::Num(v)).collect()),
        ),
        ("tuples_per_run", Json::Int(total)),
        ("spin_work", Json::Int(SPIN as u64)),
        ("capacity_per_task", Json::Num(capacity(quiet_tuples))),
        ("smoke", Json::Bool(smoke)),
        ("results", Json::Arr(rows)),
        // Acceptance: the elastic threshold policy keeps burst throughput
        // within 10% of the statically peak-provisioned deployment while
        // paying for fewer worker-seconds overall.
        ("peak_ratio_threshold_vs_static8", Json::Num(peak_ratio)),
        (
            "worker_seconds_ratio_threshold_vs_static8",
            Json::Num(ws_ratio),
        ),
        // The cold scale-out lag: the scaled-out worker's first tuple
        // lands in the decision interval with pre-placement, vs. a full
        // (damped) rebalance period later with the seed behaviour.
        ("preplacement", preplacement),
    ]);
    let path = streambal_bench::figure::results_dir().join(if smoke {
        "elastic.smoke.json"
    } else {
        "elastic.json"
    });
    match write_json(&path, &doc) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
    }
}
