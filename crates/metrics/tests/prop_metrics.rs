//! Property-based tests for the measurement substrate.

use proptest::prelude::*;
use streambal_metrics::{Cdf, Histogram, OnlineStats};

/// Maps a generator triple onto a bucketing test value, biased towards the
/// boundaries the histogram's exact/geometric split makes delicate: the
/// split itself (15/16/17 at `GRADE = 8`), powers of two ± 1, and the top
/// of the domain.
fn bucket_probe_value(sel: usize, raw: u64, exp: u32) -> u64 {
    match sel {
        0 => raw,                             // anywhere in the domain
        1 => 15 + raw % 3,                    // 15, 16, 17
        2 => (1u64 << exp) - 1,               // 2^e − 1
        3 => 1u64 << exp,                     // 2^e
        4 => (1u64 << exp).saturating_add(1), // 2^e + 1
        _ => u64::MAX - raw % 2,              // top of the domain
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `bucket_of` is monotone and `bucket_value` is a true lower bound,
    /// across the exact/geometric boundary (`v ∈ {15, 16, 17}`), powers
    /// of two ± 1, and `u64::MAX`.
    #[test]
    fn histogram_bucket_monotone_and_lower_bound(
        (sel_a, raw_a, exp_a) in (0usize..6, 0u64..=u64::MAX, 1u32..=63),
        (sel_b, raw_b, exp_b) in (0usize..6, 0u64..=u64::MAX, 1u32..=63),
    ) {
        let a = bucket_probe_value(sel_a, raw_a, exp_a);
        let b = bucket_probe_value(sel_b, raw_b, exp_b);
        for v in [a, b] {
            let bucket = Histogram::bucket_of(v);
            let lower = Histogram::bucket_value(bucket);
            prop_assert!(
                lower <= v,
                "bucket_value(bucket_of({v})) = {lower} exceeds the value"
            );
            prop_assert!(bucket < Histogram::BUCKET_COUNT);
            // The lower bound is tight: the next bucket starts above v
            // (the last bucket has no successor to check).
            if bucket + 1 < Histogram::BUCKET_COUNT {
                let next = Histogram::bucket_value(bucket + 1);
                prop_assert!(next > v, "value {v} belongs to bucket {}", bucket + 1);
            }
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            Histogram::bucket_of(lo) <= Histogram::bucket_of(hi),
            "bucket_of not monotone: {lo} → {}, {hi} → {}",
            Histogram::bucket_of(lo),
            Histogram::bucket_of(hi)
        );
    }

    /// Histogram quantiles stay within the recorded range and within the
    /// documented relative error of the exact quantile.
    #[test]
    fn histogram_quantile_bounds(values in proptest::collection::vec(1u64..1_000_000, 1..500), q in 0.0f64..=1.0) {
        let mut h = Histogram::new();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &v in &values {
            h.record(v);
        }
        let got = h.quantile(q);
        prop_assert!(got >= h.min() && got <= h.max());
        // Exact nearest-rank quantile.
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1] as f64;
        let rel = (got as f64 - exact).abs() / exact.max(1.0);
        prop_assert!(rel <= 0.15, "q={q}: got {got}, exact {exact}, rel {rel}");
    }

    /// Histogram merge is equivalent to recording the union.
    #[test]
    fn histogram_merge_union(a in proptest::collection::vec(1u64..100_000, 0..200), b in proptest::collection::vec(1u64..100_000, 0..200)) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hu = Histogram::new();
        for &v in &a { ha.record(v); hu.record(v); }
        for &v in &b { hb.record(v); hu.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.min(), hu.min());
        prop_assert_eq!(ha.max(), hu.max());
        prop_assert!((ha.mean() - hu.mean()).abs() < 1e-9);
        for q in [0.25, 0.5, 0.9, 0.99] {
            prop_assert_eq!(ha.quantile(q), hu.quantile(q));
        }
    }

    /// OnlineStats merge == sequential, for any split point.
    #[test]
    fn online_stats_merge_any_split(values in proptest::collection::vec(-1e6f64..1e6, 1..200), split_at in 0usize..200) {
        let split = split_at.min(values.len());
        let mut whole = OnlineStats::new();
        for &v in &values { whole.add(v); }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &v in &values[..split] { left.add(v); }
        for &v in &values[split..] { right.add(v); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-3);
    }

    /// CDF percentile is monotone in p and brackets the sample range.
    #[test]
    fn cdf_monotone(values in proptest::collection::vec(-1e9f64..1e9, 1..300)) {
        let mut c = Cdf::from_samples(values.clone());
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let p = i as f64 / 10.0;
            let v = c.percentile(p).unwrap();
            prop_assert!(v >= prev);
            prev = v;
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(c.percentile(1.0).unwrap(), max);
        prop_assert!(c.percentile(0.0).unwrap() >= min);
    }
}
