// Fixture: all the shapes L001 must NOT flag.

pub fn annotated(x: Option<u32>) -> u32 {
    // lint: allow(panic, reason = "fixture: invariant documented here,
    // continued on a second comment line")
    x.expect("fixture invariant")
}

pub fn annotated_macro(cond: bool) {
    if !cond {
        // lint: allow(panic, reason = "fixture: tested contract")
        panic!("fixture contract");
    }
}

pub fn not_a_panic(x: Option<u32>) -> u32 {
    x.unwrap_or_default()
}

pub fn lookalikes() {
    // A comment saying unwrap() and panic!() is not code.
    let _s = "x.unwrap(); panic!(\"in a string\")";
    let _r = r#"y.expect("raw")"#;
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(1);
        v.unwrap();
        Some(2u32).expect("tests are exempt");
    }

    #[test]
    #[should_panic]
    fn test_code_may_panic() {
        panic!("exempt");
    }
}
