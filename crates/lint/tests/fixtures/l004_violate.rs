// Fixture: plain sends of a TupleBatch on the data plane.

fn ship(tx: &Sender<Message>, batch: Vec<Tuple>) {
    let _ = tx.send(Message::TupleBatch(batch));
}

fn ship_nb(tx: &Sender<Message>, batch: Vec<Tuple>) {
    let _ = tx.try_send(Message::TupleBatch(batch));
}
