//! Case configuration and the deterministic per-case RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG for one case. Fixed seed schedule: runs are reproducible, and
/// every case draws from an independent stream.
pub fn case_rng(case: u32) -> StdRng {
    StdRng::seed_from_u64(0xC0FF_EE00_5EED_0000 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}
