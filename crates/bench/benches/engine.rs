//! End-to-end engine throughput: the seed per-tuple data plane
//! (`Message::Tuple`, one channel op + one counter increment + one clock
//! read per tuple) against the batched plane (`Message::TupleBatch`,
//! pooled buffers, one channel op / `Counter::add(n)` / clock read per
//! batch).
//!
//! Four measurement groups, all on a hash-routed Zipf word count (no
//! rebalances, so the data plane — not the scheduler — is what moves):
//!
//! 1. **seed vs batched at the paper's default config** — Tab. II skew
//!    (`z = 0.85`) through `EngineConfig::default()` (4 workers, batch
//!    256, spin 500). The tuples/sec ratio is the acceptance number.
//! 2. **batch-size sweep** — 1, 16, 64, 256, 1024 at the default worker
//!    count. Batch 1 ships one-tuple batches through the pooled path and
//!    must not regress against the seed shape.
//! 3. **worker-count sweep** — seed vs batch-256 at 2 and 4 workers.
//! 4. **flight-recorder overhead guard** — the default batched shape
//!    with the trace recorder on vs off, best-of-5 in every mode; the
//!    on/off ratio is committed as `trace_overhead_ratio` and the run
//!    *aborts* below 0.97, so a hot-path recording regression fails CI.
//!
//! Each configuration runs `REPS` times over an identical pre-generated
//! tuple sequence; the mean and best (max) throughput are reported. The
//! results are printed and written to `bench_results/engine.json`
//! (hand-rolled writer, no serde) so future PRs can diff the trajectory.
//! `--test` (as passed by the CI smoke step via `cargo bench --bench
//! engine -- --test`) shrinks the workload and writes to
//! `bench_results/engine.smoke.json` instead, so noisy smoke numbers can
//! never clobber the committed full-run file.

use streambal_baselines::HashPartitioner;
use streambal_bench::json::{write_json, Json};
use streambal_core::Key;
use streambal_runtime::{Engine, EngineConfig, Tuple, WordCountOp};
use streambal_workloads::FluctuatingWorkload;

/// Tab. II defaults (quick scale): key-domain size and skew.
const KEY_DOMAIN: usize = 20_000;
const ZIPF_Z: f64 = 0.85;
const SEED: u64 = 42;

/// One measured configuration.
#[derive(Clone, Copy)]
struct Shape {
    /// `true` = the seed per-tuple data plane.
    per_tuple: bool,
    batch: usize,
    workers: usize,
}

impl Shape {
    fn label(&self) -> String {
        if self.per_tuple {
            format!("seed_per_tuple/w{}", self.workers)
        } else {
            format!("batched/b{}/w{}", self.batch, self.workers)
        }
    }
}

/// Runs one engine pass over `intervals` and returns end-to-end
/// tuples/sec (processed over wall time, setup and drain included).
/// `trace` toggles the flight recorder (the default config leaves it on;
/// the overhead guard below runs both arms).
fn run_once(shape: Shape, intervals: &[Vec<Key>], trace: bool) -> f64 {
    let feed: Vec<Vec<Key>> = intervals.to_vec();
    let config = EngineConfig {
        n_workers: shape.workers,
        max_workers: shape.workers,
        batch_size: shape.batch,
        per_tuple: shape.per_tuple,
        trace,
        ..EngineConfig::default()
    };
    let report = Engine::run(
        config,
        Box::new(HashPartitioner::new(shape.workers)),
        |_| Box::new(WordCountOp::new()),
        move |iv| {
            feed.get(iv as usize)
                .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
        },
        None,
    );
    let total: u64 = intervals.iter().map(|v| v.len() as u64).sum();
    assert_eq!(report.processed, total, "tuples lost in {}", shape.label());
    report.mean_throughput
}

/// Pre-generates identical Zipf interval key sequences for every shape.
fn make_intervals(tuples: u64, n_intervals: usize) -> Vec<Vec<Key>> {
    let mut w = FluctuatingWorkload::new(KEY_DOMAIN, ZIPF_Z, tuples, 0.0, SEED);
    (0..n_intervals).map(|_| w.tuples()).collect()
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

fn max(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(0.0, f64::max)
}

fn main() {
    // `cargo bench --bench engine -- --test` (the CI smoke step) passes
    // `--test`; shrink the workload but keep the JSON emission.
    let smoke = std::env::args().any(|a| a == "--test");
    let (tuples, n_intervals, reps) = if smoke {
        (5_000, 2, 1)
    } else {
        (120_000, 4, 4)
    };
    let intervals = make_intervals(tuples, n_intervals);
    let default_workers = EngineConfig::default().n_workers;

    let mut shapes: Vec<Shape> = Vec::new();
    for workers in [2, default_workers] {
        shapes.push(Shape {
            per_tuple: true,
            batch: 1,
            workers,
        });
    }
    for batch in [1usize, 16, 64, 256, 1024] {
        shapes.push(Shape {
            per_tuple: false,
            batch,
            workers: default_workers,
        });
    }
    shapes.push(Shape {
        per_tuple: false,
        batch: 256,
        workers: 2,
    });

    let mut rows: Vec<Json> = Vec::new();
    let mut best: Vec<(String, f64)> = Vec::new();
    println!(
        "engine throughput: {} tuples/run, {} reps (z={ZIPF_Z}, K={KEY_DOMAIN}, spin={})",
        tuples * n_intervals as u64,
        reps,
        EngineConfig::default().spin_work,
    );
    for shape in &shapes {
        // One untimed warm-up pass (page-in, pool priming parity).
        let _ = run_once(*shape, &intervals, true);
        let runs: Vec<f64> = (0..reps)
            .map(|_| run_once(*shape, &intervals, true))
            .collect();
        let (m, b) = (mean(&runs), max(&runs));
        println!(
            "  {:<24} mean {:>10.0} t/s   best {:>10.0} t/s",
            shape.label(),
            m,
            b
        );
        best.push((shape.label(), b));
        rows.push(Json::obj([
            ("id", Json::str(shape.label())),
            ("per_tuple", Json::Bool(shape.per_tuple)),
            ("batch", Json::Int(shape.batch as u64)),
            ("workers", Json::Int(shape.workers as u64)),
            ("mean_tuples_per_sec", Json::Num(m)),
            ("best_tuples_per_sec", Json::Num(b)),
            ("reps", Json::Int(reps as u64)),
        ]));
    }

    // Flight-recorder overhead guard: the default batched shape with the
    // recorder on vs off, best-of-OVERHEAD_REPS even in smoke (a single
    // noisy rep must not produce a spurious CI failure). The recorder's
    // data-plane cost is two counter adds per batch, so the ratio should
    // sit at 1.0; the assert holds it above 0.97 (≤ 3% overhead) and is
    // deliberately blocking — an accidental per-tuple record() or lock
    // on the hot path fails the bench, not just a review.
    const OVERHEAD_REPS: usize = 5;
    let overhead_shape = Shape {
        per_tuple: false,
        batch: 256,
        workers: default_workers,
    };
    let _ = run_once(overhead_shape, &intervals, true);
    let trace_on: Vec<f64> = (0..OVERHEAD_REPS)
        .map(|_| run_once(overhead_shape, &intervals, true))
        .collect();
    let trace_off: Vec<f64> = (0..OVERHEAD_REPS)
        .map(|_| run_once(overhead_shape, &intervals, false))
        .collect();
    let trace_overhead_ratio = max(&trace_on) / max(&trace_off);
    println!(
        "  trace overhead: on {:>10.0} t/s   off {:>10.0} t/s   ratio {:.4}",
        max(&trace_on),
        max(&trace_off),
        trace_overhead_ratio
    );
    assert!(
        trace_overhead_ratio >= 0.97,
        "flight recorder costs more than 3% throughput \
         (on/off ratio {trace_overhead_ratio:.4}); the data plane must \
         stay at two counter adds per batch"
    );

    let get = |id: &str| best.iter().find(|(l, _)| l == id).map(|&(_, v)| v);
    let seed_default = get(&format!("seed_per_tuple/w{default_workers}"));
    let batched_default = get(&format!("batched/b256/w{default_workers}"));
    let batched_one = get(&format!("batched/b1/w{default_workers}"));
    let ratio = |a: Option<f64>, b: Option<f64>| match (a, b) {
        (Some(x), Some(y)) if y > 0.0 => Json::Num(x / y),
        _ => Json::Num(f64::NAN),
    };

    let doc = Json::obj([
        ("bench", Json::str("engine")),
        ("key_domain", Json::Int(KEY_DOMAIN as u64)),
        ("zipf_z", Json::Num(ZIPF_Z)),
        ("tuples_per_run", Json::Int(tuples * n_intervals as u64)),
        (
            "spin_work",
            Json::Int(EngineConfig::default().spin_work as u64),
        ),
        ("default_workers", Json::Int(default_workers as u64)),
        ("smoke", Json::Bool(smoke)),
        ("results", Json::Arr(rows)),
        // The acceptance ratios, on best-of-reps (noise-robust) numbers:
        // batched-at-default vs the seed shape, and batch-size-1 vs the
        // seed shape (the no-regression guard).
        (
            "speedup_batched_vs_seed_default",
            ratio(batched_default, seed_default),
        ),
        ("ratio_batch1_vs_seed", ratio(batched_one, seed_default)),
        // Flight-recorder cost at the default shape (on/off, best-of-5);
        // the run aborts above if this drops below 0.97.
        ("trace_overhead_ratio", Json::Num(trace_overhead_ratio)),
        // batch_size = 1 degenerates to the identical scalar data plane
        // (see EngineConfig::batch_size), so this ratio's deviation from
        // 1.0 is pure run-to-run measurement noise, not a code-path
        // difference.
        (
            "note_batch1",
            Json::str("batch 1 runs the same scalar plane as the seed shape"),
        ),
    ]);
    // Anchored at the workspace root (cargo runs bench binaries with the
    // package dir as CWD). Smoke runs go to a separate, untracked path so
    // they can never clobber the committed full-run trajectory in
    // engine.json.
    let path = streambal_bench::figure::results_dir().join(if smoke {
        "engine.smoke.json"
    } else {
        "engine.json"
    });
    match write_json(&path, &doc) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
    }
}
