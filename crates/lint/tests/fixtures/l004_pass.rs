// Fixture: the data-plane send shapes L004 must NOT flag.

fn ship(tx: &Sender<Message>, batch: Vec<Tuple>) {
    let weight = batch.len() as u64;
    let _ = tx.send_weighted(Message::TupleBatch(batch), weight);
}

fn control(tx: &Sender<Message>) {
    // Control markers and single tuples legitimately weigh one.
    let _ = tx.send(Message::Shutdown);
    let _ = tx.send(Message::Tuple(Tuple::keyed(Key(1))));
}

fn annotated(tx: &Sender<Message>, batch: Vec<Tuple>) {
    // lint: allow(send, reason = "fixture: replay of an already-accounted
    // batch; weighting it again would double-bill the channel")
    let _ = tx.send(Message::TupleBatch(batch));
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_send_plain() {
        let (tx, _rx) = channel(4);
        let _ = tx.send(Message::TupleBatch(Vec::new()));
    }
}
