//! The routing table `A` and the mixed assignment function `F` (Eq. 1).
//!
//! # Hot-path design: compiled table + batched routing
//!
//! Routing is the one operation executed *per tuple*; everything else in
//! the framework runs per interval. Three structural decisions keep it
//! fast, from the paper's `Amax = 3000` up to the millions of explicitly
//! routed keys the production regime needs:
//!
//! 1. **The table is compiled, not probed.** [`RoutingTable`] stays a
//!    `FxHashMap` — the right shape for the rebalance algorithms, which
//!    insert/remove entries incrementally — but the read side never touches
//!    it. Reads go through a [`CompiledTable`]: the entries in a flat,
//!    power-of-two, open-addressed slot array (≤ 50% load factor counting
//!    tombstones, linear probing) indexed by the ring's own avalanche
//!    primitive ([`streambal_hashring::mix64`] — see the `CompiledTable`
//!    docs for why a full avalanche, not the raw Fx multiply, is
//!    required). A lookup is one short hash, one mask, and on average
//!    about one slot read on a contiguous, bounds-check-free cache line —
//!    no control-byte metadata, no bucket machinery.
//!
//! 2. **Maintenance is incremental.** Table mutations no longer rebuild
//!    the compiled view: [`CompiledTable::insert`] and
//!    [`CompiledTable::remove`] update the slab in place (removal leaves a
//!    tombstone that keeps probe chains intact), so a rebalance costs
//!    `O(churn)` through [`AssignmentFn::apply_delta`], not `O(N_A)` — at
//!    millions of entries a full rebuild is a multi-millisecond
//!    source-stalling pause per mutation. Full rebuilds still happen in
//!    exactly two places: (a) a whole-table replacement
//!    ([`AssignmentFn::swap_table`], inherently `O(new table)`), and (b)
//!    the **rehash threshold** — when live entries plus tombstones would
//!    exceed the 50% load factor, the slab rehashes into
//!    `(2·(live+1)).next_power_of_two()` slots, clearing tombstones;
//!    amortized `O(1)` per insert. Stateful wrappers
//!    ([`crate::Rebalancer`], the Readj baseline) use
//!    [`AssignmentFn::install_rebalance`], which applies the outcome's
//!    move list as a delta and falls back to a swap only when stale
//!    entries for departed keys outnumber the live table (a rare,
//!    amortized resync that bounds table growth under churning key
//!    domains).
//!
//! 3. **Routing is batched — and prefetched past L2.**
//!    [`AssignmentFn::route_batch`] routes a slice of keys per call.
//!    Callers (the engine's source loop, the simulator's interval loop)
//!    amortize dispatch and let the compiler pipeline the hash/probe
//!    sequence across independent keys instead of paying a call and a
//!    branch-misprediction window per tuple. Because the whole batch is
//!    known up front, tables too large to sit in L2 additionally issue a
//!    software prefetch for key `i + 8`'s home slot while probing key `i`
//!    ([`CompiledTable::prefetch`]), hiding the DRAM latency that
//!    dominates once the slab outgrows the cache; small tables keep the
//!    plain scalar loop (the prefetch instructions were measured neutral
//!    at L2-resident sizes, so `Amax = 3000` routing is unchanged).
//!
//! The `benches/routing.rs` bench in `streambal-bench` measures all three
//! levers — including a 3e3→3e6 table-size sweep and rebuild-vs-delta
//! mutation latency — and writes the numbers to
//! `bench_results/routing.json`.

use std::cell::Cell;

use streambal_hashring::{mix64, FxHashMap, HashRing};

use crate::key::{Key, TaskId};
use crate::migration::Move;

/// Sentinel marking an empty [`CompiledTable`] slot. Destinations are task
/// indices `0..N_D` with `N_D` bounded far below `u32::MAX` (task-id
/// construction panics past `u32`), so the sentinels can never collide
/// with a real destination.
const EMPTY_SLOT: u32 = u32::MAX;

/// Sentinel marking a removed (tombstoned) [`CompiledTable`] slot: probe
/// chains walk through it (unlike [`EMPTY_SLOT`], which terminates them)
/// so entries displaced past the removed one stay reachable.
const TOMBSTONE: u32 = u32::MAX - 1;

/// Slab size (in slots) from which [`AssignmentFn::route_batch`] switches
/// to the software-prefetch probe loop: `1 << 18` slots × 16 bytes = 4 MiB,
/// the first power-of-two size class strictly larger than a typical 1–2 MiB
/// L2, where probe latency turns memory-bound. Below it the scalar loop is
/// kept — prefetch instructions are pure overhead on a cache-resident slab
/// (measured ~20% slower at 1 MiB on a 2 MiB-L2 Xeon), and `Amax = 3000`
/// compiles to an 8192-slot slab, comfortably under the threshold.
const PREFETCH_MIN_SLOTS: usize = 1 << 18;

/// How many keys ahead [`AssignmentFn::route_batch`] prefetches: far
/// enough to cover a DRAM round-trip with ~8 probes of work, close enough
/// that the line is still resident when its key comes up.
const PREFETCH_AHEAD: usize = 8;

/// A [`RoutingTable`] compiled into a flat open-addressed array for the
/// per-tuple hot path.
///
/// Build once with [`CompiledTable::build`] when a whole table is
/// installed, then maintain in place: [`CompiledTable::insert`] and
/// [`CompiledTable::remove`] keep the slab consistent per mutation at
/// `O(probe chain)` cost, with an amortized rehash when live entries plus
/// tombstones would exceed the 50% load factor. Slots hold `(key, dest)`
/// pairs in a power-of-two array with linear probing, indexed by the low
/// bits of [`mix64`] — the ring's avalanche primitive, one multiply
/// cheaper than the `FxHashMap` probe hash it replaces. The avalanche is
/// load-bearing: indexing by the raw Fx *multiply* alone clusters dense
/// sequential key domains (the three-distance effect pushes measured
/// probe chains from ~1.3 to ~4.4 slots at `Amax = 3000`), and dense
/// integer keys are exactly what the workloads produce.
///
/// # Invariants
///
/// - At most one slot per key carries that key, live **or** tombstoned;
///   a live slot never sits later in its probe chain than a tombstoned
///   slot of the same key (inserts reuse the earliest reusable slot).
///   Lookups may therefore stop at the first key match.
/// - `occupied() ≤ capacity() / 2` after every mutation (counting
///   tombstones), so at least half the slots are [`EMPTY_SLOT`] and every
///   probe loop terminates without a length check.
///
/// Equality (`PartialEq`) is structural — two tables with the same live
/// entries but different tombstone histories may compare unequal; compare
/// lookups, not slabs, for semantic equivalence.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledTable {
    /// `(key, dest)` slots; `dest == EMPTY_SLOT` marks a never-used free
    /// slot, `dest == TOMBSTONE` a removed entry whose key is kept so the
    /// probe chain through it stays intact.
    slots: Box<[(u64, u32)]>,
    /// Number of live entries.
    len: usize,
    /// Number of non-[`EMPTY_SLOT`] slots: live entries plus tombstones.
    /// This — not `len` — is what the load-factor invariant bounds.
    used: usize,
}

impl Default for CompiledTable {
    /// An empty table: a single empty slot, so lookups skip the emptiness
    /// branch entirely.
    fn default() -> Self {
        CompiledTable {
            slots: vec![(0u64, EMPTY_SLOT); 1].into_boxed_slice(),
            len: 0,
            used: 0,
        }
    }
}

impl CompiledTable {
    /// Freezes `table` into a flat probe array.
    pub fn build(table: &RoutingTable) -> Self {
        let len = table.len();
        if len == 0 {
            return CompiledTable::default();
        }
        // ≤ 50% load factor keeps expected probe chains around one slot.
        let cap = (len * 2).next_power_of_two();
        let mut slots = vec![(0u64, EMPTY_SLOT); cap].into_boxed_slice();
        let mask = cap - 1;
        for (k, d) in table.iter() {
            let mut i = mix64(k.raw()) as usize & mask;
            while slots[i].1 != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            slots[i] = (k.raw(), d.0);
        }
        CompiledTable {
            slots,
            len,
            used: len,
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are compiled in.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slot count (always a power of two). Exposed so invariant
    /// tests can check the load-factor bound; not meaningful to routing.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Non-empty slots: live entries plus tombstones. The load-factor
    /// invariant is `occupied() ≤ capacity() / 2` after every mutation,
    /// which guarantees probe termination.
    #[inline]
    pub fn occupied(&self) -> usize {
        self.used
    }

    /// Inserts or replaces an entry in place, returning the previous
    /// destination. Amortized `O(1)`: rehashes (clearing tombstones) only
    /// when live entries plus tombstones would cross the 50% load factor.
    pub fn insert(&mut self, key: Key, dest: TaskId) -> Option<TaskId> {
        // Grow/clean eagerly so the probe below always terminates and the
        // write below never violates the load-factor invariant. This may
        // rehash before an in-place update that needed no room — rare
        // (only at the threshold) and harmless (the rehash was due).
        if (self.used + 1) * 2 > self.slots.len() {
            self.rehash();
        }
        let mask = self.slots.len() - 1;
        let raw = key.raw();
        let mut i = mix64(raw) as usize & mask;
        let mut grave: Option<usize> = None;
        loop {
            let (k, d) = self.slots[i];
            if d == EMPTY_SLOT {
                break;
            }
            if k == raw {
                if d != TOMBSTONE {
                    self.slots[i].1 = dest.0;
                    return Some(TaskId(d));
                }
                // The key's own tombstone: no live slot for this key can
                // sit past it (struct invariant), so stop probing.
                grave.get_or_insert(i);
                break;
            }
            if d == TOMBSTONE {
                grave.get_or_insert(i);
            }
            i = (i + 1) & mask;
        }
        match grave {
            // Reusing the earliest tombstone keeps chains short and — for
            // the key's own tombstone — preserves the one-slot-per-key
            // invariant.
            Some(g) => self.slots[g] = (raw, dest.0),
            None => {
                self.slots[i] = (raw, dest.0);
                self.used += 1;
            }
        }
        self.len += 1;
        None
    }

    /// Removes an entry in place, returning its destination. The slot
    /// becomes a tombstone (key kept, [`TOMBSTONE`] dest) so probe chains
    /// running through it stay connected; the slot is reclaimed by a later
    /// insert of any key probing past it, or by the next rehash.
    pub fn remove(&mut self, key: Key) -> Option<TaskId> {
        let mask = self.slots.len() - 1;
        let raw = key.raw();
        let mut i = mix64(raw) as usize & mask;
        loop {
            let (k, d) = self.slots[i];
            if d == EMPTY_SLOT {
                return None;
            }
            if k == raw {
                if d == TOMBSTONE {
                    return None;
                }
                self.slots[i].1 = TOMBSTONE;
                self.len -= 1;
                return Some(TaskId(d));
            }
            i = (i + 1) & mask;
        }
    }

    /// Rebuilds the slab at `(2·(len+1)).next_power_of_two()` slots,
    /// dropping tombstones. `O(capacity)`, amortized against the inserts
    /// that grew `used` to the threshold.
    fn rehash(&mut self) {
        let cap = ((self.len + 1) * 2).next_power_of_two();
        let mut slots = vec![(0u64, EMPTY_SLOT); cap].into_boxed_slice();
        let mask = cap - 1;
        for &(k, d) in self.slots.iter() {
            if d == EMPTY_SLOT || d == TOMBSTONE {
                continue;
            }
            let mut i = mix64(k) as usize & mask;
            while slots[i].1 != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            slots[i] = (k, d);
        }
        self.slots = slots;
        self.used = self.len;
    }

    /// Looks up the explicit destination for `key`, if present.
    ///
    /// `inline(always)`: this is the per-tuple hot path, and the probe
    /// loop is a handful of instructions. Without the annotation the
    /// inliner has been observed to leave it (or its `route` caller) as a
    /// per-key call inside non-inlined `route_batch` instantiations,
    /// costing ~40% of the batched win.
    #[inline(always)]
    pub fn lookup(&self, key: Key) -> Option<TaskId> {
        let slots = &*self.slots;
        // Deriving the mask from the slice length (rather than a stored
        // field) lets the compiler see `i & mask < slots.len()` and drop
        // the bounds checks from the probe loop.
        let mask = slots.len() - 1;
        let raw = key.raw();
        let mut i = mix64(raw) as usize & mask;
        loop {
            let (k, d) = slots[i];
            if d == EMPTY_SLOT {
                return None;
            }
            if k == raw {
                // A tombstoned match means the key was removed; no other
                // slot can carry it (struct invariant), so stop here. The
                // comparison folds into the same branch structure as the
                // pre-tombstone hot path — small-table routing is
                // unchanged.
                return (d != TOMBSTONE).then_some(TaskId(d));
            }
            i = (i + 1) & mask;
        }
    }

    /// True when the slab is large enough (≥ 4 MiB) that probe latency is
    /// DRAM-bound and [`AssignmentFn::route_batch`] should run the
    /// software-prefetch loop.
    #[inline]
    pub fn wants_prefetch(&self) -> bool {
        self.slots.len() >= PREFETCH_MIN_SLOTS
    }

    /// Issues a best-effort prefetch of `key`'s home slot into L1, hiding
    /// DRAM latency when the probe for `key` runs ~[`PREFETCH_AHEAD`]
    /// iterations later. A hint only (no-op on non-x86_64): correctness
    /// never depends on it, and keys whose chains extend past the home
    /// slot's cache line still take the miss on the spilled slots.
    #[inline(always)]
    pub fn prefetch(&self, key: Key) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the home index is masked into `self.slots`' bounds, and
        // prefetch has no architectural effect beyond the cache.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let i = mix64(key.raw()) as usize & (self.slots.len() - 1);
            _mm_prefetch::<_MM_HINT_T0>(self.slots.as_ptr().add(i).cast());
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = key;
    }
}

/// The explicit routing table `A ⊆ K × D`.
///
/// Holds destinations for "a handful of keys only" (paper §II); every key
/// not present falls through to the hash function. The table does **not**
/// enforce `Amax` itself — the rebalance algorithms are responsible for
/// producing tables within bound, and [`RoutingTable::len`] lets callers
/// audit them — because a hard cap here would silently corrupt an
/// assignment mid-update.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutingTable {
    entries: FxHashMap<Key, TaskId>,
}

impl RoutingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RoutingTable::default()
    }

    /// Number of entries `N_A`.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table has no entries (pure hash routing).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the explicit destination for `key`, if present.
    #[inline]
    pub fn get(&self, key: Key) -> Option<TaskId> {
        self.entries.get(&key).copied()
    }

    /// Inserts or replaces an entry, returning the previous destination.
    pub fn insert(&mut self, key: Key, dest: TaskId) -> Option<TaskId> {
        self.entries.insert(key, dest)
    }

    /// Removes an entry ("moves the key back" to its hash destination).
    pub fn remove(&mut self, key: Key) -> Option<TaskId> {
        self.entries.remove(&key)
    }

    /// Keeps only the entries for which `f` returns true, visiting each
    /// once (the incremental alternative to collect-then-remove sweeps).
    pub fn retain(&mut self, mut f: impl FnMut(Key, TaskId) -> bool) {
        self.entries.retain(|&k, &mut d| f(k, d));
    }

    /// Iterates entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, TaskId)> + '_ {
        self.entries.iter().map(|(&k, &d)| (k, d))
    }

    /// Entries sorted by key, for deterministic output in tests/logs.
    pub fn sorted_entries(&self) -> Vec<(Key, TaskId)> {
        let mut v: Vec<_> = self.iter().collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }
}

impl FromIterator<(Key, TaskId)> for RoutingTable {
    fn from_iter<T: IntoIterator<Item = (Key, TaskId)>>(iter: T) -> Self {
        RoutingTable {
            entries: iter.into_iter().collect(),
        }
    }
}

/// The mixed assignment function `F : K → D` of Eq. 1 — a routing table
/// over a consistent-hash fallback.
///
/// Routing a tuple costs one compiled-table probe plus (on miss) one ring
/// lookup; this is the structure the upstream "tuples router" evaluates per
/// tuple (Fig. 3 / Fig. 5). The authoritative `FxHashMap`-backed
/// [`RoutingTable`] is kept for mutation and inspection, but reads go
/// through the [`CompiledTable`], maintained incrementally alongside
/// every table mutation (see the module docs for when full rebuilds
/// still happen).
#[derive(Debug, Clone)]
pub struct AssignmentFn {
    table: RoutingTable,
    compiled: CompiledTable,
    ring: HashRing,
    /// Hot-key split entries, consulted before the table (empty for the
    /// overwhelming majority of assignments — `route_batch` dispatches on
    /// emptiness once per batch so the no-split fast paths never probe it).
    splits: FxHashMap<Key, SplitEntry>,
}

impl AssignmentFn {
    /// Pure-hash assignment over `n_tasks` downstream instances.
    pub fn hash_only(n_tasks: usize) -> Self {
        AssignmentFn {
            table: RoutingTable::new(),
            compiled: CompiledTable::default(),
            ring: HashRing::new(n_tasks),
            splits: FxHashMap::default(),
        }
    }

    /// Assignment with an explicit initial table.
    pub fn with_table(n_tasks: usize, table: RoutingTable) -> Self {
        AssignmentFn {
            compiled: CompiledTable::build(&table),
            table,
            ring: HashRing::new(n_tasks),
            splits: FxHashMap::default(),
        }
    }

    /// Number of downstream task instances `N_D`.
    #[inline]
    pub fn n_tasks(&self) -> usize {
        self.ring.slots()
    }

    /// Evaluates `F(k)` (Eq. 1), extended with the hot-key split layer:
    /// a split key rotates over its replica set (advancing this holder's
    /// cursor), everything else takes the compiled-table/hash path. The
    /// split probe is guarded by an emptiness check so the common
    /// no-split case costs one predictable branch.
    #[inline]
    pub fn route(&self, key: Key) -> TaskId {
        if !self.splits.is_empty() {
            if let Some(e) = self.splits.get(&key) {
                return e.next();
            }
        }
        match self.compiled.lookup(key) {
            Some(d) => d,
            None => TaskId::from(self.ring.slot_of(key.raw())),
        }
    }

    /// Evaluates `F(k)` for a batch of keys, filling `out` with one
    /// destination per key (previous contents discarded). One call per
    /// channel batch amortizes dispatch and keeps the probe sequence
    /// pipelined; past the 4 MiB slab threshold it additionally
    /// prefetches upcoming home slots to hide DRAM latency (see module
    /// docs). Observationally identical to routing each key in order —
    /// including split-key cursor rotation: when splits exist the batch
    /// takes a split-aware loop, when none do it dispatches straight to
    /// the scalar/prefetched fast paths, which stay byte-identical to
    /// their pre-split form.
    #[inline]
    pub fn route_batch(&self, keys: &[Key], out: &mut Vec<TaskId>) {
        if !self.splits.is_empty() {
            self.route_batch_split(keys, out);
        } else if self.compiled.wants_prefetch() {
            self.route_batch_prefetched(keys, out);
        } else {
            self.route_batch_scalar(keys, out);
        }
    }

    /// The plain batched probe loop, with no prefetching and no split
    /// probe. Public as the reference implementation the prefetched path
    /// is verified and benchmarked against (like
    /// [`AssignmentFn::route_via_map`] for the compiled table itself);
    /// [`AssignmentFn::route_batch`] is the API callers should use. This
    /// loop covers the table/hash layers only — it is *not* equivalent to
    /// `route_batch` while splits are installed.
    #[inline]
    pub fn route_batch_scalar(&self, keys: &[Key], out: &mut Vec<TaskId>) {
        // The resize-then-overwrite shape avoids both a capacity check
        // per key and (when the caller reuses a same-sized buffer, as the
        // drivers do) any zero-fill.
        out.resize(keys.len(), TaskId(0));
        for (o, &k) in out.iter_mut().zip(keys) {
            // Open-coded `route`: the table probe must stay inline in this
            // loop (see `CompiledTable::lookup`); the ring fallback may be
            // an out-of-line call — a miss pays a binary search anyway.
            *o = match self.compiled.lookup(k) {
                Some(d) => d,
                None => self.hash_route(k),
            };
        }
    }

    /// The batched probe loop for larger-than-L2 slabs: while probing key
    /// `i`, issues a prefetch for key `i + PREFETCH_AHEAD`'s home slot,
    /// so by the time that key's probe runs its cache line is (usually)
    /// already in flight or resident.
    fn route_batch_prefetched(&self, keys: &[Key], out: &mut Vec<TaskId>) {
        out.resize(keys.len(), TaskId(0));
        for (i, (o, &k)) in out.iter_mut().zip(keys).enumerate() {
            if let Some(&ahead) = keys.get(i + PREFETCH_AHEAD) {
                self.compiled.prefetch(ahead);
            }
            *o = match self.compiled.lookup(k) {
                Some(d) => d,
                None => self.hash_route(k),
            };
        }
    }

    /// Evaluates `F(k)` through the authoritative `FxHashMap` instead of
    /// the compiled table. Semantically identical to
    /// [`AssignmentFn::route`] on the table/hash layers (split entries
    /// are not consulted — cursor rotation makes a split key's route
    /// call-order-dependent, so there is no stable per-key reference);
    /// kept as the reference implementation the compiled table is
    /// verified and benchmarked against.
    #[inline]
    pub fn route_via_map(&self, key: Key) -> TaskId {
        match self.table.get(key) {
            Some(d) => d,
            None => TaskId::from(self.ring.slot_of(key.raw())),
        }
    }

    /// Evaluates the hash fallback `h(k)` regardless of the table.
    #[inline]
    pub fn hash_route(&self, key: Key) -> TaskId {
        TaskId::from(self.ring.slot_of(key.raw()))
    }

    /// The current routing table.
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// The compiled read-side view of the current table.
    pub fn compiled(&self) -> &CompiledTable {
        &self.compiled
    }

    /// Replaces the routing table wholesale (the controller broadcasts
    /// `F′` in step 3 of the Fig. 5 protocol — or a resync, see
    /// [`AssignmentFn::install_rebalance`]), returning the old one. This
    /// is the one deliberate full rebuild of the read-side view,
    /// inherently `O(new table)`.
    pub fn swap_table(&mut self, table: RoutingTable) -> RoutingTable {
        let old = std::mem::replace(&mut self.table, table);
        self.compiled = CompiledTable::build(&self.table);
        old
    }

    /// Inserts a single explicit entry, updating the read-side view in
    /// place (`O(probe chain)`, not `O(table)`).
    pub fn insert_entry(&mut self, key: Key, dest: TaskId) {
        self.table.insert(key, dest);
        self.compiled.insert(key, dest);
    }

    /// Inserts many explicit entries (used to pin hash-churned keys to
    /// their physical location during scale-out). Each insert is
    /// incremental, so the batch costs `O(batch)` regardless of how large
    /// the surrounding table is.
    pub fn insert_entries(&mut self, entries: impl IntoIterator<Item = (Key, TaskId)>) {
        for (k, d) in entries {
            self.table.insert(k, d);
            self.compiled.insert(k, d);
        }
    }

    /// Removes a single explicit entry (the key falls back to hash
    /// routing), updating the read-side view in place. Returns the
    /// removed destination.
    pub fn remove_entry(&mut self, key: Key) -> Option<TaskId> {
        let old = self.table.remove(key);
        if old.is_some() {
            self.compiled.remove(key);
        }
        old
    }

    /// Applies a rebalance delta: for each `(key, dest)` move, installs
    /// an explicit entry — or removes the key's entry when `dest` is the
    /// key's hash destination (an explicit entry would be redundant; this
    /// is how move-backs to `h(k)` shrink the table). Costs `O(moves)`,
    /// independent of table size — the entry point that makes million-key
    /// rebalances affordable.
    pub fn apply_delta(&mut self, moves: impl IntoIterator<Item = (Key, TaskId)>) {
        for (k, d) in moves {
            if d == self.hash_route(k) {
                self.remove_entry(k);
            } else {
                self.insert_entry(k, d);
            }
        }
    }

    /// Installs a rebalance outcome: `table` is the outcome's full table
    /// (entries where `F′(k) ≠ h(k)` over the stats window) and
    /// `plan_moves` its migration plan. Applies the plan as a delta
    /// (`O(churn)`) rather than swapping in `table` (`O(table)`).
    ///
    /// The two differ only on *stale* entries: keys that departed the
    /// stats window keep their old entries under the delta while the swap
    /// would drop them. Both route every windowed (stateful) key
    /// identically — departed keys have no windowed state, so the stale
    /// entries are harmless to correctness but accumulate under churning
    /// key domains. When they outgrow the live outcome
    /// (`held > 2·outcome + 64`), the install falls back to a full
    /// [`AssignmentFn::swap_table`] resync — rare, and amortized against
    /// the cheap installs that let the staleness build up.
    ///
    /// Returns `true` when the delta sufficed, `false` when it resynced —
    /// the caller's signal for whether sources can be updated with a
    /// matching delta view or need the full table.
    pub fn install_rebalance(&mut self, table: &RoutingTable, plan_moves: &[Move]) -> bool {
        self.apply_delta(plan_moves.iter().map(|m| (m.key, m.to)));
        if self.table.len() > 2 * table.len() + 64 {
            self.swap_table(table.clone());
            false
        } else {
            true
        }
    }

    /// Adds a downstream instance (scale-out), returning its id. Existing
    /// table entries are preserved; only hash-routed keys may move, and
    /// only onto the new instance (consistent hashing).
    pub fn add_task(&mut self) -> TaskId {
        TaskId::from(self.ring.add_slot())
    }

    /// Scale-out that preserves physical state placement: adds an
    /// instance, then pins every `live` key whose route churned onto the
    /// new ring slot back to its old destination with an explicit entry,
    /// so routing stays truthful to where state actually sits. Pins are
    /// independent (each key's route depends only on its own entry), so
    /// they are evaluated against the grown ring and inserted as one
    /// batch — a single table recompile regardless of churn size.
    pub fn add_task_pinned(&mut self, live: &[Key]) -> TaskId {
        let live = self.live_unsplit(live);
        let live = live.as_ref();
        let old: Vec<TaskId> = live.iter().map(|&k| self.route(k)).collect();
        let new_task = self.add_task();
        let pins: Vec<(Key, TaskId)> = live
            .iter()
            .zip(&old)
            .filter(|&(&k, &old_d)| self.route(k) != old_d)
            .map(|(&k, &old_d)| (k, old_d))
            .collect();
        self.insert_entries(pins);
        new_task
    }

    /// Scale-out that **reports** churn instead of pinning it: adds an
    /// instance and returns `(new_task, moves)` — every `live` key whose
    /// route churned onto the new ring slot, paired with the task that
    /// held it before the slot was added (its current state holder).
    /// The table is untouched: churned keys route to the new slot by
    /// hash, and the caller is responsible for migrating their state
    /// there (the engine's scale-out pre-placement does exactly that
    /// inside the quiescence window). Keys with explicit table entries
    /// never churn, so their placement stays truthful for free.
    ///
    /// This is the dual of [`AssignmentFn::add_task_pinned`]: pinning
    /// keeps routing truthful by suppressing the ring delta, this keeps
    /// it truthful by executing the delta as a migration. Under a
    /// consistent ring the delta moves keys *only* onto the new slot, so
    /// every reported move's destination is the returned task.
    pub fn add_task_with_moves(&mut self, live: &[Key]) -> (TaskId, Vec<(Key, TaskId)>) {
        let live = self.live_unsplit(live);
        let live = live.as_ref();
        let old: Vec<TaskId> = live.iter().map(|&k| self.route(k)).collect();
        let new_task = self.add_task();
        let moves: Vec<(Key, TaskId)> = live
            .iter()
            .zip(&old)
            .filter(|&(&k, &old_d)| {
                let now = self.route(k);
                debug_assert!(
                    now == old_d || now == new_task,
                    "ring churn must target the new slot only"
                );
                now != old_d
            })
            .map(|(&k, &old_d)| (k, old_d))
            .collect();
        (new_task, moves)
    }

    /// Scale-in that preserves physical state placement on the
    /// *survivors*: removes the highest-numbered instance from the ring
    /// (the exact inverse of [`AssignmentFn::add_task`] — only the
    /// victim's keys change hash owner), drops every table entry pointing
    /// at the victim (those keys fall back to their shrunk-ring hash
    /// destination; the caller is responsible for migrating their state
    /// off the victim, which is exactly what the engine's retire protocol
    /// does), and pins any `live` key that was *not* on the victim but
    /// whose route would nevertheless churn back to its old destination.
    /// With a consistent ring that pin set is empty; it is kept as a
    /// structural guarantee so survivors' placement stays truthful under
    /// any ring behaviour. Returns the retired task id.
    ///
    /// # Panics
    /// Panics if only one task remains.
    pub fn remove_task_pinned(&mut self, live: &[Key]) -> TaskId {
        assert!(self.n_tasks() > 1, "cannot scale in below one task");
        let victim = TaskId::from(self.n_tasks() - 1);
        // Splits referencing the victim drop it from their replica set;
        // a split left with fewer than two replicas dissolves (the key
        // reverts to table/hash routing — its state is consolidated by
        // the retire drain like any other victim-held key).
        self.splits.retain(|_, e| {
            e.replicas.retain(|&d| d != victim);
            if e.replicas.len() < 2 {
                return false;
            }
            e.cursor.set(0);
            true
        });
        let live = self.live_unsplit(live);
        let live = live.as_ref();
        let old: Vec<TaskId> = live.iter().map(|&k| self.route(k)).collect();
        // Drop entries pointing at the victim *before* shrinking the ring
        // so their keys re-route by hash, and redundant entries (equal to
        // the shrunk-ring hash) never enter the table.
        let compiled = &mut self.compiled;
        self.table.retain(|k, d| {
            let keep = d != victim;
            if !keep {
                compiled.remove(k);
            }
            keep
        });
        self.ring.remove_slot();
        let pins: Vec<(Key, TaskId)> = live
            .iter()
            .zip(&old)
            .filter(|&(&k, &old_d)| old_d != victim && self.route(k) != old_d)
            .map(|(&k, &old_d)| (k, old_d))
            .collect();
        self.insert_entries(pins);
        victim
    }

    /// A worker slot died without draining: pins every explicit table
    /// entry routed to `dead` onto a surviving slot and returns the
    /// applied `(key, new destination)` moves, for shipping to other
    /// view holders as a delta. Each key's survivor starts from its
    /// *hash home* ([`next_live`] cycles past dead slots from there), so
    /// the dead slot's keys spread over survivors instead of piling onto
    /// one neighbour — and a key whose hash home is itself live simply
    /// drops its entry ([`AssignmentFn::apply_delta`] semantics),
    /// shrinking the table. The ring does **not** shrink: slot ids stay
    /// dense and the slot can be re-provisioned later. Hash-fallback
    /// keys routed to `dead` have no entries to re-pin; holders divert
    /// them with the same [`next_live`] rule at send time.
    pub fn repin_dead(
        &mut self,
        dead: TaskId,
        is_dead: &dyn Fn(usize) -> bool,
    ) -> Vec<(Key, TaskId)> {
        let n = self.n_tasks();
        let moves: Vec<(Key, TaskId)> = self
            .table
            .iter()
            .filter(|&(_, d)| d == dead)
            .map(|(k, _)| {
                let home = self.hash_route(k).index();
                (k, TaskId::from(next_live(home, n, is_dead)))
            })
            .collect();
        self.apply_delta(moves.iter().copied());
        moves
    }

    /// Normalizes the table against the ring: removes entries whose
    /// destination equals the hash destination (they waste table space).
    /// Each removal goes through the incremental read-side path — one
    /// sweep over the map, no rebuild. Returns how many entries were
    /// dropped.
    pub fn prune_redundant(&mut self) -> usize {
        let ring = &self.ring;
        let compiled = &mut self.compiled;
        let before = self.table.len();
        self.table.retain(|k, d| {
            let keep = TaskId::from(ring.slot_of(k.raw())) != d;
            if !keep {
                compiled.remove(k);
            }
            keep
        });
        before - self.table.len()
    }
}

/// A hot key's salted replica set: the slots a split key round-robins
/// over, plus the rotation cursor.
///
/// The cursor lives in a [`Cell`] so routing can stay `&self` — the same
/// contract every other routing read has — while still advancing the
/// rotation per routed tuple. `Cell<usize>` is `Send` but not `Sync`,
/// which matches how assignments are actually held: each holder (one
/// source thread, the controller, the simulator) owns its own copy and
/// never shares one across threads. Cursors are per-holder state, not
/// part of the distributed view: two holders of the same split table may
/// rotate out of phase, which only affects *which* replica absorbs a
/// given tuple, never correctness (any replica is a valid destination
/// and the merge stage reconciles).
#[derive(Debug, Clone)]
struct SplitEntry {
    /// Replica slots, primary first. Always ≥ 2 entries, all distinct.
    replicas: Vec<TaskId>,
    /// Next replica index to hand out.
    cursor: Cell<usize>,
}

impl SplitEntry {
    /// Hands out the next replica in rotation.
    #[inline]
    fn next(&self) -> TaskId {
        let i = self.cursor.get();
        self.cursor.set((i + 1) % self.replicas.len());
        self.replicas[i]
    }
}

impl AssignmentFn {
    /// Flags `key` as hot, salting it across `replicas` (primary first —
    /// by convention the key's pre-split route, so an unsplit that
    /// consolidates onto `replicas[0]` needs no table change). Returns
    /// `false` (and installs nothing) unless there are at least two
    /// distinct replicas; replacing an existing split resets its cursor.
    ///
    /// Split entries take precedence over both the explicit table and the
    /// hash fallback, and they are deliberately *not* touched by table
    /// maintenance ([`AssignmentFn::apply_delta`],
    /// [`AssignmentFn::swap_table`], [`AssignmentFn::repin_dead`]): the
    /// split layer is orthogonal routing state owned by the split/unsplit
    /// protocol ops, and a dead replica is diverted by holders at send
    /// time with the universal [`next_live`] rule, same as any dead slot.
    pub fn set_split(&mut self, key: Key, replicas: &[TaskId]) -> bool {
        if replicas.len() < 2 {
            return false;
        }
        let mut seen = replicas.to_vec();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != replicas.len() {
            return false;
        }
        self.splits.insert(
            key,
            SplitEntry {
                replicas: replicas.to_vec(),
                cursor: Cell::new(0),
            },
        );
        true
    }

    /// Clears `key`'s split, returning its replica set (primary first) if
    /// one was installed. The key reverts to table/hash routing.
    pub fn clear_split(&mut self, key: Key) -> Option<Vec<TaskId>> {
        self.splits.remove(&key).map(|e| e.replicas)
    }

    /// True when any key is currently split.
    #[inline]
    pub fn has_splits(&self) -> bool {
        !self.splits.is_empty()
    }

    /// The current splits as `(key, replicas)` pairs, sorted by key for
    /// deterministic views/wire encoding. Cursors are not part of the
    /// view (they are per-holder rotation state, see [`SplitEntry`]).
    pub fn splits(&self) -> Vec<(Key, Vec<TaskId>)> {
        let mut v: Vec<(Key, Vec<TaskId>)> = self
            .splits
            .iter()
            .map(|(&k, e)| (k, e.replicas.clone()))
            .collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    /// `key`'s replica set (primary first) if it is currently split.
    pub fn split_replicas(&self, key: Key) -> Option<&[TaskId]> {
        self.splits.get(&key).map(|e| e.replicas.as_slice())
    }

    /// Installs a batch of splits wholesale (view materialization on the
    /// source side). Existing splits are dropped first; cursors start at
    /// the primary.
    pub fn set_splits(&mut self, splits: impl IntoIterator<Item = (Key, Vec<TaskId>)>) {
        self.splits.clear();
        for (k, replicas) in splits {
            self.set_split(k, &replicas);
        }
    }

    /// The batched routing loop when splits exist: per key, one extra map
    /// probe ahead of the compiled table. Split keys are the hottest keys
    /// by construction, so the probe usually hits; the no-split fast
    /// paths ([`AssignmentFn::route_batch_scalar`] and the prefetched
    /// loop) never pay for it because [`AssignmentFn::route_batch`]
    /// dispatches on `has_splits` once per batch.
    fn route_batch_split(&self, keys: &[Key], out: &mut Vec<TaskId>) {
        out.resize(keys.len(), TaskId(0));
        for (o, &k) in out.iter_mut().zip(keys) {
            *o = match self.splits.get(&k) {
                Some(e) => e.next(),
                None => match self.compiled.lookup(k) {
                    Some(d) => d,
                    None => self.hash_route(k),
                },
            };
        }
    }

    /// `live` with split keys filtered out, borrowing when there are no
    /// splits (the common case). Scale maintenance computes old-vs-new
    /// routes per live key to detect ring churn; a split key's route
    /// rotates per call, which would read as spurious churn (and advance
    /// cursors as a side effect), so split keys are excluded — their
    /// routing is pinned by the split entry and immune to ring edits.
    fn live_unsplit<'a>(&self, live: &'a [Key]) -> std::borrow::Cow<'a, [Key]> {
        if self.splits.is_empty() {
            std::borrow::Cow::Borrowed(live)
        } else {
            std::borrow::Cow::Owned(
                live.iter()
                    .copied()
                    .filter(|k| !self.splits.contains_key(k))
                    .collect(),
            )
        }
    }
}

/// The next live slot at or after `dest`, cycling over `0..n` — the one
/// divert rule shared by every holder of a routing view: sources route
/// around a dead slot with it, [`AssignmentFn::repin_dead`] picks
/// survivors with it, and controllers re-home state with it, so traffic
/// and state land on the same survivor no matter who diverts.
///
/// Returns `dest` unchanged when every slot is dead (the caller is about
/// to fail the send and account the loss anyway).
pub fn next_live(dest: usize, n: usize, is_dead: impl Fn(usize) -> bool) -> usize {
    for off in 0..n {
        let d = (dest + off) % n;
        if !is_dead(d) {
            return d;
        }
    }
    dest
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_routes_by_hash() {
        let f = AssignmentFn::hash_only(4);
        for raw in 0..100u64 {
            let k = Key(raw);
            assert_eq!(f.route(k), f.hash_route(k));
            assert!(f.route(k).index() < 4);
        }
    }

    #[test]
    fn table_entry_overrides_hash() {
        let mut f = AssignmentFn::hash_only(4);
        let k = Key(7);
        let hash_dest = f.hash_route(k);
        let other = TaskId((hash_dest.0 + 1) % 4);
        let mut t = RoutingTable::new();
        t.insert(k, other);
        f.swap_table(t);
        assert_eq!(f.route(k), other);
        assert_ne!(f.route(k), hash_dest);
    }

    #[test]
    fn swap_returns_old_table() {
        let mut f = AssignmentFn::hash_only(2);
        let mut t = RoutingTable::new();
        t.insert(Key(1), TaskId(0));
        f.swap_table(t.clone());
        let old = f.swap_table(RoutingTable::new());
        assert_eq!(old, t);
        assert!(f.table().is_empty());
    }

    #[test]
    fn prune_drops_no_op_entries() {
        let mut f = AssignmentFn::hash_only(4);
        let k_same = Key(3);
        let same = f.hash_route(k_same);
        let k_diff = Key(4);
        let diff = TaskId((f.hash_route(k_diff).0 + 1) % 4);
        let mut t = RoutingTable::new();
        t.insert(k_same, same); // redundant
        t.insert(k_diff, diff); // real entry
        f.swap_table(t);
        assert_eq!(f.prune_redundant(), 1);
        assert_eq!(f.table().len(), 1);
        assert_eq!(f.route(k_diff), diff);
    }

    #[test]
    fn add_task_preserves_table_entries() {
        let mut f = AssignmentFn::hash_only(3);
        let k = Key(11);
        let pinned = TaskId(1);
        let mut t = RoutingTable::new();
        t.insert(k, pinned);
        f.swap_table(t);
        let new = f.add_task();
        assert_eq!(new, TaskId(3));
        assert_eq!(f.n_tasks(), 4);
        assert_eq!(f.route(k), pinned, "explicit entries survive scale-out");
    }

    #[test]
    fn remove_task_drops_victim_entries_and_keeps_survivor_routes() {
        let mut f = AssignmentFn::hash_only(4);
        let victim = TaskId(3);
        // One entry pinning a key to the victim, one pinning elsewhere.
        let to_victim = Key(100);
        let elsewhere = Key(200);
        let other = TaskId((f.hash_route(elsewhere).0 + 1) % 3); // survivor slot
        let mut t = RoutingTable::new();
        t.insert(to_victim, victim);
        t.insert(elsewhere, other);
        f.swap_table(t);
        let live: Vec<Key> = (0..2_000u64).map(Key).collect();
        let before: Vec<TaskId> = live.iter().map(|&k| f.route(k)).collect();
        assert_eq!(f.remove_task_pinned(&live), victim);
        assert_eq!(f.n_tasks(), 3);
        // The victim entry is gone; the survivor entry is intact.
        assert_eq!(f.table().get(to_victim), None);
        assert_eq!(f.route(elsewhere), other);
        // No key routes to the victim anymore, and every key that was on
        // a survivor stays exactly where it was.
        for (&k, &old) in live.iter().zip(&before) {
            let now = f.route(k);
            assert_ne!(now, victim, "key {k:?} still routed to retired task");
            if old != victim && k != to_victim {
                assert_eq!(now, old, "survivor key {k:?} churned {old:?}→{now:?}");
            }
        }
    }

    #[test]
    fn scale_out_then_remove_task_restores_routes() {
        let mut f = AssignmentFn::hash_only(4);
        let live: Vec<Key> = (0..1_000u64).map(Key).collect();
        let before: Vec<TaskId> = live.iter().map(|&k| f.route(k)).collect();
        f.add_task_pinned(&live);
        f.remove_task_pinned(&live);
        // Pinned scale-out kept every live key in place, so the round
        // trip is the identity on live keys and leaves no stale entries
        // pointing at the removed slot.
        for (&k, &old) in live.iter().zip(&before) {
            assert_eq!(f.route(k), old);
        }
        for (_, d) in f.table().iter() {
            assert!(d.index() < 4);
        }
    }

    #[test]
    #[should_panic(expected = "below one task")]
    fn remove_task_below_one_panics() {
        AssignmentFn::hash_only(1).remove_task_pinned(&[]);
    }

    /// `add_task_with_moves` reports exactly the ring churn: every move
    /// is a live key now routing to the new slot, paired with its old
    /// holder; keys with explicit table entries never move; non-churned
    /// keys keep their routes.
    #[test]
    fn add_task_with_moves_reports_the_ring_delta() {
        let mut f = AssignmentFn::hash_only(4);
        let pinned = Key(7);
        let home = f.route(pinned);
        f.insert_entry(pinned, home); // explicit entry: must not move
        let live: Vec<Key> = (0..2_000u64).map(Key).collect();
        let before: Vec<TaskId> = live.iter().map(|&k| f.route(k)).collect();
        let (new_task, moves) = f.add_task_with_moves(&live);
        assert_eq!(new_task, TaskId(4));
        assert!(!moves.is_empty(), "a 2000-key population must churn");
        let moved: std::collections::HashMap<Key, TaskId> = moves.iter().copied().collect();
        assert!(!moved.contains_key(&pinned), "table entry churned");
        for (&k, &old) in live.iter().zip(&before) {
            let now = f.route(k);
            match moved.get(&k) {
                Some(&holder) => {
                    assert_eq!(now, new_task, "move {k:?} must target the new slot");
                    assert_eq!(holder, old, "move {k:?} must name the old holder");
                }
                None => assert_eq!(now, old, "unmoved key {k:?} churned"),
            }
        }
        // The same population pinned instead: the pin set is exactly the
        // move set (the two scale-out flavours see one ring delta).
        let mut g = AssignmentFn::hash_only(4);
        g.insert_entry(pinned, home);
        let before_pins = g.table().len();
        g.add_task_pinned(&live);
        assert_eq!(g.table().len() - before_pins, moves.len());
    }

    #[test]
    fn routing_table_crud() {
        let mut t = RoutingTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(Key(1), TaskId(2)), None);
        assert_eq!(t.insert(Key(1), TaskId(3)), Some(TaskId(2)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(Key(1)), Some(TaskId(3)));
        assert_eq!(t.remove(Key(1)), Some(TaskId(3)));
        assert_eq!(t.remove(Key(1)), None);
    }

    #[test]
    fn compiled_table_matches_map_on_hits_and_misses() {
        // Adversarial sizes (pow2 boundaries, 1-entry, empty) and dense
        // key domains: compiled lookups must agree with the map exactly.
        for size in [0usize, 1, 2, 3, 255, 256, 257, 3000] {
            let table: RoutingTable = (0..size as u64)
                .map(|k| (Key(k * 3), TaskId((k % 7) as u32)))
                .collect();
            let compiled = CompiledTable::build(&table);
            assert_eq!(compiled.len(), size);
            assert_eq!(compiled.is_empty(), size == 0);
            for raw in 0..(size as u64 * 3 + 100) {
                assert_eq!(
                    compiled.lookup(Key(raw)),
                    table.get(Key(raw)),
                    "size {size}, key {raw}"
                );
            }
        }
    }

    #[test]
    fn route_and_route_via_map_agree() {
        let table: RoutingTable = (0..500u64)
            .map(|k| (Key(k * 2), TaskId((k % 5) as u32)))
            .collect();
        let f = AssignmentFn::with_table(5, table);
        for raw in 0..2_000u64 {
            assert_eq!(f.route(Key(raw)), f.route_via_map(Key(raw)), "key {raw}");
        }
    }

    #[test]
    fn route_batch_matches_per_key() {
        let table: RoutingTable = (0..100u64).map(|k| (Key(k), TaskId(1))).collect();
        let f = AssignmentFn::with_table(4, table);
        let keys: Vec<Key> = (0..777u64).map(Key).collect();
        let mut out = vec![TaskId(9)]; // stale content must be cleared
        f.route_batch(&keys, &mut out);
        assert_eq!(out.len(), keys.len());
        for (&k, &d) in keys.iter().zip(&out) {
            assert_eq!(d, f.route(k));
        }
    }

    #[test]
    fn mutations_update_the_read_side() {
        let mut f = AssignmentFn::hash_only(4);
        let k = Key(42);
        let pinned = TaskId((f.hash_route(k).0 + 1) % 4);
        // insert_entry updates the compiled view.
        f.insert_entry(k, pinned);
        assert_eq!(f.route(k), pinned);
        assert_eq!(f.compiled().len(), 1);
        // remove_entry drops it again.
        assert_eq!(f.remove_entry(k), Some(pinned));
        assert_eq!(f.route(k), f.hash_route(k));
        assert_eq!(f.remove_entry(k), None);
        // swap_table rebuilds.
        f.insert_entry(k, pinned);
        f.swap_table(RoutingTable::new());
        assert_eq!(f.route(k), f.hash_route(k));
        assert!(f.compiled().is_empty());
        // prune_redundant removes through the incremental path.
        let mut t = RoutingTable::new();
        t.insert(k, f.hash_route(k)); // redundant entry
        t.insert(Key(7), TaskId((f.hash_route(Key(7)).0 + 1) % 4));
        f.swap_table(t);
        assert_eq!(f.prune_redundant(), 1);
        assert_eq!(f.compiled().len(), 1);
        assert_eq!(f.route(k), f.hash_route(k));
    }

    #[test]
    fn insert_entries_applies_whole_batch() {
        let mut f = AssignmentFn::hash_only(4);
        let pins: Vec<(Key, TaskId)> = (0..100u64)
            .map(Key)
            .map(|k| (k, TaskId((f.hash_route(k).0 + 1) % 4)))
            .collect();
        f.insert_entries(pins.clone());
        assert_eq!(f.compiled().len(), 100);
        for (k, d) in pins {
            assert_eq!(f.route(k), d);
        }
        // Empty batch: no-op, compiled view untouched.
        let before = f.compiled().clone();
        f.insert_entries(std::iter::empty());
        assert_eq!(f.compiled(), &before);
    }

    /// Incremental insert/remove keeps lookups equivalent to a fresh
    /// build through growth (rehash) and tombstone churn — the
    /// deterministic core of the property pinned down in
    /// `tests/compiled_table_props.rs`.
    #[test]
    fn incremental_insert_remove_matches_fresh_build() {
        let mut table = RoutingTable::new();
        let mut c = CompiledTable::default();
        assert_eq!(c.capacity(), 1);
        // Grow from the 1-slot default through several rehashes.
        for k in 0..600u64 {
            let d = TaskId((k % 9) as u32);
            assert_eq!(c.insert(Key(k), d), table.insert(Key(k), d));
        }
        // Tombstone a third, overwrite a third.
        for k in (0..600u64).step_by(3) {
            assert_eq!(c.remove(Key(k)), table.remove(Key(k)));
        }
        for k in (1..600u64).step_by(3) {
            let d = TaskId((k % 5) as u32);
            assert_eq!(c.insert(Key(k), d), table.insert(Key(k), d));
        }
        // Re-insert some removed keys (exercises tombstone reuse).
        for k in (0..300u64).step_by(3) {
            let d = TaskId(7);
            assert_eq!(c.insert(Key(k), d), table.insert(Key(k), d));
        }
        let fresh = CompiledTable::build(&table);
        assert_eq!(c.len(), fresh.len());
        for k in 0..700u64 {
            assert_eq!(c.lookup(Key(k)), fresh.lookup(Key(k)), "key {k}");
            assert_eq!(c.lookup(Key(k)), table.get(Key(k)), "key {k}");
        }
    }

    /// After any mutation sequence: at most one slot per key and at most
    /// 50% occupancy (tombstones included), so probes terminate.
    #[test]
    fn tombstone_churn_keeps_load_factor_and_termination_invariants() {
        let mut c = CompiledTable::default();
        // Repeated insert/remove of the same window would, without
        // tombstone reuse and rehash, fill the slab with graves.
        for round in 0..50u64 {
            for k in 0..64u64 {
                c.insert(Key(k), TaskId((round % 4) as u32));
            }
            for k in (0..64u64).step_by(2) {
                c.remove(Key(k));
            }
            assert!(
                c.occupied() * 2 <= c.capacity(),
                "round {round}: occupied {} of {} breaks the load factor",
                c.occupied(),
                c.capacity()
            );
            assert!(c.occupied() >= c.len());
        }
        // Misses on never-inserted keys must terminate (would hang
        // forever if a probe chain had no EMPTY slot).
        for k in 1000..1100u64 {
            assert_eq!(c.lookup(Key(k)), None);
        }
        assert_eq!(c.len(), 32);
    }

    #[test]
    fn apply_delta_inserts_moves_and_removes_movebacks() {
        let mut f = AssignmentFn::hash_only(4);
        let k_pin = Key(11);
        let k_back = Key(22);
        let elsewhere = TaskId((f.hash_route(k_back).0 + 1) % 4);
        f.insert_entry(k_back, elsewhere);
        let to_pin = TaskId((f.hash_route(k_pin).0 + 1) % 4);
        // One move to a non-hash destination, one move-back to h(k).
        f.apply_delta([(k_pin, to_pin), (k_back, f.hash_route(k_back))]);
        assert_eq!(f.route(k_pin), to_pin);
        assert_eq!(f.table().get(k_pin), Some(to_pin));
        assert_eq!(f.route(k_back), f.hash_route(k_back));
        assert_eq!(
            f.table().get(k_back),
            None,
            "move-back must shrink the table"
        );
        // The read side agrees with the map everywhere.
        for raw in 0..200u64 {
            assert_eq!(f.route(Key(raw)), f.route_via_map(Key(raw)));
        }
    }

    #[test]
    fn install_rebalance_delta_then_resync() {
        let mut f = AssignmentFn::hash_only(4);
        // A big held table whose keys all "departed": the outcome table
        // is tiny, so the staleness bound forces a resync.
        let big: Vec<(Key, TaskId)> = (0..500u64)
            .map(Key)
            .map(|k| (k, TaskId((f.hash_route(k).0 + 1) % 4)))
            .collect();
        f.insert_entries(big);
        let outcome: RoutingTable = (1000..1010u64)
            .map(|k| (Key(k), TaskId((f.hash_route(Key(k)).0 + 1) % 4)))
            .collect();
        let moves: Vec<Move> = outcome
            .iter()
            .map(|(k, d)| Move {
                key: k,
                from: f.hash_route(k),
                to: d,
                state_bytes: 0,
            })
            .collect();
        assert!(!f.install_rebalance(&outcome, &moves), "must resync");
        assert_eq!(
            f.table().len(),
            outcome.len(),
            "resync swapped in the outcome"
        );
        // A small table with a small delta stays on the delta path and
        // routes every moved key correctly.
        let outcome2: RoutingTable = outcome.iter().chain([(Key(2000), TaskId(0))]).collect();
        let moves2 = [Move {
            key: Key(2000),
            from: f.hash_route(Key(2000)),
            to: TaskId(0),
            state_bytes: 0,
        }];
        assert!(f.install_rebalance(&outcome2, &moves2), "delta suffices");
        for (k, d) in outcome2.iter() {
            if d != f.hash_route(k) {
                assert_eq!(f.route(k), d);
            }
        }
    }

    /// The prefetched batch path kicks in at the slab threshold and stays
    /// observationally identical to the scalar loop.
    #[test]
    fn prefetched_route_batch_matches_scalar() {
        // 140_000 entries → 524_288 slots ≥ PREFETCH_MIN_SLOTS.
        let table: RoutingTable = (0..140_000u64)
            .map(|k| (Key(k * 7), TaskId((k % 6) as u32)))
            .collect();
        let f = AssignmentFn::with_table(6, table);
        assert!(
            f.compiled().wants_prefetch(),
            "slab must cross the threshold"
        );
        let keys: Vec<Key> = (0..5_000u64).map(|k| Key(k * 11)).collect();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        f.route_batch(&keys, &mut a);
        f.route_batch_scalar(&keys, &mut b);
        assert_eq!(a, b);
        // Small tables stay under the threshold (Amax = 3000 unchanged).
        let small: RoutingTable = (0..3_000u64).map(|k| (Key(k), TaskId(0))).collect();
        let g = AssignmentFn::with_table(4, small);
        assert!(!g.compiled().wants_prefetch());
    }

    #[test]
    fn split_key_round_robins_over_replicas() {
        let mut f = AssignmentFn::hash_only(4);
        let k = Key(9);
        assert!(f.set_split(k, &[TaskId(1), TaskId(3), TaskId(0)]));
        assert!(f.has_splits());
        // The rotation hands out replicas in order, starting at the
        // primary, and wraps.
        let got: Vec<TaskId> = (0..7).map(|_| f.route(k)).collect();
        let want = [1u32, 3, 0, 1, 3, 0, 1].map(TaskId);
        assert_eq!(got, want);
        // Non-split keys are untouched.
        let other = Key(10);
        assert_eq!(f.route(other), f.hash_route(other));
    }

    #[test]
    fn set_split_rejects_degenerate_replica_sets() {
        let mut f = AssignmentFn::hash_only(4);
        assert!(!f.set_split(Key(1), &[TaskId(0)]), "one replica");
        assert!(!f.set_split(Key(1), &[]), "no replicas");
        assert!(
            !f.set_split(Key(1), &[TaskId(0), TaskId(0)]),
            "duplicate replicas"
        );
        assert!(!f.has_splits());
    }

    #[test]
    fn clear_split_reverts_to_table_then_hash() {
        let mut f = AssignmentFn::hash_only(4);
        let k = Key(5);
        let pinned = TaskId((f.hash_route(k).0 + 1) % 4);
        f.insert_entry(k, pinned);
        assert!(f.set_split(k, &[pinned, TaskId((pinned.0 + 1) % 4)]));
        assert_eq!(f.split_replicas(k).unwrap()[0], pinned);
        let replicas = f.clear_split(k).unwrap();
        assert_eq!(replicas[0], pinned);
        // Split gone: the table entry routes again.
        assert_eq!(f.route(k), pinned);
        assert_eq!(f.clear_split(k), None);
        f.remove_entry(k);
        assert_eq!(f.route(k), f.hash_route(k));
    }

    #[test]
    fn route_batch_with_splits_matches_per_key_route() {
        let table: RoutingTable = (0..50u64).map(|k| (Key(k), TaskId(2))).collect();
        let mut f = AssignmentFn::with_table(4, table);
        f.set_split(Key(3), &[TaskId(0), TaskId(1), TaskId(2)]);
        f.set_split(Key(100), &[TaskId(3), TaskId(1)]);
        let keys: Vec<Key> = (0..200u64).map(|k| Key(k % 110)).collect();
        // Route the same sequence twice — batched vs per-key — from two
        // clones so the cursors start identical.
        let g = f.clone();
        let mut batched = Vec::new();
        f.route_batch(&keys, &mut batched);
        let scalar: Vec<TaskId> = keys.iter().map(|&k| g.route(k)).collect();
        assert_eq!(batched, scalar);
    }

    #[test]
    fn splits_survive_table_maintenance() {
        let mut f = AssignmentFn::hash_only(4);
        let k = Key(7);
        f.set_split(k, &[TaskId(0), TaskId(2)]);
        // Table delta, swap, and prune leave the split layer intact.
        f.apply_delta([(Key(50), TaskId(1))]);
        f.swap_table(RoutingTable::new());
        f.prune_redundant();
        assert_eq!(f.split_replicas(k), Some(&[TaskId(0), TaskId(2)][..]));
        assert_eq!(f.route(k), TaskId(0));
    }

    #[test]
    fn scale_in_repairs_splits_referencing_the_victim() {
        let mut f = AssignmentFn::hash_only(4);
        // One split survives victim removal (3 replicas, one on victim),
        // one dissolves (2 replicas, one on victim).
        f.set_split(Key(1), &[TaskId(0), TaskId(3), TaskId(2)]);
        f.set_split(Key(2), &[TaskId(1), TaskId(3)]);
        let victim = f.remove_task_pinned(&[]);
        assert_eq!(victim, TaskId(3));
        assert_eq!(f.split_replicas(Key(1)), Some(&[TaskId(0), TaskId(2)][..]));
        assert_eq!(f.split_replicas(Key(2)), None, "degenerate split dissolves");
        assert_eq!(f.route(Key(2)), f.hash_route(Key(2)));
    }

    #[test]
    fn scale_out_ignores_split_keys_when_pinning() {
        let mut f = AssignmentFn::hash_only(3);
        let live: Vec<Key> = (0..2_000u64).map(Key).collect();
        f.set_split(Key(0), &[TaskId(0), TaskId(1)]);
        let before = f.split_replicas(Key(0)).unwrap().to_vec();
        let (_, moves) = f.add_task_with_moves(&live);
        assert!(
            moves.iter().all(|&(k, _)| k != Key(0)),
            "split key reported as ring churn"
        );
        assert_eq!(f.split_replicas(Key(0)).unwrap(), &before[..]);
        // Pinned flavour: no table entry materializes for the split key.
        let mut g = AssignmentFn::hash_only(3);
        g.set_split(Key(0), &[TaskId(0), TaskId(1)]);
        g.add_task_pinned(&live);
        assert_eq!(g.table().get(Key(0)), None);
    }

    #[test]
    fn splits_view_is_sorted_and_cursorless() {
        let mut f = AssignmentFn::hash_only(4);
        f.set_split(Key(9), &[TaskId(1), TaskId(2)]);
        f.set_split(Key(3), &[TaskId(0), TaskId(3)]);
        // Advance a cursor; the exported view must be unaffected.
        f.route(Key(9));
        let v = f.splits();
        assert_eq!(
            v,
            vec![
                (Key(3), vec![TaskId(0), TaskId(3)]),
                (Key(9), vec![TaskId(1), TaskId(2)]),
            ]
        );
        // Re-materializing from the view starts rotation at the primary.
        let mut g = AssignmentFn::hash_only(4);
        g.set_splits(v);
        assert_eq!(g.route(Key(9)), TaskId(1));
    }

    #[test]
    fn sorted_entries_deterministic() {
        let t: RoutingTable = [
            (Key(5), TaskId(0)),
            (Key(2), TaskId(1)),
            (Key(9), TaskId(0)),
        ]
        .into_iter()
        .collect();
        let keys: Vec<u64> = t.sorted_entries().iter().map(|(k, _)| k.raw()).collect();
        assert_eq!(keys, vec![2, 5, 9]);
    }
}
