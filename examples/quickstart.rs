//! Quickstart: the five-minute tour promised by the crate docs.
//!
//! Three stops:
//!
//! 1. the core rebalancing loop in isolation — a [`Rebalancer`] ingests
//!    one skewed interval and emits a routing table + migration plan;
//! 2. a simulator sweep — the paper's Mixed strategy vs plain hashing on
//!    the same fluctuating Zipf workload (prints a `SimReport` per run);
//! 3. a small live-engine run — word count over threads with real state
//!    migration (prints the `EngineReport`).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use streambal::baselines::{CoreBalancer, HashPartitioner};
use streambal::core::IntervalStats;
use streambal::prelude::*;
use streambal::runtime::{Engine, EngineConfig, Tuple, WordCountOp};
use streambal::sim::source::ZipfSource;
use streambal::sim::{run_sim, SimConfig};
use streambal::workloads::FluctuatingWorkload;

fn main() {
    one_rebalance();
    sim_sweep();
    engine_run();
}

/// Stop 1: one interval through the controller, by hand.
fn one_rebalance() {
    println!("== 1. one rebalance, by hand =====================================");

    // An operator with 4 downstream task instances, keeping 2 intervals
    // of state, rebalanced by the paper's Mixed algorithm.
    let mut rebalancer = Rebalancer::new(
        4,
        2,
        RebalanceStrategy::Mixed,
        BalanceParams {
            theta_max: 0.08, // tolerate 8% deviation from the mean load
            beta: 1.5,       // γ = c^β / S migration priority
            table_max: 100,  // at most 100 explicit routing entries
        },
    );

    // One interval of measurements: 1000 keys, heavy head, long tail.
    let mut stats = IntervalStats::new();
    for k in 0..1000u64 {
        let freq = 2000 / (k + 1);
        stats.observe(Key(k), freq, freq, freq * 8);
    }

    // The imbalance hashing alone produces.
    let mut loads = vec![0u64; 4];
    for (k, s) in stats.iter() {
        loads[rebalancer.route(k).index()] += s.cost;
    }
    let before = streambal::core::LoadSummary::new(loads);
    println!("before: per-task loads {:?}", before.loads);
    println!("before: max θ = {:.3}  (bound 0.080)", before.max_theta());

    // End the interval: the controller triggers and constructs F′.
    let outcome = rebalancer
        .end_interval(stats)
        .expect("skew above θmax must trigger a rebalance");
    println!(
        "after:  rebalance fired — {} table entries, {} keys moved ({:.1}% of state), max θ = {:.3}",
        outcome.table.len(),
        outcome.plan.keys_moved(),
        outcome.migration_fraction * 100.0,
        outcome.achieved_theta,
    );
    println!("hot key 0 now routes to {}\n", rebalancer.route(Key(0)));
}

/// Stop 2: the simulator — scheduling metrics without materializing
/// tuples.
fn sim_sweep() {
    println!("== 2. simulator sweep: Mixed vs hash on fluctuating Zipf =========");
    let cfg = SimConfig {
        n_tasks: 8,
        intervals: 12,
    };
    let params = BalanceParams {
        theta_max: 0.08,
        ..BalanceParams::default()
    };

    let mut hash = HashPartitioner::new(cfg.n_tasks);
    let mut src = ZipfSource::new(2_000, 0.9, 50_000, 0.2, 77);
    let hash_report = run_sim(&mut hash, &mut src, &cfg);

    let mut mixed = CoreBalancer::new(cfg.n_tasks, 5, RebalanceStrategy::Mixed, params);
    let mut src = ZipfSource::new(2_000, 0.9, 50_000, 0.2, 77);
    let mixed_report = run_sim(&mut mixed, &mut src, &cfg);

    println!("sim report: {}", hash_report.summary_row());
    println!("sim report: {}", mixed_report.summary_row());
    println!(
        "Mixed held post-warmup θ̄ to {:.3} vs {:.3} under plain hashing\n",
        mixed_report.mean_theta_after_warmup(),
        hash_report.mean_theta_after_warmup(),
    );
}

/// Stop 3: the live engine — worker threads, interval statistics, and the
/// pause → migrate → resume protocol of Fig. 5.
fn engine_run() {
    println!("== 3. live engine run: word count with state migration ===========");
    let n_workers = 3;
    let mut workload = FluctuatingWorkload::new(300, 1.0, 5_000, 0.8, 23);
    let mut intervals: Vec<Vec<Key>> = Vec::new();
    for _ in 0..5 {
        intervals.push(workload.tuples());
        workload.advance(n_workers, |k| TaskId::from(k.raw() as usize % n_workers));
    }
    let total: usize = intervals.iter().map(Vec::len).sum();

    let report = Engine::run(
        EngineConfig {
            n_workers,
            max_workers: n_workers,
            spin_work: 50,
            window: 100,
            ..EngineConfig::default()
        },
        Box::new(CoreBalancer::new(
            n_workers,
            100,
            RebalanceStrategy::Mixed,
            BalanceParams {
                theta_max: 0.05,
                ..BalanceParams::default()
            },
        )),
        |_| Box::new(WordCountOp::new()),
        move |iv| {
            intervals
                .get(iv as usize)
                .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
        },
        None,
    );

    println!(
        "engine report: strategy={} processed={} ({} fed) wall={:?}",
        report.name, report.processed, total, report.wall,
    );
    println!(
        "engine report: throughput={:.0} tuples/s, p50 latency={}µs, p99={}µs",
        report.mean_throughput,
        report.latency_us.quantile(0.5),
        report.latency_us.quantile(0.99),
    );
    println!(
        "engine report: rebalances={}, migrated {} keys / {} state bytes, per-worker {:?}",
        report.rebalances, report.migrated_keys, report.migrated_bytes, report.per_worker_processed,
    );
}
