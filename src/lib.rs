//! # streambal
//!
//! Facade crate re-exporting the full `streambal` stack — a from-scratch
//! Rust reproduction of *“Parallel Stream Processing Against Workload
//! Skewness and Variance”* (Fang et al., HPDC 2017).
//!
//! The stack:
//!
//! * [`core`] — the paper's contribution: mixed hash/routing-table
//!   partitioning, rebalance algorithms (LLFD, MinTable, MinMig, Mixed),
//!   compact statistics and discretization.
//! * [`hashring`] — fast hashing and the consistent-hash substrate.
//! * [`baselines`] — Readj, PKG, hash-only, and shuffle partitioners.
//! * [`workloads`] — Zipf-with-fluctuation, social-feed, stock, and
//!   TPC-H-like generators.
//! * [`sim`] — interval-driven simulator for algorithm-level metrics.
//! * [`runtime`] — a thread-based mini stream engine with live state
//!   migration (the Storm substitute).
//! * [`elastic`] — elasticity policies deciding scale-out / scale-in /
//!   hold per interval, shared by the simulator and the engine.
//! * [`metrics`] — counters, histograms, time-series.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use streambal_baselines as baselines;
pub use streambal_core as core;
pub use streambal_elastic as elastic;
pub use streambal_hashring as hashring;
pub use streambal_metrics as metrics;
pub use streambal_runtime as runtime;
pub use streambal_sim as sim;
pub use streambal_workloads as workloads;

/// Convenience prelude pulling in the types most programs need.
///
/// The strategy interface ([`Partitioner`](streambal_core::Partitioner),
/// [`RoutingView`](streambal_core::RoutingView)) is re-exported from
/// `streambal-core`, where it lives — downstream users never need to
/// import `baselines` just to name the trait.
pub mod prelude {
    pub use streambal_core::{
        AssignmentFn, BalanceParams, Key, MigrationPlan, Partitioner, RebalanceStrategy,
        Rebalancer, RoutingTable, RoutingView, TaskId,
    };
    pub use streambal_hashring::HashRing;
}
