//! Lock-free counters and windowed rate meters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

/// A monotonically increasing counter shared between task threads.
///
/// Uses `Relaxed` ordering: counts are statistical, and no other memory is
/// published through them, so there is nothing for stronger orderings to
/// synchronize.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the previous value.
    #[inline]
    pub fn take(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

/// Produces a throughput timeline by sampling a [`Counter`] at wall-clock
/// instants: each call to [`RateMeter::sample`] appends one
/// `(seconds_since_start, events_per_second)` point.
#[derive(Debug)]
pub struct RateMeter {
    started: Instant,
    inner: Mutex<RateInner>,
}

#[derive(Debug)]
struct RateInner {
    last_at: f64,
    last_count: u64,
    points: Vec<(f64, f64)>,
}

impl RateMeter {
    /// Creates a meter anchored at "now".
    pub fn new() -> Self {
        RateMeter {
            started: Instant::now(),
            inner: Mutex::new(RateInner {
                last_at: 0.0,
                last_count: 0,
                points: Vec::new(),
            }),
        }
    }

    /// Records one rate point from the counter's current value.
    ///
    /// Returns the instantaneous rate (events/second since the previous
    /// sample). Samples closer than 1 ms apart are folded into the previous
    /// point to avoid divide-by-nearly-zero spikes.
    pub fn sample(&self, counter: &Counter) -> f64 {
        let now = self.started.elapsed().as_secs_f64();
        let count = counter.get();
        let mut inner = self.inner.lock();
        let dt = now - inner.last_at;
        if dt < 1e-3 {
            return inner.points.last().map_or(0.0, |&(_, r)| r);
        }
        let rate = (count - inner.last_count) as f64 / dt;
        inner.last_at = now;
        inner.last_count = count;
        inner.points.push((now, rate));
        rate
    }

    /// The recorded `(time, rate)` series so far.
    pub fn series(&self) -> Vec<(f64, f64)> {
        self.inner.lock().points.clone()
    }

    /// Mean rate over all recorded points (unweighted).
    pub fn mean_rate(&self) -> f64 {
        let inner = self.inner.lock();
        if inner.points.is_empty() {
            return 0.0;
        }
        inner.points.iter().map(|&(_, r)| r).sum::<f64>() / inner.points.len() as f64
    }
}

impl Default for RateMeter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_basic() {
        let c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.take(), 10);
        assert_eq!(c.get(), 0);
    }

    /// Pins the batched-increment contract the runtime's worker loop
    /// relies on: one `add(n)` per drained batch must be exactly
    /// equivalent to `n` `incr()`s, including under concurrency.
    #[test]
    fn add_matches_repeated_incr() {
        let batched = Counter::new();
        let scalar = Counter::new();
        for batch in [1u64, 16, 256, 1024] {
            batched.add(batch);
            for _ in 0..batch {
                scalar.incr();
            }
        }
        assert_eq!(batched.get(), scalar.get());
        assert_eq!(batched.get(), 1 + 16 + 256 + 1024);
    }

    #[test]
    fn add_across_threads_totals_exactly() {
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1_000 {
                    c.add(64); // one batch of 64 per "channel op"
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8 * 1_000 * 64);
    }

    #[test]
    fn counter_across_threads() {
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.incr();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn rate_meter_reports_positive_rate() {
        let c = Counter::new();
        let m = RateMeter::new();
        c.add(100);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let r = m.sample(&c);
        assert!(r > 0.0);
        assert_eq!(m.series().len(), 1);
    }

    #[test]
    fn rate_meter_folds_rapid_samples() {
        let c = Counter::new();
        let m = RateMeter::new();
        std::thread::sleep(std::time::Duration::from_millis(2));
        c.add(10);
        m.sample(&c);
        // Immediate resample: no new point.
        m.sample(&c);
        assert_eq!(m.series().len(), 1);
    }

    #[test]
    fn mean_rate_of_empty_is_zero() {
        let m = RateMeter::new();
        assert_eq!(m.mean_rate(), 0.0);
    }
}
