//! The worker (downstream task instance) thread loop.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{Receiver, Sender};
use streambal_core::{IntervalStats, Key, TaskId};
use streambal_hashring::FxHashMap;
use streambal_metrics::{Counter, Histogram};

use crate::fault::{CtlKind, FaultInjector};
use crate::message::{Message, WorkerEvent};
use crate::operator::Operator;
use crate::tuple::{Tuple, TAG_PARTIAL};
use streambal_trace::ThreadRecorder;

/// Spare drained input buffers an emitter keeps for its own batches
/// before surplus flows back to the source pool.
const EMIT_SPARES: usize = 2;

/// Drained buffers accumulated before one grouped pool return. Returning
/// buffers in groups amortizes the pool-channel lock to `1/RETURN_GROUP`
/// per batch — at batch size 1 this is what keeps the pooled plane at
/// parity with the seed's per-tuple sends.
const RETURN_GROUP: usize = 8;

/// Everything one worker thread needs.
pub(crate) struct WorkerCtx {
    pub id: TaskId,
    pub rx: Receiver<Message>,
    pub events: Sender<WorkerEvent>,
    pub collector: Option<Sender<Vec<Tuple>>>,
    pub op: Box<dyn Operator>,
    /// Busy-work iterations per tuple (CPU saturation control).
    pub spin_work: u32,
    /// State window `w` in intervals.
    pub window: u64,
    /// Shared processed-tuples counter (throughput sampling).
    pub processed_counter: Arc<Counter>,
    /// Engine start instant (latency reference).
    pub epoch: Instant,
    /// The interval this worker joins at (0 for initial workers; the
    /// current interval for scale-out spawns, so window eviction does not
    /// misfire on its early state).
    pub start_interval: u64,
    /// Return path for drained batch buffers — the source recycles them,
    /// keeping the steady state allocation-free. Buffers travel in groups
    /// of [`RETURN_GROUP`] to amortize the channel lock.
    pub pool: Sender<Vec<Vec<Tuple>>>,
    /// Tuples accumulated per collector batch before a flush is forced
    /// (the emitter also flushes at every input-batch boundary).
    pub emit_batch: usize,
    /// Shared fault-injection state (passive when the plan is empty).
    pub injector: Arc<FaultInjector>,
    /// Flight-recorder handle. The data plane only touches its local
    /// counters ([`ThreadRecorder::count_batch`]); one `DataFlush` event
    /// per interval reaches the shared sink. Dropped (flushing
    /// stragglers) when the worker exits — including injected kills, so
    /// a dead worker's partial interval is still accounted.
    pub recorder: ThreadRecorder,
}

/// Calibrated busy work: `iters` dependent multiply-xor rounds. The
/// optimizer cannot elide it (the result feeds a `black_box`), so one unit
/// costs the same nanoseconds everywhere — this is how the engine
/// emulates the paper's per-tuple CPU cost.
#[inline]
pub(crate) fn spin(iters: u32) -> u64 {
    let mut x = 0x9E37_79B9u64 | 1;
    for i in 0..iters {
        x = x.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ (i as u64);
    }
    std::hint::black_box(x)
}

/// Batches operator emissions toward the collector: one channel send per
/// full (or force-flushed) buffer instead of one per emitted tuple.
/// Buffers come from the worker's drained input batches (`stash`) and
/// return to the engine pool from the collector side, so emission batches
/// ride the same free-list as data batches.
struct BatchEmitter {
    tx: Option<Sender<Vec<Tuple>>>,
    buf: Vec<Tuple>,
    cap: usize,
    spares: Vec<Vec<Tuple>>,
}

impl BatchEmitter {
    fn new(tx: Option<Sender<Vec<Tuple>>>, cap: usize) -> Self {
        BatchEmitter {
            tx,
            buf: Vec::new(),
            cap: cap.max(1),
            spares: Vec::new(),
        }
    }

    /// Buffers one emission; sends when the buffer reaches capacity. The
    /// collector channel is bounded: a slow merger backpressures workers,
    /// the PKG max-pending effect (now at batch granularity).
    #[inline]
    fn emit(&mut self, t: Tuple) {
        if self.tx.is_none() {
            return; // no collector: emissions are dropped, as before
        }
        self.buf.push(t);
        if self.buf.len() >= self.cap {
            self.flush();
        }
    }

    /// Ships the buffered emissions, if any. The send is weighted by the
    /// batch length so the collector channel's capacity stays
    /// tuple-denominated.
    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let next = self.spares.pop().unwrap_or_default();
        let full = std::mem::replace(&mut self.buf, next);
        if let Some(tx) = &self.tx {
            let weight = full.len();
            let _ = tx.send_weighted(full, weight);
        }
    }

    /// Offers a drained buffer for reuse; hands it back when the emitter
    /// has no use for it (the caller returns it to the pool).
    fn stash(&mut self, buf: Vec<Tuple>) -> Option<Vec<Tuple>> {
        if self.tx.is_some() && self.spares.len() < EMIT_SPARES {
            self.spares.push(buf);
            None
        } else {
            Some(buf)
        }
    }

    /// Per-key input-tuple counts represented by emissions still sitting
    /// in the buffer — partials that die with the worker on a kill.
    /// Only `TAG_PARTIAL` deltas map back to input tuples; derived
    /// emissions (join outputs) carry no input-count semantics.
    fn buffered_counts(&self) -> Vec<(Key, u64)> {
        self.buf
            .iter()
            .filter(|t| t.tag == TAG_PARTIAL)
            .map(|t| (t.key, t.vals[0]))
            .collect()
    }
}

/// Builds the `Killed` event for a controlled worker death: merges the
/// operator's unobserved per-key counts, the emitter's buffered
/// partials, and any `extra` counts the death site supplies (e.g. the
/// blobs of a `StateInstall` that crashed the worker).
#[allow(clippy::too_many_arguments)]
fn killed_event(
    id: TaskId,
    op: &dyn Operator,
    emitter: &BatchEmitter,
    extra: Vec<(Key, u64)>,
    stats: IntervalStats,
    processed: u64,
    mut latency: Box<Histogram>,
    iv_latency: &Histogram,
    first_interval: Option<u64>,
    rx: Receiver<Message>,
) -> WorkerEvent {
    let mut lost: FxHashMap<Key, u64> = FxHashMap::default();
    for (k, c) in op
        .held_counts()
        .into_iter()
        .chain(emitter.buffered_counts())
        .chain(extra)
    {
        *lost.entry(k).or_insert(0) += c;
    }
    let mut lost: Vec<(Key, u64)> = lost.into_iter().collect();
    lost.sort_unstable_by_key(|&(k, _)| k);
    latency.merge(iv_latency);
    WorkerEvent::Killed {
        worker: id,
        lost,
        stats,
        processed,
        latency,
        first_interval,
        rx,
    }
}

/// Runs the worker until `Shutdown`.
pub(crate) fn run_worker(mut ctx: WorkerCtx) {
    let mut stats = IntervalStats::new();
    let mut latency = Box::new(Histogram::new());
    // Interval-scoped latency: recorded per tuple, shipped with each
    // stats report (the controller merges workers into the interval's
    // mean/p99 observation), folded into the lifetime histogram at every
    // boundary so totals never double-count.
    let mut iv_latency = Box::new(Histogram::new());
    let mut processed = 0u64;
    let mut first_interval: Option<u64> = None;
    let mut current_interval = ctx.start_interval;
    let mut emitter = BatchEmitter::new(ctx.collector.clone(), ctx.emit_batch);
    // Drained buffers awaiting a grouped pool return.
    let mut returns: Vec<Vec<Tuple>> = Vec::with_capacity(RETURN_GROUP);
    // Fault-injection ordinals and the install-dedupe epoch. The epoch
    // guard makes `StateInstall` idempotent under controller retries: a
    // resent install for the epoch already applied re-acks without
    // re-merging (which would double the counts).
    let faulty = !ctx.injector.is_passive();
    let mut migrate_outs_seen = 0usize;
    let mut installs_seen = 0usize;
    let mut last_installed_epoch: Option<u64> = None;

    while let Ok(msg) = ctx.rx.recv() {
        match msg {
            Message::Tuple(t) => {
                // The seed per-tuple shape: one clock read, one counter
                // increment, one (length-1) collector flush per tuple.
                // (The collector channel itself now carries batches, so
                // with a collector this shape pays a small Vec per
                // emission — the one place it deviates from the seed.)
                spin(ctx.spin_work);
                let mem = ctx
                    .op
                    .process(&t, current_interval, &mut |t| emitter.emit(t));
                stats.observe(t.key, 1, ctx.spin_work as u64 + 1, mem);
                let now_us = ctx.epoch.elapsed().as_micros() as u64;
                iv_latency.record(now_us.saturating_sub(t.emitted_us));
                first_interval.get_or_insert(current_interval);
                processed += 1;
                ctx.processed_counter.incr();
                ctx.recorder.count_batch(1);
                emitter.flush();
            }
            Message::TupleBatch(mut batch) => {
                let n = batch.len() as u64;
                // Batch-local stats accumulation by key runs: consecutive
                // same-key tuples fold into one interval-map probe. Costs
                // one compare per tuple on shuffled streams, collapses
                // bursty ones. (A per-batch scratch hashmap was measured
                // slower here — the interval map is cache-resident while
                // the scratch doubles the hashing.)
                let cost_per = ctx.spin_work as u64 + 1;
                let mut run: Option<(Key, u64, u64)> = None; // key, freq, mem
                for t in batch.iter() {
                    spin(ctx.spin_work);
                    let mem = ctx
                        .op
                        .process(t, current_interval, &mut |t| emitter.emit(t));
                    match &mut run {
                        Some((k, freq, m)) if *k == t.key => {
                            *freq += 1;
                            *m += mem;
                        }
                        other => {
                            if let Some((k, freq, m)) = other.take() {
                                stats.observe(k, freq, freq * cost_per, m);
                            }
                            *other = Some((t.key, 1, mem));
                        }
                    }
                }
                if let Some((k, freq, m)) = run {
                    stats.observe(k, freq, freq * cost_per, m);
                }
                // One monotonic-clock read per batch, taken *after* the
                // drain so recorded latencies include the batch's own
                // processing (the per-tuple shape reads after each
                // tuple; reading before the drain would systematically
                // under-report late tuples). Latency is still recorded
                // per tuple against its own emission stamp, in a second
                // cache-hot pass over the stamps.
                let now_us = ctx.epoch.elapsed().as_micros() as u64;
                for t in batch.iter() {
                    iv_latency.record(now_us.saturating_sub(t.emitted_us));
                }
                if n > 0 {
                    first_interval.get_or_insert(current_interval);
                }
                batch.clear();
                processed += n;
                ctx.processed_counter.add(n);
                ctx.recorder.count_batch(n);
                emitter.flush();
                if let Some(back) = emitter.stash(batch) {
                    // Already drained: queue the capacity for a grouped
                    // return to the source. A failed send means the
                    // source is gone (engine teardown) — buffers drop.
                    returns.push(back);
                    if returns.len() >= RETURN_GROUP {
                        let _ = ctx.pool.send(std::mem::take(&mut returns));
                    }
                }
            }
            Message::StatsRequest { interval } => {
                if faulty {
                    if ctx
                        .injector
                        .should_kill_at_interval(ctx.id.index(), interval)
                    {
                        let ev = killed_event(
                            ctx.id,
                            ctx.op.as_ref(),
                            &emitter,
                            Vec::new(),
                            std::mem::take(&mut stats),
                            processed,
                            latency,
                            &iv_latency,
                            first_interval,
                            ctx.rx,
                        );
                        let _ = ctx.events.send(ev);
                        return;
                    }
                    if let Some(ms) = ctx.injector.stall_at_interval(ctx.id.index(), interval) {
                        // Slow-but-alive: FIFO order (and therefore
                        // state) is preserved, only time passes.
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                    }
                }
                ctx.op.flush(&mut |t| emitter.emit(t));
                emitter.flush();
                let out = std::mem::take(&mut stats);
                // Fold the interval's latency into the lifetime total,
                // then ship the interval histogram with the report.
                latency.merge(&iv_latency);
                let out_latency = std::mem::take(&mut iv_latency);
                if !(faulty && ctx.injector.should_drop(CtlKind::Stats)) {
                    let _ = ctx.events.send(WorkerEvent::Stats {
                        worker: ctx.id,
                        interval,
                        stats: out,
                        latency: out_latency,
                    });
                }
                current_interval = interval + 1;
                // Interval boundary: the flight recorder rolls its
                // batch-granularity counters into one DataFlush event.
                // The counts are deterministic — FIFO guarantees every
                // tuple the source fed for this interval was processed
                // before this marker arrived.
                ctx.recorder.close_interval(interval);
                // Keep the last `window` intervals: evict everything
                // strictly older than (closed_interval + 1 − w).
                let oldest_keep = (interval + 1).saturating_sub(ctx.window);
                ctx.op.evict_before(oldest_keep);
            }
            Message::MigrateOut { epoch, moves } => {
                migrate_outs_seen += 1;
                if faulty
                    && ctx
                        .injector
                        .should_kill_on_migrate_out(ctx.id.index(), migrate_outs_seen)
                {
                    // Crash mid-migration, before extracting: the
                    // requested moves die with the rest of the state.
                    let ev = killed_event(
                        ctx.id,
                        ctx.op.as_ref(),
                        &emitter,
                        Vec::new(),
                        std::mem::take(&mut stats),
                        processed,
                        latency,
                        &iv_latency,
                        first_interval,
                        ctx.rx,
                    );
                    let _ = ctx.events.send(ev);
                    return;
                }
                let mut states = Vec::with_capacity(moves.len());
                for (key, to) in moves {
                    let blob = ctx.op.extract(key).unwrap_or_default();
                    states.push((key, to, blob));
                }
                let _ = ctx.events.send(WorkerEvent::StateOut {
                    worker: ctx.id,
                    epoch,
                    states,
                });
            }
            Message::StateInstall { epoch, states } => {
                installs_seen += 1;
                if faulty
                    && ctx
                        .injector
                        .should_kill_on_install(ctx.id.index(), installs_seen)
                {
                    // Crash inside the install path: nothing is merged,
                    // so the incoming blobs are lost too — count them.
                    let extra: Vec<(Key, u64)> = states
                        .iter()
                        .map(|(k, b)| (*k, ctx.op.tuples_in_blob(b)))
                        .collect();
                    let ev = killed_event(
                        ctx.id,
                        ctx.op.as_ref(),
                        &emitter,
                        extra,
                        std::mem::take(&mut stats),
                        processed,
                        latency,
                        &iv_latency,
                        first_interval,
                        ctx.rx,
                    );
                    let _ = ctx.events.send(ev);
                    return;
                }
                if last_installed_epoch != Some(epoch) {
                    for (key, blob) in states {
                        if !blob.is_empty() {
                            ctx.op.install(key, blob);
                        }
                    }
                    last_installed_epoch = Some(epoch);
                }
                if !(faulty && ctx.injector.should_drop(CtlKind::InstallAck)) {
                    let _ = ctx.events.send(WorkerEvent::InstallAck {
                        worker: ctx.id,
                        epoch,
                    });
                }
            }
            Message::Retire { epoch } => {
                // Scale-in: the FIFO channel already delivered every
                // batch the source sent before the pause ack, so the
                // backlog is fully processed — drain *all* remaining
                // state (windowed state outlives the statistics that
                // created it) and hand everything back, including the
                // receiver, so the slot's channel stays connected for a
                // later re-provision.
                ctx.op.flush(&mut |t| emitter.emit(t));
                emitter.flush();
                if !returns.is_empty() {
                    let _ = ctx.pool.send(std::mem::take(&mut returns));
                }
                let states = ctx.op.drain();
                latency.merge(&iv_latency);
                let _ = ctx.events.send(WorkerEvent::Retired {
                    worker: ctx.id,
                    epoch,
                    states,
                    stats: std::mem::take(&mut stats),
                    processed,
                    latency,
                    first_interval,
                    rx: ctx.rx,
                });
                return;
            }
            Message::Shutdown => {
                ctx.op.flush(&mut |t| emitter.emit(t));
                emitter.flush();
                if !returns.is_empty() {
                    let _ = ctx.pool.send(std::mem::take(&mut returns));
                }
                let final_states = ctx.op.drain();
                latency.merge(&iv_latency);
                let _ = ctx.events.send(WorkerEvent::Drained {
                    worker: ctx.id,
                    final_states,
                    processed,
                    latency,
                    first_interval,
                });
                return;
            }
        }
    }
    // Channel closed without Shutdown (engine dropped): exit quietly.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultSpec};
    use crate::operator::WordCountOp;
    use crossbeam::channel::unbounded;
    use streambal_core::Key;

    /// Handles to a spawned test worker: input, events, pool returns,
    /// join handle.
    type WorkerHandles = (
        Sender<Message>,
        Receiver<WorkerEvent>,
        Receiver<Vec<Vec<Tuple>>>,
        std::thread::JoinHandle<()>,
    );

    fn spawn_worker(window: u64) -> WorkerHandles {
        spawn_worker_faulty(window, FaultPlan::none())
    }

    fn spawn_worker_faulty(window: u64, plan: FaultPlan) -> WorkerHandles {
        let (tx, rx) = unbounded();
        let (etx, erx) = unbounded();
        let (pool_tx, pool_rx) = unbounded();
        let ctx = WorkerCtx {
            id: TaskId(0),
            rx,
            events: etx,
            collector: None,
            op: Box::new(WordCountOp::new()),
            spin_work: 4,
            window,
            processed_counter: Arc::new(Counter::new()),
            epoch: Instant::now(),
            start_interval: 0,
            pool: pool_tx,
            emit_batch: 8,
            injector: Arc::new(FaultInjector::new(plan)),
            recorder: streambal_trace::TraceSink::disabled()
                .recorder(streambal_trace::ThreadLabel::Worker(0)),
        };
        let h = std::thread::spawn(move || run_worker(ctx));
        (tx, erx, pool_rx, h)
    }

    #[test]
    fn processes_and_reports_stats() {
        let (tx, erx, _pool, h) = spawn_worker(5);
        for _ in 0..10 {
            tx.send(Message::Tuple(Tuple::keyed(Key(1)))).unwrap();
        }
        tx.send(Message::StatsRequest { interval: 0 }).unwrap();
        match erx.recv().unwrap() {
            WorkerEvent::Stats {
                interval,
                stats,
                latency,
                ..
            } => {
                assert_eq!(interval, 0);
                let s = stats.get(Key(1)).unwrap();
                assert_eq!(s.freq, 10);
                assert_eq!(s.cost, 50); // (spin_work + 1) · freq
                assert_eq!(s.mem, 80);
                // The interval's latency distribution rides the report.
                assert_eq!(latency.count(), 10);
            }
            other => panic!("unexpected {other:?}"),
        }
        // An idle interval ships an empty latency histogram (it was
        // drained into the lifetime total, not resent).
        tx.send(Message::StatsRequest { interval: 1 }).unwrap();
        match erx.recv().unwrap() {
            WorkerEvent::Stats { latency, .. } => assert_eq!(latency.count(), 0),
            other => panic!("unexpected {other:?}"),
        }
        tx.send(Message::Shutdown).unwrap();
        match erx.recv().unwrap() {
            WorkerEvent::Drained {
                processed,
                final_states,
                latency,
                first_interval,
                ..
            } => {
                assert_eq!(processed, 10);
                assert_eq!(final_states.len(), 1);
                assert_eq!(latency.count(), 10, "lifetime total survives shipping");
                assert_eq!(first_interval, Some(0));
            }
            other => panic!("unexpected {other:?}"),
        }
        h.join().unwrap();
    }

    /// A `TupleBatch` must account identically to the same tuples sent
    /// one at a time — stats, counts, and state — and the drained buffer
    /// must come back through the pool with its capacity intact.
    #[test]
    fn batch_matches_per_tuple_accounting_and_recycles_buffer() {
        let (tx, erx, pool_rx, h) = spawn_worker(5);
        let batch: Vec<Tuple> = (0..10)
            .map(|i| Tuple::keyed(Key(if i % 2 == 0 { 1 } else { 2 })))
            .collect();
        let cap = batch.capacity();
        tx.send(Message::TupleBatch(batch)).unwrap();
        tx.send(Message::StatsRequest { interval: 0 }).unwrap();
        match erx.recv().unwrap() {
            WorkerEvent::Stats { stats, .. } => {
                let s1 = stats.get(Key(1)).unwrap();
                assert_eq!(s1.freq, 5);
                assert_eq!(s1.cost, 25); // (spin_work + 1) · freq
                assert_eq!(s1.mem, 40);
                let s2 = stats.get(Key(2)).unwrap();
                assert_eq!(s2.freq, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
        tx.send(Message::Shutdown).unwrap();
        match erx.recv().unwrap() {
            WorkerEvent::Drained {
                processed, latency, ..
            } => {
                assert_eq!(processed, 10);
                assert_eq!(latency.count(), 10, "latency recorded per tuple");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The buffer came back through the pool (grouped return, flushed
        // at shutdown), drained but with its capacity intact.
        let group = pool_rx.recv().unwrap();
        assert_eq!(group.len(), 1);
        assert!(group[0].is_empty());
        assert_eq!(group[0].capacity(), cap);
        h.join().unwrap();
    }

    /// Emissions toward a collector arrive batched, and the batch buffers
    /// the worker drains feed the emitter before surplus hits the pool.
    #[test]
    fn collector_emissions_are_batched() {
        let (tx, rx) = unbounded();
        let (etx, erx) = unbounded();
        let (pool_tx, _pool_rx) = unbounded();
        let (col_tx, col_rx) = unbounded();
        let ctx = WorkerCtx {
            id: TaskId(0),
            rx,
            events: etx,
            collector: Some(col_tx),
            op: Box::new(WordCountOp::with_partial_emission(3)),
            spin_work: 1,
            window: 5,
            processed_counter: Arc::new(Counter::new()),
            epoch: Instant::now(),
            start_interval: 0,
            pool: pool_tx,
            emit_batch: 4,
            injector: Arc::new(FaultInjector::new(FaultPlan::none())),
            recorder: streambal_trace::TraceSink::disabled()
                .recorder(streambal_trace::ThreadLabel::Worker(0)),
        };
        let h = std::thread::spawn(move || run_worker(ctx));
        let batch: Vec<Tuple> = (0..9).map(|_| Tuple::keyed(Key(7))).collect();
        tx.send(Message::TupleBatch(batch)).unwrap();
        tx.send(Message::Shutdown).unwrap();
        let _ = erx.recv();
        drop(tx);
        let mut emitted = 0u64;
        while let Ok(b) = col_rx.recv() {
            assert!(!b.is_empty(), "empty collector batches are never sent");
            emitted += b.iter().map(|t| t.vals[0]).sum::<u64>();
        }
        // 9 tuples of key 7, partial period 3 → all 9 counted in partials.
        assert_eq!(emitted, 9);
        h.join().unwrap();
    }

    #[test]
    fn migrate_out_then_install_roundtrip() {
        let (tx_a, erx_a, _pa, ha) = spawn_worker(5);
        let (tx_b, erx_b, _pb, hb) = spawn_worker(5);
        // Worker A accumulates state for key 9 — via a batch, as the
        // batched data plane delivers it.
        tx_a.send(Message::TupleBatch(vec![Tuple::keyed(Key(9)); 4]))
            .unwrap();
        tx_a.send(Message::MigrateOut {
            epoch: 1,
            moves: vec![(Key(9), TaskId(1))],
        })
        .unwrap();
        let states = match erx_a.recv().unwrap() {
            WorkerEvent::StateOut { states, epoch, .. } => {
                assert_eq!(epoch, 1);
                states
            }
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(states.len(), 1);
        // Forward to worker B.
        tx_b.send(Message::StateInstall {
            epoch: 1,
            states: states.into_iter().map(|(k, _, b)| (k, b)).collect(),
        })
        .unwrap();
        assert!(matches!(
            erx_b.recv().unwrap(),
            WorkerEvent::InstallAck { epoch: 1, .. }
        ));
        // B now owns the counts: drain and decode.
        tx_b.send(Message::Shutdown).unwrap();
        match erx_b.recv().unwrap() {
            WorkerEvent::Drained { final_states, .. } => {
                assert_eq!(final_states.len(), 1);
                let (k, blob) = &final_states[0];
                assert_eq!(*k, Key(9));
                let total: u64 = WordCountOp::decode(blob).iter().map(|&(_, c)| c).sum();
                assert_eq!(total, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
        tx_a.send(Message::Shutdown).unwrap();
        let _ = erx_a.recv();
        ha.join().unwrap();
        hb.join().unwrap();
    }

    /// Retire must process the whole backlog first (FIFO), then hand back
    /// every piece of state, the lifetime metrics, and the still-usable
    /// channel receiver.
    #[test]
    fn retire_drains_backlog_and_returns_receiver() {
        let (tx, erx, _pool, h) = spawn_worker(100);
        tx.send(Message::TupleBatch(vec![Tuple::keyed(Key(1)); 3]))
            .unwrap();
        tx.send(Message::Tuple(Tuple::keyed(Key(2)))).unwrap();
        tx.send(Message::Retire { epoch: 9 }).unwrap();
        match erx.recv().unwrap() {
            WorkerEvent::Retired {
                epoch,
                states,
                processed,
                latency,
                rx,
                ..
            } => {
                assert_eq!(epoch, 9);
                assert_eq!(processed, 4, "backlog processed before retiring");
                assert_eq!(latency.count(), 4);
                let keys: Vec<u64> = states.iter().map(|(k, _)| k.raw()).collect();
                assert_eq!(keys, vec![1, 2], "all state handed back");
                // The channel stayed connected: a respawn on the same
                // slot picks up right where the retiree left.
                tx.send(Message::Tuple(Tuple::keyed(Key(3)))).unwrap();
                assert!(matches!(rx.recv().unwrap(), Message::Tuple(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        h.join().unwrap();
    }

    #[test]
    fn window_eviction_after_stats() {
        let (tx, erx, _pool, h) = spawn_worker(1); // keep only current interval
        tx.send(Message::Tuple(Tuple::keyed(Key(5)))).unwrap();
        tx.send(Message::StatsRequest { interval: 0 }).unwrap();
        let _ = erx.recv();
        // Interval 1: nothing for key 5; window=1 evicts interval 0 state.
        tx.send(Message::StatsRequest { interval: 1 }).unwrap();
        let _ = erx.recv();
        tx.send(Message::Shutdown).unwrap();
        match erx.recv().unwrap() {
            WorkerEvent::Drained { final_states, .. } => {
                assert!(final_states.is_empty(), "state must be evicted");
            }
            other => panic!("unexpected {other:?}"),
        }
        h.join().unwrap();
    }

    /// An injected interval kill must exit with a `Killed` event whose
    /// per-key lost counts equal the tuples whose contribution never
    /// became observable, and hand the receiver back for draining.
    #[test]
    fn injected_kill_accounts_held_state() {
        let plan = FaultPlan::new(vec![FaultSpec::KillWorker {
            worker: 0,
            at_interval: 1,
        }]);
        let (tx, erx, _pool, h) = spawn_worker_faulty(100, plan);
        tx.send(Message::TupleBatch(vec![Tuple::keyed(Key(4)); 6]))
            .unwrap();
        tx.send(Message::StatsRequest { interval: 0 }).unwrap();
        let _ = erx.recv(); // interval 0 stats, no kill yet
        tx.send(Message::TupleBatch(vec![Tuple::keyed(Key(9)); 2]))
            .unwrap();
        tx.send(Message::StatsRequest { interval: 1 }).unwrap();
        match erx.recv().unwrap() {
            WorkerEvent::Killed {
                lost,
                processed,
                stats,
                rx,
                ..
            } => {
                assert_eq!(processed, 8);
                assert_eq!(lost, vec![(Key(4), 6), (Key(9), 2)]);
                // Unreported interval-1 residue rides the event.
                assert_eq!(stats.get(Key(9)).unwrap().freq, 2);
                // The receiver is handed back so in-flight messages can
                // be drained for accounting.
                tx.send(Message::Tuple(Tuple::keyed(Key(1)))).unwrap();
                assert!(matches!(rx.recv().unwrap(), Message::Tuple(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        h.join().unwrap();
    }

    /// A resent `StateInstall` for the already-applied epoch re-acks
    /// without re-merging (idempotence under controller retries).
    #[test]
    fn duplicate_install_epoch_is_deduped() {
        let (tx, erx, _pool, h) = spawn_worker(100);
        let blob = {
            let mut op = WordCountOp::new();
            let mut sink = |_| {};
            for _ in 0..3 {
                op.process(&Tuple::keyed(Key(2)), 0, &mut sink);
            }
            op.extract(Key(2)).unwrap()
        };
        for _ in 0..2 {
            tx.send(Message::StateInstall {
                epoch: 7,
                states: vec![(Key(2), blob.clone())],
            })
            .unwrap();
            assert!(matches!(
                erx.recv().unwrap(),
                WorkerEvent::InstallAck { epoch: 7, .. }
            ));
        }
        tx.send(Message::Shutdown).unwrap();
        match erx.recv().unwrap() {
            WorkerEvent::Drained { final_states, .. } => {
                let total: u64 = WordCountOp::decode(&final_states[0].1)
                    .iter()
                    .map(|&(_, c)| c)
                    .sum();
                assert_eq!(total, 3, "duplicate epoch must not double counts");
            }
            other => panic!("unexpected {other:?}"),
        }
        h.join().unwrap();
    }

    #[test]
    fn spin_is_not_optimized_away() {
        let t0 = Instant::now();
        for _ in 0..1000 {
            spin(1000);
        }
        assert!(t0.elapsed().as_nanos() > 1000, "spin must consume time");
    }
}
