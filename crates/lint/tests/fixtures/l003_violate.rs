// Fixture: a swap_table call outside the whitelisted resync path.

pub fn sneaky_rebuild(f: &mut AssignmentFn, t: RoutingTable) {
    f.swap_table(t);
}
