//! Regenerates the paper's Fig. 10 (see EXPERIMENTS.md).
fn main() {
    let scale = streambal_bench::Scale::from_env();
    print!("{}", streambal_bench::figs_sim::fig10(scale));
}
