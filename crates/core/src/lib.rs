//! # streambal-core
//!
//! The primary contribution of *“Parallel Stream Processing Against
//! Workload Skewness and Variance”* (Fang et al., HPDC 2017): a dynamic,
//! intra-operator, key-based workload partitioning framework for stream
//! processing engines.
//!
//! ## The mixed routing strategy (paper §II, Eq. 1)
//!
//! A tuple with key `k` is routed to downstream task `F(k)`:
//!
//! ```text
//! F(k) = d      if (k, d) ∈ A      (explicit routing-table entry)
//!      = h(k)   otherwise          (consistent hash fallback)
//! ```
//!
//! The routing table `A` is bounded by `Amax`, so routing stays O(1) in
//! time and O(Amax) in memory, while still letting the controller redirect
//! any troublesome key.
//!
//! ## The rebalance problem (paper §II-B, Eq. 3)
//!
//! At the start of interval `Tᵢ`, given last-interval statistics, construct
//! a new assignment `F′` minimizing state-migration cost `Mᵢ(w, F, F′)`
//! subject to per-task balance `θ(d, F′) ≤ θmax` and table size
//! `N_A ≤ Amax`. The problem is NP-hard (bin-packing reduction), so the
//! paper proposes heuristics, all implemented here:
//!
//! * [`llfd`] — Least-Load Fit Decreasing (Algorithm 1), the Phase-III
//!   assignment subroutine with the `Adjust` exchange mechanism.
//! * [`simple`] — the appendix's Algorithm 5 (LPT greedy), used for the
//!   Theorem 1 bound.
//! * [`mintable`] — Algorithm 2: clean the whole table first, minimizing
//!   the table size.
//! * [`minmig`] — Algorithm 3: never clean, prioritize keys by the
//!   migration-priority index `γᵢ(k, w) = cᵢ(k)^β / Sᵢ(k, w)`.
//! * [`mixed`] — Algorithm 4: iterate MinTable-style cleaning depth `n`
//!   until the table bound is met; plus the brute-force `MixedBF`.
//!
//! ## Implementation optimizations (paper §IV)
//!
//! * [`compact`] — the 6-dimensional compact statistics representation
//!   `(d′, d, dₕ, v_c, v_S, #)` that shrinks the optimization input from
//!   `|K|` keys to `O(N_D³ · |v_c| · |v_S|)` records.
//! * [`discretize`] — the half-linear-half-exponential (HLHE) value
//!   discretization with greedy accumulated-deviation cancellation
//!   (Fig. 6b / Theorem 3).
//!
//! ## Entry points
//!
//! Most users want [`Rebalancer`], which owns the routing table, watches
//! interval statistics, and emits [`MigrationPlan`]s; the engine applies
//! plans with the pause → migrate → ack → resume protocol (implemented in
//! `streambal-runtime`).
//!
//! The pluggable strategy interface the simulator and engine drive —
//! [`Partitioner`] and its shippable [`RoutingView`] snapshot — also
//! lives here (module [`partitioner`]): drivers depend on this crate
//! alone, and `streambal-baselines` merely implements the trait for the
//! competitors.

pub mod compact;
pub mod discretize;
pub mod intern;
pub mod key;
pub mod llfd;
pub mod load;
pub mod migration;
pub mod minmig;
pub mod mintable;
pub mod mixed;
pub mod partitioner;
pub mod rebalance;
pub mod routing;
pub mod simple;
pub mod stats;

pub use intern::KeyInterner;
pub use key::{Key, TaskId};
pub use load::{balance_indicator, loads_of, max_skewness, needs_rebalance, LoadSummary};
pub use migration::{migration_delta, MigrationPlan, Move};
pub use partitioner::{Partitioner, RoutingView};
pub use rebalance::{
    outcome_from_assignment, rebalance, BalanceParams, RebalanceInput, RebalanceOutcome,
    RebalanceStrategy, Rebalancer, TriggerPolicy,
};
pub use routing::{next_live, AssignmentFn, CompiledTable, RoutingTable};
pub use stats::{IntervalStats, KeyRecord, KeyStat, StatsWindow};
