//! Interval sources: adapters from the workload generators to the
//! simulator's pull interface.

use streambal_core::{IntervalStats, Key, TaskId};
use streambal_workloads::{FluctuatingWorkload, SocialWorkload, StockWorkload};

/// A stream of per-interval key statistics.
///
/// `dest` exposes the partitioner's *current* key→task mapping; workloads
/// whose fluctuation process is defined relative to task loads (the Zipf
/// generator's `f` knob) use it, others ignore it.
pub trait IntervalSource {
    /// Produces the next interval's statistics.
    fn next_interval(
        &mut self,
        n_tasks: usize,
        dest: &mut dyn FnMut(Key) -> TaskId,
    ) -> IntervalStats;
}

/// The synthetic Zipf workload as a source (Tab. II parameter grid).
#[derive(Debug)]
pub struct ZipfSource {
    inner: FluctuatingWorkload,
    first: bool,
}

impl ZipfSource {
    /// See [`FluctuatingWorkload::new`].
    pub fn new(k: usize, z: f64, tuples: u64, f: f64, seed: u64) -> Self {
        ZipfSource {
            inner: FluctuatingWorkload::new(k, z, tuples, f, seed),
            first: true,
        }
    }

    /// The wrapped workload.
    pub fn workload(&self) -> &FluctuatingWorkload {
        &self.inner
    }
}

impl IntervalSource for ZipfSource {
    fn next_interval(
        &mut self,
        n_tasks: usize,
        dest: &mut dyn FnMut(Key) -> TaskId,
    ) -> IntervalStats {
        if self.first {
            self.first = false; // interval 0 is the base distribution
        } else {
            self.inner.advance(n_tasks, dest);
        }
        self.inner.interval_stats()
    }
}

/// The slow-drift Social workload as a source.
#[derive(Debug)]
pub struct SocialSource {
    inner: SocialWorkload,
    first: bool,
}

impl SocialSource {
    /// Wraps a social workload.
    pub fn new(inner: SocialWorkload) -> Self {
        SocialSource { inner, first: true }
    }
}

impl IntervalSource for SocialSource {
    fn next_interval(
        &mut self,
        _n_tasks: usize,
        _dest: &mut dyn FnMut(Key) -> TaskId,
    ) -> IntervalStats {
        if self.first {
            self.first = false;
        } else {
            self.inner.advance();
        }
        self.inner.interval_stats()
    }
}

/// The bursty Stock workload as a source.
#[derive(Debug)]
pub struct StockSource {
    inner: StockWorkload,
    first: bool,
}

impl StockSource {
    /// Wraps a stock workload.
    pub fn new(inner: StockWorkload) -> Self {
        StockSource { inner, first: true }
    }
}

impl IntervalSource for StockSource {
    fn next_interval(
        &mut self,
        _n_tasks: usize,
        _dest: &mut dyn FnMut(Key) -> TaskId,
    ) -> IntervalStats {
        if self.first {
            self.first = false;
        } else {
            self.inner.advance();
        }
        self.inner.interval_stats()
    }
}

/// A fixed, replayed sequence of interval stats (tests, custom traces).
#[derive(Debug, Default)]
pub struct ReplaySource {
    intervals: std::collections::VecDeque<IntervalStats>,
}

impl ReplaySource {
    /// Builds from explicit intervals; replays them once, then yields
    /// empty intervals.
    pub fn new(intervals: impl IntoIterator<Item = IntervalStats>) -> Self {
        ReplaySource {
            intervals: intervals.into_iter().collect(),
        }
    }
}

impl IntervalSource for ReplaySource {
    fn next_interval(
        &mut self,
        _n_tasks: usize,
        _dest: &mut dyn FnMut(Key) -> TaskId,
    ) -> IntervalStats {
        self.intervals.pop_front().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_source_first_interval_is_base() {
        let mut s = ZipfSource::new(100, 0.8, 1000, 1.0, 5);
        let base = s.workload().freqs().to_vec();
        let _ = s.next_interval(4, &mut |k| TaskId::from((k.raw() % 4) as usize));
        // First pull must not fluctuate.
        assert_eq!(s.workload().freqs(), &base[..]);
        let _ = s.next_interval(4, &mut |k| TaskId::from((k.raw() % 4) as usize));
        assert_ne!(s.workload().freqs(), &base[..], "second pull fluctuates");
    }

    #[test]
    fn replay_source_exhausts_to_empty() {
        let mut iv = IntervalStats::new();
        iv.observe(Key(1), 1, 1, 1);
        let mut s = ReplaySource::new([iv]);
        let first = s.next_interval(1, &mut |_| TaskId(0));
        assert_eq!(first.len(), 1);
        let second = s.next_interval(1, &mut |_| TaskId(0));
        assert!(second.is_empty());
    }

    #[test]
    fn social_and_stock_sources_advance() {
        let mut soc = SocialSource::new(SocialWorkload::new(100, 1000, 0.1, 3));
        let a = soc.next_interval(2, &mut |_| TaskId(0));
        let b = soc.next_interval(2, &mut |_| TaskId(0));
        assert_eq!(a.total_cost(), b.total_cost(), "drift conserves mass");

        let mut stk = StockSource::new(StockWorkload::new(50, 1000, 5, 10, 3));
        let a = stk.next_interval(2, &mut |_| TaskId(0));
        let b = stk.next_interval(2, &mut |_| TaskId(0));
        assert!(b.total_cost() > a.total_cost(), "bursts add mass");
    }
}
