//! Flight-recorder suite: the trace is part of the engine's contract,
//! not a best-effort diagnostic, so it gets the same treatment as the
//! fault ledger.
//!
//! Three claims under test:
//!
//! * **Determinism** — a seeded run's trace *skeleton* (event kinds and
//!   structure with wall-clock stamps and load-dependent numerics
//!   masked) replays identically, like `EngineReport::faults`.
//! * **Span coverage** — a migration-heavy run opens a span per
//!   protocol op, every span closes exactly once with phases in
//!   protocol order (`TraceLog::check_integrity`), and completed
//!   rebalances show up in `span_summaries`.
//! * **Ledger agreement** — spans closed `Aborted` correspond one-to-one
//!   with `FaultEvent::OpAborted` ledger entries, even when chaos
//!   wedges ops mid-flight.

use std::time::Duration;

use streambal::baselines::{CoreBalancer, HashPartitioner};
use streambal::core::{BalanceParams, RebalanceStrategy};
use streambal::prelude::{Key, Partitioner, TaskId};
use streambal::runtime::{
    Engine, EngineConfig, EngineReport, FaultEvent, FaultPlan, FaultSpec, OpLabel, Outcome, Tuple,
    WordCountOp,
};
use streambal::workloads::FluctuatingWorkload;

/// Workload parameters, mirroring `tests/chaos.rs` — the same skewed,
/// fluctuating, migration-heavy regime the chaos suite stresses.
const N_TASKS: usize = 3;
const KEYS: usize = 400;
const ZIPF: f64 = 1.0;
const TUPLES: u64 = 6_000;
const FLUCTUATION: f64 = 0.6;
const SEED: u64 = 4242;
const INTERVALS: usize = 5;

/// Hard ceiling on one engine run: a wedged protocol panics the test
/// instead of hanging CI.
const RUN_TIMEOUT: Duration = Duration::from_secs(120);

fn mixed_balancer() -> Box<dyn Partitioner> {
    Box::new(CoreBalancer::new(
        N_TASKS,
        100,
        RebalanceStrategy::Mixed,
        BalanceParams {
            theta_max: 0.05,
            ..BalanceParams::default()
        },
    ))
}

fn keyed_intervals() -> Vec<Vec<Key>> {
    let mut w = FluctuatingWorkload::new(KEYS, ZIPF, TUPLES, FLUCTUATION, SEED);
    (0..INTERVALS)
        .map(|i| {
            if i > 0 {
                w.advance(N_TASKS, |k| TaskId::from(k.raw() as usize % N_TASKS));
            }
            w.tuples()
        })
        .collect()
}

/// Runs the engine on the shared workload, panicking (not hanging) if
/// the run does not terminate.
fn run_traced(label: &str, config: EngineConfig, p: Box<dyn Partitioner>) -> EngineReport {
    let feed = keyed_intervals();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let report = Engine::run(
            config,
            p,
            |_| Box::new(WordCountOp::new()),
            move |iv| {
                feed.get(iv as usize)
                    .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
            },
            None,
        );
        let _ = tx.send(report);
    });
    rx.recv_timeout(RUN_TIMEOUT)
        .unwrap_or_else(|_| panic!("{label}: engine run did not terminate"))
}

/// The skeleton of a seeded run replays identically. Same scoping as
/// `same_plan_yields_identical_fault_ledger` in `tests/chaos.rs`: a
/// static Hash partitioner (a balancer's rebalance-vs-kill interleaving
/// is a genuine controller race, deliberately out of scope) and wall
/// deadlines far beyond the run length, so no timing-dependent retry
/// can sneak an event into one skeleton but not the other.
#[test]
fn same_seed_yields_identical_trace_skeleton() {
    let plan = FaultPlan::new(vec![FaultSpec::KillWorker {
        worker: 1,
        at_interval: 2,
    }]);
    let config = || EngineConfig {
        n_workers: N_TASKS,
        max_workers: N_TASKS,
        spin_work: 10,
        window: 100,
        fault_plan: plan.clone(),
        op_deadline: Duration::from_secs(120),
        round_deadline: Duration::from_secs(120),
        ..EngineConfig::default()
    };
    let a = run_traced(
        "skeleton-a",
        config(),
        Box::new(HashPartitioner::new(N_TASKS)),
    );
    let b = run_traced(
        "skeleton-b",
        config(),
        Box::new(HashPartitioner::new(N_TASKS)),
    );
    assert!(
        !a.trace.events.is_empty(),
        "skeleton-a: trace is empty with trace enabled"
    );
    let problems = a.trace.check_integrity();
    assert!(problems.is_empty(), "skeleton-a: {problems:?}");
    assert_eq!(
        a.trace.skeleton(),
        b.trace.skeleton(),
        "same seed must replay to the same trace skeleton \
         (faults a: {:?}, b: {:?})",
        a.faults,
        b.faults
    );
}

/// A migration-heavy healthy run: the Mixed balancer rebalances on this
/// workload, so the trace must carry completed rebalance spans with
/// clean lifecycle integrity, and the fault mirror must stay empty.
/// The same scenario with `trace: false` must record nothing at all —
/// the off switch is the overhead benchmark's baseline and has to be a
/// true no-op.
#[test]
fn healthy_migrations_produce_completed_spans() {
    let config = |trace: bool| EngineConfig {
        n_workers: N_TASKS,
        max_workers: N_TASKS,
        spin_work: 10,
        window: 100,
        trace,
        ..EngineConfig::default()
    };
    let report = run_traced("healthy-spans", config(true), mixed_balancer());
    assert!(
        report.protocol_errors.is_empty(),
        "healthy run reported protocol errors: {:?}",
        report.protocol_errors
    );
    let problems = report.trace.check_integrity();
    assert!(problems.is_empty(), "healthy-spans: {problems:?}");

    let summaries = report.trace.span_summaries();
    let completed_rebalances = summaries
        .iter()
        .filter(|s| s.op == OpLabel::Rebalance && s.outcome == Some(Outcome::Completed))
        .count();
    assert!(
        completed_rebalances > 0,
        "Mixed balancer run produced no completed rebalance span: {summaries:?}"
    );
    for s in &summaries {
        assert!(
            s.outcome.is_some(),
            "span {} never closed: {summaries:?}",
            s.span
        );
        assert!(
            s.close_us >= s.open_us,
            "span {} closes before it opens",
            s.span
        );
    }

    let off = run_traced("trace-off", config(false), mixed_balancer());
    assert!(
        off.trace.events.is_empty(),
        "trace: false still recorded {} events",
        off.trace.events.len()
    );
}

/// Chaos agreement: stall two workers past the op deadline (the
/// `chaos` bench's rollback scenario) so in-flight migrations abort,
/// and check the trace against the fault ledger — every `OpAborted`
/// ledger entry has exactly one span closed `Aborted`, and integrity
/// holds even across the abort/rollback path. Whether an abort fires
/// at all depends on whether a migration touches the stalled workers;
/// the equality must hold either way (possibly 0 == 0).
#[test]
fn aborted_spans_agree_with_the_fault_ledger() {
    let plan = FaultPlan::new(vec![
        FaultSpec::StallWorker {
            worker: 1,
            at_interval: 1,
            ms: 1_200,
        },
        FaultSpec::StallWorker {
            worker: 2,
            at_interval: 1,
            ms: 1_200,
        },
    ]);
    let config = EngineConfig {
        n_workers: N_TASKS,
        max_workers: N_TASKS,
        spin_work: 10,
        window: 100,
        // Deep channels: the source must keep pacing intervals forward
        // while the stalled workers sleep, so the op deadline's
        // interval clock expires the wedged op.
        channel_capacity: 1 << 16,
        fault_plan: plan,
        op_deadline_intervals: 1,
        op_deadline: Duration::from_millis(200),
        round_deadline_intervals: 1,
        round_deadline: Duration::from_millis(200),
        ..EngineConfig::default()
    };
    let report = run_traced("abort-agreement", config, mixed_balancer());
    let problems = report.trace.check_integrity();
    assert!(problems.is_empty(), "abort-agreement: {problems:?}");

    let ledger_aborts = report
        .faults
        .iter()
        .filter(|f| matches!(f, FaultEvent::OpAborted { .. }))
        .count();
    let span_aborts = report
        .trace
        .span_summaries()
        .iter()
        .filter(|s| s.outcome == Some(Outcome::Aborted))
        .count();
    assert_eq!(
        span_aborts,
        ledger_aborts,
        "aborted spans must mirror the fault ledger \
         (faults: {:?}, spans: {:?})",
        report.faults,
        report.trace.span_summaries()
    );
}
