//! The paper's Social experiment in miniature: a word-count topology over
//! a drifting topic-word stream, comparing plain hashing ("Storm") with
//! the Mixed rebalancer on the real threaded engine.
//!
//! ```text
//! cargo run --release --example social_wordcount
//! ```

use streambal::baselines::{CoreBalancer, HashPartitioner, Partitioner};
use streambal::core::{BalanceParams, Key, RebalanceStrategy};
use streambal::runtime::{Engine, EngineConfig, Tuple, WordCountOp};
use streambal::workloads::SocialWorkload;

fn intervals(seed: u64) -> Vec<Vec<Key>> {
    // 10k-word vocabulary, 20k tuples per interval, gentle drift.
    let mut w = SocialWorkload::new(10_000, 20_000, 0.03, seed);
    (0..5)
        .map(|i| {
            if i > 0 {
                w.advance();
            }
            w.tuples()
        })
        .collect()
}

fn run(name: &str, partitioner: Box<dyn Partitioner>, feed: Vec<Vec<Key>>) {
    let config = EngineConfig {
        n_workers: 4,
        max_workers: 4,
        spin_work: 400,
        window: 5,
        ..EngineConfig::default()
    };
    let report = Engine::run(
        config,
        partitioner,
        |_| Box::new(WordCountOp::new()),
        move |iv| {
            feed.get(iv as usize)
                .map(|ks| ks.iter().map(|&k| Tuple::keyed(k)).collect())
        },
        None,
    );
    println!(
        "{name:<8} throughput {:>8.0} t/s   p99 latency {:>7} µs   rebalances {}   migrated {} keys / {} bytes",
        report.mean_throughput,
        report.latency_us.quantile(0.99),
        report.rebalances,
        report.migrated_keys,
        report.migrated_bytes,
    );
    println!(
        "{:<8} per-worker tuples: {:?}",
        "", report.per_worker_processed
    );
}

fn main() {
    println!("Social word count, 4 workers, 5 intervals, ~100k tuples\n");
    run("Storm", Box::new(HashPartitioner::new(4)), intervals(7));
    run(
        "Mixed",
        Box::new(CoreBalancer::new(
            4,
            5,
            RebalanceStrategy::Mixed,
            BalanceParams {
                theta_max: 0.08,
                ..BalanceParams::default()
            },
        )),
        intervals(7),
    );
    println!("\nExpected shape (paper Fig. 14a): Mixed spreads the hot words and");
    println!("beats static hashing; its per-worker tuple counts are more even.");
}
