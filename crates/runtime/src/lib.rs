//! # streambal-runtime
//!
//! A thread-based mini stream-processing engine — the workspace's
//! substitute for the Apache Storm deployment the paper evaluates on.
//!
//! ## Shape
//!
//! ```text
//!  Source thread ──(bounded channels: backpressure)──▶ Worker threads (keyed, stateful)
//!       ▲   │                                              │        │
//!       │   └───────────── interval markers ───────────────┼──▶ Collector thread
//!       │                                                  │     (merge / aggregate)
//!  Controller (Fig. 5 protocol) ◀───── events ─────────────┘
//! ```
//!
//! * The **source** pulls tuples from a feeder closure, stamps them, and
//!   routes them with a local [`SourceRouter`] snapshot — the "tuples
//!   router" of Fig. 5. The data plane is *batched*: every
//!   `batch_size` tuples are routed with one `route_batch` call,
//!   scattered into per-destination buffers, and shipped as one
//!   [`Message::TupleBatch`] per destination touched, so a channel
//!   operation is paid per batch, not per tuple. Batch buffers are
//!   pooled — workers and the collector return drained `Vec<Tuple>`s to
//!   the source over a recycle channel, so the steady state allocates
//!   nothing per batch.
//! * **Workers** are downstream task instances: one thread per instance,
//!   one bounded input channel each (full channel = backpressure, the
//!   "backpushing effect" of the paper's Fig. 1 — now at batch
//!   granularity). They run an [`Operator`], keep windowed per-key state,
//!   and account per-key statistics, draining a whole batch per channel
//!   operation: one shared-counter `add(n)`, one latency clock read, and
//!   one batch-local statistics merge per batch.
//! * The **controller** implements the paper's rebalance workflow
//!   (Fig. 5): ① collect per-interval statistics; ② run the partitioner's
//!   rebalance; ③④ broadcast the plan and pause affected keys at the
//!   source (which buffers them); ⑤ migrate key state between workers via
//!   in-band messages; ⑥ collect acks; ⑦ resume with the new routing
//!   table. Tuples of unaffected keys keep flowing throughout.
//!
//! In-band delivery over FIFO channels gives exactly-once state movement,
//! and the argument survives batching unchanged because batches and
//! markers share the same FIFO channel: a `MigrateOut` marker is enqueued
//! only after the source acknowledged the pause, and the source only
//! acknowledges between routed batches — when every per-destination
//! accumulator has been flushed — so the marker lands *behind* every
//! batch containing pre-pause tuples, and a worker drains those batches
//! whole before extracting state. Likewise `Resume` is sent only after
//! the destination acknowledged installation, so post-resume batches land
//! behind the installed state; and the controller ships `Shutdown` only
//! after the source's `ResumeAck` confirms the pause-buffer flush
//! batches are already enqueued ahead of it.
//!
//! ## Elasticity
//!
//! The controller consults an `ElasticityPolicy` (crate
//! `streambal-elastic`) after every statistics round — observing per-task
//! loads, per-task queue depth (tuple-weighted channel occupancy sampled
//! at interval close: the backpushing signal), and the interval's
//! mean/p99 latency — and executes its decision.
//!
//! **Scale-out** pre-places state at provision time
//! (`EngineConfig::preplace`, the default), in four ordered steps:
//!
//! 1. **Plan.** Spawn the worker on its pre-provisioned slot, then ask
//!    the partitioner for the placement delta at the same instant the
//!    routing function grows (`Partitioner::scale_out_plan`): the live
//!    keys the grown hash ring re-homes onto the new slot, each paired
//!    with the task currently holding its state.
//! 2. **Quiesce.** The plan runs through the rebalance machinery: the
//!    source pauses (and locally buffers) exactly the moved keys — its
//!    ack certifies every pre-pause tuple is already in the old holders'
//!    FIFO channels, and `MigrateOut` markers land behind them.
//! 3. **Install.** The old holders extract the moved keys' windowed
//!    state after draining their backlogs; the controller installs it in
//!    the new worker and waits for the ack.
//! 4. **Resume.** Only then does the source adopt the grown view and
//!    flush its pause buffer, so a moved key's tuples can reach the new
//!    worker only after its state did.
//!
//! The new slot therefore takes its keys' traffic in the decision
//! interval itself — without pre-placement (the seed behaviour, kept as
//! `preplace: false`) churned keys are pinned back to their old homes
//! and the slot idles until the next rebalance deigns to move keys onto
//! it, which is exactly the overloaded stretch the policy scaled out
//! for. Strategies with no state to move (shuffle, PKG) return an empty
//! plan and the grown view is published directly.
//!
//! **Scale-in** runs the drain → migrate → retire protocol — pause the
//! victim's destination at the source, enqueue a `Retire` marker behind
//! the victim's backlog, re-install its entire drained state at each
//! key's new home, and only then resume under the shrunk view. The
//! FIFO-consistency argument is spelled out in the `streambal-elastic`
//! crate docs; the retired slot's channel survives (the receiver travels
//! back in the `Retired` event), so a later scale-out can re-provision
//! the same slot mid-run.
//!
//! CPU saturation is emulated by `spin_work` busy-iterations per tuple,
//! mirroring the paper's "controlling the latency on tuple processing to
//! force the system to a saturation point".
//!
//! ## Hot-key splitting
//!
//! Migration and scale-out both move *whole keys*; neither helps when a
//! single key's load exceeds one worker's capacity. For that case the
//! controller consults a `SplitPolicy` (crate `streambal-elastic`)
//! after every statistics round and executes **split** / **unsplit** as
//! first-class protocol ops, sharing the migration queue, epochs,
//! pause → quiesce → install → resume phases, deadline/abort machinery,
//! fault-ledger entries, and flight-recorder spans (`OpLabel::Split`,
//! `OpLabel::Unsplit`):
//!
//! * **Split** salts the key across `R` replica slots
//!   (`Partitioner::split_key`): the routing layer round-robins the
//!   key's batches over the replicas, each of which accumulates an
//!   independent *partial* state. No state moves — the op is a
//!   degenerate migration (empty move set) whose pause window makes the
//!   view install atomic: the source's ack certifies every tuple routed
//!   under the unsplit view is already in the primary's FIFO channel,
//!   so replica-routed tuples land strictly after it.
//! * **Unsplit** consolidates (`Partitioner::unsplit_key`): a real
//!   migration extracting each non-primary replica's partial state for
//!   the key and installing it into the primary, whose `install` merges
//!   additively. The pause covers the whole transfer, so no tuple is
//!   routed under the consolidated view before the partials landed.
//!
//! **Replica/merge consistency argument.** The migration protocol's
//! per-key argument relies on each key having *one* home per epoch and
//! FIFO order on that one channel. A split key deliberately breaks the
//! single-home premise, and consistency is re-established one level
//! down: per replica, FIFO still orders every batch against every
//! marker (each replica's partial is exact for the tuples it saw), and
//! the key's total is recovered by a commutative, associative fold over
//! replica partials — at the merge stage ([`merge::MergeStage`], the
//! second operator of the two-stage pipeline) for partial-emission
//! runs, or at shutdown when `EngineReport::final_states` merges blobs
//! per key. Because the fold is order-insensitive, replica cursors
//! need no coordination (holders may rotate out of phase) and a replica
//! killed mid-split costs exactly the tuples it held — counted per key
//! in `lost_tuples` — so the accounting invariant
//! `fed == observed + lost` holds *after the merge* across splits,
//! unsplits, and mid-split kills, for every partitioner.
//!
//! ## Failure model
//!
//! The engine tolerates — and accounts for — three fault classes,
//! exercised deterministically by a seeded [`FaultPlan`] threaded
//! through [`EngineConfig`] (module [`fault`]):
//!
//! * **Worker crashes** (`KillWorker`, `KillOnMigrateOut`,
//!   `KillOnInstall`): a worker thread exits mid-run, possibly holding
//!   un-extracted state or an in-flight `StateInstall`. The controller
//!   detects the death (`Killed` event), marks the slot dead, re-routes
//!   its keys to the next live slot, and continuously drains the dead
//!   slot's channel so neither the source nor the controller can block
//!   on its bounded capacity. State that died with the worker is *lost,
//!   not leaked*: every tuple it absorbed is tallied per key in
//!   `EngineReport::lost_tuples`, so the accounting invariant
//!   `fed == observed + lost` holds for every key on every run. A dead
//!   slot stays revivable — a later scale-out re-provisions it.
//! * **Lost control messages** (`DropCtl`): pause/resume/migrate/stats
//!   markers are dropped at injection points. Every in-flight protocol
//!   op carries a deadline (wall clock ∧ interval clock, see
//!   `EngineConfig::op_deadline{,_intervals}`): first expiry re-drives
//!   the stuck phase (markers are idempotent — workers, source, and
//!   controller absorb duplicates by epoch), second expiry **aborts
//!   with rollback**: routing reverts to each key's origin, state still
//!   in the controller's hand is re-installed under a fresh pre-closed
//!   epoch, and a victim's *late* `StateOut`/`Retired` on the closed
//!   epoch is absorbed and its blobs re-homed under the current view —
//!   never dropped. Statistics rounds have their own deadline
//!   (`round_deadline{,_intervals}`); an expired round closes over the
//!   missing workers and is ledgered as `RoundTimedOut`.
//! * **Stalls** (`StallWorker`): a worker sleeps mid-interval. Nothing
//!   is lost; the op-deadline machinery above decides whether to wait,
//!   re-drive, or roll back.
//!
//! Every detection, retry, abort, re-route, and absorption is recorded
//! in order in the `EngineReport::faults` ledger ([`FaultEvent`]), so a
//! run with a given seed is *replayable*: same plan, same ledger. The
//! chaos suite (`tests/chaos.rs`) asserts exactly that, plus the per-key
//! accounting invariant, across all eight partitioners; the chaos bench
//! (`benches/chaos.rs`) prices the degradation (lost tuples, degraded
//! window, rollback overhead) into `bench_results/chaos.json`.
//!
//! ## Flight recorder
//!
//! Every run carries an always-on structured trace
//! (`EngineConfig::trace`, default on; crate `streambal-trace`). Each
//! thread owns a lock-free `ThreadRecorder`: the **data plane records
//! nothing per tuple** — workers add to two local counters per batch
//! and roll them into one `DataFlush` event per interval; spans,
//! snapshots, and marks are control-plane-only. What lands in
//! `EngineReport::trace` (a merged, time-ordered `TraceLog`):
//!
//! * **Protocol spans**, one per op, id = the op's epoch, labelled
//!   `rebalance` / `scale_out` / `scale_in` / `rollback` and decomposed
//!   into phases `plan → pause → quiesce_wait → state_out → install →
//!   resume`. A span closes `completed` at its `ResumeAck`, `aborted`
//!   at a deadline abort, `abandoned` if teardown outran it — exactly
//!   once, which `TraceLog::check_integrity` enforces.
//! * **Telemetry snapshots** per statistics round: per-worker loads,
//!   queue depths (tuple-weighted channel occupancy), mean/p99 interval
//!   latency — plus per-interval `RouterSnapshot`s from the source
//!   (routing-table entries, tombstone debris, pool occupancy) and
//!   `IntervalEnd` totals.
//! * **Fault mirrors**: every fault-ledger entry, with its ledger index
//!   as the sequence number.
//!
//! Traces are deterministic modulo wall-clock: `TraceLog::skeleton()`
//! (event structure with timestamps, load numerics, and the
//! occupancy-driven `DataFlush` stream masked) is identical across
//! replays of the same seeded config, and
//! `tests/trace.rs` asserts it like the fault ledger. Artifacts export
//! as JSONL (`TraceLog::to_jsonl`) and Chrome `trace_event` JSON
//! (`TraceLog::to_chrome_json`, load into `chrome://tracing` or
//! Perfetto).
//!
//! ### tracecat quickstart
//!
//! The analyzer CLI lives in `crates/bench` and reads committed traces:
//!
//! ```text
//! cargo run -p streambal-bench --bin tracecat -- traces/chaos_kill.trace.jsonl
//! cargo run -p streambal-bench --bin tracecat -- --check traces/*.trace.jsonl
//! ```
//!
//! The default report prints per-span phase breakdowns (where each op's
//! disruption window went), a text timeline, and **dip attribution**:
//! each interval whose throughput dips below 0.85× the run median is
//! joined against overlapping spans and faults, so "the dip at interval
//! 4 was the scale-in's install phase" is a grep, not an archaeology
//! session. `--check` validates schema + span integrity and exits
//! nonzero on violation (CI runs it on every committed trace).

pub mod codec;
pub(crate) mod controller;
pub mod engine;
pub mod fault;
pub mod merge;
pub mod message;
pub mod operator;
pub mod router;
pub mod topk;
pub mod tuple;
pub mod worker;

pub use codec::{
    decode_plan, decode_tuple_batch, decode_view, encode_plan, encode_tuple_batch, encode_view,
    CodecError,
};
pub use engine::{Engine, EngineConfig, EngineReport, ProtocolError, ScaleEvent, SplitEvent};
pub use fault::{CtlKind, FaultEvent, FaultInjector, FaultPlan, FaultSpec, KillTrigger, OpKind};
pub use merge::MergeStage;
pub use message::{Message, SourceCtl, SourceEvent, WorkerEvent};
pub use operator::{
    CoJoinOp, Collector, CountingCollector, Operator, SumCollector, WindowedSelfJoinOp, WordCountOp,
};
pub use router::SourceRouter;
pub use streambal_trace::{
    EventKind, OpLabel, Outcome, Phase, SpanSummary, ThreadLabel, ThreadRecorder, TraceEvent,
    TraceLog, TraceSink,
};
pub use topk::TopKOp;
pub use tuple::{Tuple, TAG_DEFAULT, TAG_LEFT, TAG_PARTIAL, TAG_RIGHT};
